"""Ablation: metapath width (maximum alternative paths)."""

from repro.experiments.config import FULL
from repro.experiments.scenarios import ablation_max_paths

from conftest import run_scenario


def bench_ablation_max_paths(benchmark):
    run_scenario(benchmark, ablation_max_paths, FULL)
