"""Extension experiment (§5.2 further work): Warm started PR DRB."""

from repro.experiments.config import FULL
from repro.experiments.scenarios import ext_warm_start

from conftest import run_scenario


def bench_ext_warm_start(benchmark):
    run_scenario(benchmark, ext_warm_start, FULL)
