"""Extension experiment (§5.2 further work): Latency trend prediction."""

from repro.experiments.config import FULL
from repro.experiments.scenarios import ext_trend_detection

from conftest import run_scenario


def bench_ext_trend_detection(benchmark):
    run_scenario(benchmark, ext_trend_detection, FULL)
