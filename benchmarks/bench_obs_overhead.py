"""Benchmark: observability overhead on the pinned hot-spot workload.

Measures the same :mod:`repro.perf` pinned workload four ways — tracing
off, tracing into a memory-backed :class:`~repro.obs.Tracer`, tracing
plus a cadence-snapshotting :class:`~repro.obs.MetricsRegistry`, and
``served`` (tracer + metrics whose snapshots publish into a live
:class:`~repro.obs.MetricsBus` with one draining SSE-style subscriber —
the full ``repro.serve`` telemetry plane) — and records the event-rate
cost of each into ``BENCH_obs.json`` at the repo root.  The ``served``
leg must cost < 10 % over ``traced+metrics``: bus publication is one
lock-bookkeeping hop plus a non-blocking queue offer per snapshot.
Before timing anything it asserts the PR's two invariants:

* tracing **off** leaves the ``repro.perf`` digests bit-identical to the
  committed baseline (the instrumentation guard is one ``is not None``
  branch per site);
* tracing **on** does not alter simulated behavior — the replay digests
  of a traced and an untraced run are equal.

Standalone:
    PYTHONPATH=src python benchmarks/bench_obs_overhead.py \
        [--policy pr-drb] [--events 200000] [--repeats 3] [--out BENCH_obs.json]
"""

from __future__ import annotations

import argparse
import json
import threading
import time

from repro.obs import MemorySink, MetricsBus, MetricsRegistry, Tracer
from repro.perf import run_pinned_workload


def bench_traced_pinned_run(benchmark):
    """pytest-benchmark entry: pinned pr-drb workload with a live tracer."""

    def run():
        tracer = Tracer()
        return run_pinned_workload("pr-drb", 60_000, tracer=tracer)

    executed = benchmark.pedantic(run, rounds=1, iterations=1)
    assert executed == 60_000


def _rate(policy: str, events: int, repeats: int, mode: str) -> float:
    """Best-of-``repeats`` event rate (events/sec CPU) for one mode."""
    best = 0.0
    for _ in range(repeats):
        tracer = None
        metrics = None
        cadence = None
        bus = None
        drainer = None
        stop_draining = None
        if mode in ("traced", "traced+metrics", "served"):
            tracer = Tracer(sinks=[MemorySink()])
        if mode in ("traced+metrics", "served"):
            metrics = MetricsRegistry()
            cadence = 5e-5
        if mode == "served":
            # The full telemetry plane: every cadence snapshot publishes
            # into a bus with one live subscriber draining from another
            # thread, exactly as an attached SSE consumer would.
            bus = MetricsBus()
            subscription = bus.subscribe()
            stop_draining = threading.Event()

            def drain() -> None:
                while not stop_draining.is_set():
                    subscription.get(timeout=0.05)

            drainer = threading.Thread(target=drain, daemon=True)
            drainer.start()
            metrics.on_snapshot = lambda snap: bus.publish(
                "cell.metrics", {"snapshot": snap}
            )
        start = time.process_time()
        executed = run_pinned_workload(
            policy, events, tracer=tracer, metrics=metrics,
            metrics_cadence_s=cadence,
        )
        elapsed = time.process_time() - start
        if stop_draining is not None:
            stop_draining.set()
            drainer.join()
            assert bus.published > 0, "served leg published no snapshots"
        if elapsed > 0:
            best = max(best, executed / elapsed)
    return best


def main(argv=None) -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--policy", default="pr-drb")
    parser.add_argument("--events", type=int, default=200_000)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--out", default="BENCH_obs.json")
    args = parser.parse_args(argv)

    # Invariant 1: tracing off keeps the committed perf digests.
    from repro.perf import check_digests, load_baseline

    digest_results = check_digests([args.policy], load_baseline())
    assert digest_results[args.policy]["ok"], "digest drift: see repro.perf"

    # Invariant 2: tracing on does not perturb behavior.
    from repro.analysis.replay import run_scenario

    bare = run_scenario(seed=0, policy=args.policy, repetitions=2)
    traced = run_scenario(
        seed=0, policy=args.policy, repetitions=2, tracer=Tracer()
    )
    assert bare.events == traced.events and bare.metrics == traced.metrics

    rates = {
        mode: _rate(args.policy, args.events, args.repeats, mode)
        for mode in ("off", "traced", "traced+metrics", "served")
    }
    overhead = {
        mode: (rates["off"] - rate) / rates["off"] if rates["off"] else 0.0
        for mode, rate in rates.items()
        if mode != "off"
    }
    # The serving plane must be nearly free on top of full observation:
    # < 10 % slower than traced+metrics (usually indistinguishable).
    served_vs_instrumented = (
        (rates["traced+metrics"] - rates["served"]) / rates["traced+metrics"]
        if rates["traced+metrics"] else 0.0
    )
    assert served_vs_instrumented < 0.10, (
        f"served leg costs {served_vs_instrumented:.1%} over traced+metrics "
        "(budget 10%)"
    )
    report = {
        "benchmark": "obs_overhead",
        "policy": args.policy,
        "events": args.events,
        "repeats": args.repeats,
        "events_per_s": {k: round(v, 1) for k, v in rates.items()},
        "overhead_fraction": {k: round(v, 4) for k, v in overhead.items()},
        "served_vs_traced_metrics": round(served_vs_instrumented, 4),
        "digests_bit_identical_tracing_off": True,
        "behavior_identical_tracing_on": True,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    for mode, rate in rates.items():
        extra = (
            f"  ({overhead[mode]:+.1%} vs off)" if mode in overhead else ""
        )
        print(f"{mode:16s} {rate:12,.0f} events/sec{extra}")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
