"""Ablation: destination- vs router-based notification."""

from repro.experiments.config import FULL
from repro.experiments.scenarios import ablation_notification_mode

from conftest import run_scenario


def bench_ablation_notification(benchmark):
    run_scenario(benchmark, ablation_notification_mode, FULL)
