"""Figs 2.10-2.13: communication matrices (TDC, diagonal structure)."""

from repro.experiments.config import FULL
from repro.experiments.scenarios import fig_2_10_13_comm_matrices

from conftest import run_scenario


def bench_fig_2_10_13_comm_matrices(benchmark):
    run_scenario(benchmark, fig_2_10_13_comm_matrices, FULL)
