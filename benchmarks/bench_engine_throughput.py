"""Simulator-core microbenchmarks (not a paper artifact).

Measures the discrete-event engine's raw event rate and a packet's
end-to-end cost through the fabric, so regressions in the substrate are
visible independently of the Chapter-4 experiments.

``bench_hotspot_events_per_s`` is the headline number: the pinned
congested hot-spot workload from :mod:`repro.perf`, rated per policy and
compared against the recorded pre-optimization baseline.  Run standalone
to regenerate ``BENCH_engine.json`` at the repo root:

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py [--quick]
"""

from repro.network.config import NetworkConfig
from repro.network.fabric import Fabric
from repro.routing.deterministic import DeterministicPolicy
from repro.sim.engine import Simulator
from repro.topology.mesh import Mesh2D


def bench_event_engine_rate(benchmark):
    """Schedule/execute chains of empty events."""

    def run():
        sim = Simulator()

        def chain(n):
            if n:
                sim.schedule(1e-9, chain, n - 1)

        sim.schedule(0.0, chain, 20000)
        sim.run()
        return sim.events_executed

    executed = benchmark(run)
    assert executed == 20001


def bench_fabric_packet_throughput(benchmark):
    """Push a packet batch across an 8x8 mesh under deterministic routing."""

    def run():
        sim = Simulator()
        fabric = Fabric(Mesh2D(8), NetworkConfig(), DeterministicPolicy(), sim)
        for i in range(500):
            fabric.send(i % 64, (i * 17 + 5) % 64, 1024)
        sim.run()
        return fabric.data_packets_delivered

    delivered = benchmark(run)
    assert delivered > 450  # loopback sends excluded


def bench_hotspot_events_per_s(benchmark):
    """Pinned hot-spot workload (see repro.perf): one deterministic-policy
    pass, asserting the digest gate holds for that policy."""
    from repro.perf import load_baseline, check_digests, run_pinned_workload

    executed = benchmark.pedantic(
        run_pinned_workload, args=("deterministic", 60_000),
        rounds=1, iterations=1,
    )
    assert executed == 60_000
    results = check_digests(["deterministic"], load_baseline())
    assert results["deterministic"]["ok"], "digest drift: see repro.perf"


def main() -> int:
    """Regenerate BENCH_engine.json via the repro.perf suite driver."""
    from repro.perf import main as perf_main

    import sys

    return perf_main(sys.argv[1:])


if __name__ == "__main__":
    raise SystemExit(main())
