"""Fig 4.20: NAS LU latency map (deterministic / DRB / PR-DRB)."""

from repro.experiments.config import FULL
from repro.experiments.scenarios import fig_4_20_nas_lu_map

from conftest import run_scenario


def bench_fig_4_20_nas_lu_map(benchmark):
    run_scenario(benchmark, fig_4_20_nas_lu_map, FULL)
