"""Table 4.1: synthetic traffic pattern definitions."""

from repro.experiments.config import FULL
from repro.experiments.scenarios import table_4_1_patterns

from conftest import run_scenario


def bench_table_4_1_patterns(benchmark):
    run_scenario(benchmark, table_4_1_patterns, FULL)
