"""Figs 4.22-4.23: NAS MG per-router contention latency."""

from repro.experiments.config import FULL
from repro.experiments.scenarios import fig_4_22_23_mg_router_contention

from conftest import run_scenario


def bench_fig_4_22_23_mg_router_contention(benchmark):
    run_scenario(benchmark, fig_4_22_23_mg_router_contention, FULL)
