"""Shared helpers for the per-figure benchmark harness.

Each bench runs one Chapter-4 experiment at FULL scale exactly once
(``rounds=1``: these are minutes-long discrete-event simulations, not
microbenchmarks), prints the paper-vs-measured table, and asserts the
shape checks recorded by the scenario.
"""

from __future__ import annotations


def run_scenario(benchmark, scenario_fn, scale):
    result = benchmark.pedantic(scenario_fn, args=(scale,), rounds=1, iterations=1)
    print()
    print(result.render())
    failed = [name for name, ok in result.checks if not ok]
    assert not failed, f"shape checks failed: {failed}"
    return result
