"""Figs 4.27-4.30: POP under all seven routing policies."""

from repro.experiments.config import FULL
from repro.experiments.scenarios import fig_4_27_30_pop

from conftest import run_scenario


def bench_fig_4_27_30_pop(benchmark):
    run_scenario(benchmark, fig_4_27_30_pop, FULL)
