"""Extension: smaller network footprint (§4.8.5 / §5.1 cost claim)."""

from repro.experiments.config import FULL
from repro.experiments.scenarios import ext_slim_network_footprint

from conftest import run_scenario


def bench_ext_slim_network_footprint(benchmark):
    run_scenario(benchmark, ext_slim_network_footprint, FULL)
