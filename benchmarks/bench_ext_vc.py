"""Extension: virtual-channel arbitration vs FIFO link service (§3.2.8)."""

from repro.experiments.config import FULL
from repro.experiments.scenarios import ext_virtual_channels

from conftest import run_scenario


def bench_ext_virtual_channels(benchmark):
    run_scenario(benchmark, ext_virtual_channels, FULL)
