"""Benchmark: dragonfly hot-spot throughput per routing policy.

The acceptance gate of the notified-adaptive family: on the pinned
``dragonfly:4,2,2`` group-pair hot-spot (see
:func:`repro.perf.run_pinned_dragonfly_workload`) the notification-driven
policy must deliver at least **1.2x** the packets deterministic minimal
routing manages, and every policy's same-seed replay must be
bit-identical (the digest is a SHA-256 over the executed event stream).
The report also records the harness's events/sec per policy so engine
regressions on the dragonfly path stay visible.

Standalone:
    PYTHONPATH=src python benchmarks/bench_dragonfly.py \
        [--repeats 3] [--out BENCH_dragonfly.json]

Under pytest-benchmark it additionally regenerates the FULL-scale
``ext_dragonfly_hotspot`` / ``ext_dragonfly_noise`` scenario tables.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.perf import run_pinned_dragonfly_workload

#: throughput ratio the notified policy must clear over deterministic.
THROUGHPUT_GATE = 1.2

POLICIES = ("deterministic", "notified-adaptive", "ugal")


def profile_policy(policy: str, repeats: int) -> dict:
    """Digest-checked counters plus best-of CPU-time event rate."""
    runs = [run_pinned_dragonfly_workload(policy) for _ in range(2)]
    assert runs[0]["digest"] == runs[1]["digest"], (
        f"{policy}: same-seed dragonfly replay diverged"
    )
    best_rate = 0.0
    for _ in range(repeats):
        start = time.process_time()  # repro: allow(no-wall-clock)
        result = run_pinned_dragonfly_workload(policy)
        elapsed = time.process_time() - start  # repro: allow(no-wall-clock)
        if elapsed > 0:
            best_rate = max(best_rate, result["events_executed"] / elapsed)
    return {
        "digest": runs[0]["digest"],
        "events_executed": runs[0]["events_executed"],
        "packets_injected": runs[0]["packets_injected"],
        "packets_delivered": runs[0]["packets_delivered"],
        "events_per_s": round(best_rate, 1),
        "policy_stats": runs[0]["policy_stats"],
    }


def build_report(repeats: int) -> dict:
    per_policy = {p: profile_policy(p, repeats) for p in POLICIES}
    det = per_policy["deterministic"]["packets_delivered"]
    ratios = {
        p: round(per_policy[p]["packets_delivered"] / det, 3)
        for p in POLICIES
    }
    return {
        "benchmark": "dragonfly",
        "workload": "dragonfly:4,2,2 group-pair hot-spot + noise (pinned)",
        "throughput_gate": THROUGHPUT_GATE,
        "policies": per_policy,
        "throughput_ratio_vs_deterministic": ratios,
    }


def check_report(report: dict) -> None:
    ratios = report["throughput_ratio_vs_deterministic"]
    assert ratios["notified-adaptive"] >= THROUGHPUT_GATE, (
        f"notified-adaptive throughput ratio {ratios['notified-adaptive']} "
        f"below the {THROUGHPUT_GATE}x gate"
    )
    arn_stats = report["policies"]["notified-adaptive"]["policy_stats"]
    assert arn_stats["escalations"] > 0, "no escalation ever happened"
    assert arn_stats["valiant_routed"] > 0, "no Valiant packet was routed"


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------

def bench_dragonfly_throughput_gate(benchmark):
    """Pinned-workload gate: digest identity + 1.2x throughput."""
    report = benchmark.pedantic(build_report, args=(1,), rounds=1, iterations=1)
    check_report(report)


def bench_dragonfly_hotspot_scenario(benchmark):
    """FULL-scale EXT-dragonfly scenario table."""
    from repro.experiments.config import FULL
    from repro.experiments.scenarios import ext_dragonfly_hotspot

    from conftest import run_scenario

    run_scenario(benchmark, ext_dragonfly_hotspot, FULL)


def bench_dragonfly_noise_scenario(benchmark):
    """FULL-scale EXT-dragonfly-noise scenario table."""
    from repro.experiments.config import FULL
    from repro.experiments.scenarios import ext_dragonfly_noise

    from conftest import run_scenario

    run_scenario(benchmark, ext_dragonfly_noise, FULL)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--out", default="BENCH_dragonfly.json")
    args = parser.parse_args(argv)

    report = build_report(args.repeats)
    check_report(report)
    Path(args.out).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(json.dumps(report, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
