"""Extension: rank placement (mapping) vs network latency (§3.1)."""

from repro.experiments.config import FULL
from repro.experiments.scenarios import ext_mapping

from conftest import run_scenario


def bench_ext_mapping(benchmark):
    run_scenario(benchmark, ext_mapping, FULL)
