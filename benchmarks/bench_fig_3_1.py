"""Fig 3.1: PR-DRB overview - learning burst then faster reaction."""

from repro.experiments.config import FULL
from repro.experiments.scenarios import fig_3_1_overview

from conftest import run_scenario


def bench_fig_3_1_overview(benchmark):
    run_scenario(benchmark, fig_3_1_overview, FULL)
