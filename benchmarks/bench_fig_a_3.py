"""Fig A.3: appendix - perfect shuffle, 64 nodes."""

from repro.experiments.config import FULL
from repro.experiments.scenarios import fig_a_3_shuffle_64

from conftest import run_scenario


def bench_fig_a_3_shuffle_64(benchmark):
    run_scenario(benchmark, fig_a_3_shuffle_64, FULL)
