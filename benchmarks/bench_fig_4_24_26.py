"""Figs 4.24-4.26: LAMMPS maps, global latency and pattern statistics."""

from repro.experiments.config import FULL
from repro.experiments.scenarios import fig_4_24_26_lammps

from conftest import run_scenario


def bench_fig_4_24_26_lammps(benchmark):
    run_scenario(benchmark, fig_4_24_26_lammps, FULL)
