"""Extension: latency-vs-offered-load saturation curves."""

from repro.experiments.config import FULL
from repro.experiments.scenarios import ext_saturation_curve

from conftest import run_scenario


def bench_ext_saturation_curve(benchmark):
    run_scenario(benchmark, ext_saturation_curve, FULL)
