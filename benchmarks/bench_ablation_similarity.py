"""Ablation: solution-matching similarity threshold."""

from repro.experiments.config import FULL
from repro.experiments.scenarios import ablation_similarity_threshold

from conftest import run_scenario


def bench_ablation_similarity(benchmark):
    run_scenario(benchmark, ablation_similarity_threshold, FULL)
