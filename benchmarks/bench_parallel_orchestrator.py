"""Benchmark: parallel sweep orchestrator vs serial execution.

Runs the paper's 8x8-mesh hot-spot sweep (4 policies x 8 seeds = 32
cells) three ways — serial (inline), N-worker process pool, and a second
pool pass answered entirely from the result cache — asserts per-cell
bit-identity across all three, and writes the measurements to
``BENCH_parallel.json`` at the repo root.

The >= 2x speedup assertion only applies on machines with >= 4 physical
cores (CI runners); on smaller boxes the numbers are still recorded,
honestly, with the core count alongside.

Standalone:
    PYTHONPATH=src python benchmarks/bench_parallel_orchestrator.py \
        [--policies drb pr-drb] [--seeds 8] [--workers 4] [--out BENCH_parallel.json]
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile

from repro.experiments.config import (
    BURST_OFF_S,
    BURST_ON_S,
    HOTSPOT_FLOWS,
    HOTSPOT_IDLE_MBPS,
    HOTSPOT_NOISE_MBPS,
    HOTSPOT_RATE_MBPS,
)
from repro.parallel import SimTask, SweepConfig, run_sweep
from repro.parallel.tasks import canonical_json

DEFAULT_POLICIES = ("deterministic", "drb", "pr-drb", "fr-drb")
REPETITIONS = 3


def hotspot_task(policy: str, seed: int) -> SimTask:
    """One (policy, seed) cell of the §4.5 hot-spot sweep on the 8x8 mesh."""
    return SimTask(
        kind="hotspot",
        params={
            "topology": "mesh:8",
            "policy": policy,
            "seed": seed,
            "flows": [[s, d] for s, d in HOTSPOT_FLOWS],
            "rate_mbps": HOTSPOT_RATE_MBPS,
            "schedule": {
                "on_s": BURST_ON_S,
                "off_s": BURST_OFF_S,
                "start_s": 0.0,
                "repetitions": REPETITIONS,
            },
            "noise_rate_mbps": HOTSPOT_NOISE_MBPS,
            "idle_rate_mbps": HOTSPOT_IDLE_MBPS,
            "drain_s": 8e-4,
            "notification": "router",
            "window_s": 5e-5,
        },
        label=f"hotspot:{policy}/seed{seed}",
    )


def run_bench(policies=DEFAULT_POLICIES, n_seeds=8, workers=None, out="BENCH_parallel.json"):
    cpu_count = os.cpu_count() or 1
    # Always exercise the real process pool (>= 2 workers), even on boxes
    # where that cannot speed anything up — correctness (bit-identity,
    # cache behaviour) is worth checking regardless of core count.  The
    # *timed* comparison is a different matter: a pool with more workers
    # than cores measures oversubscription, not parallelism, so the
    # speedup is only reported when the pool fits the machine.
    workers = workers or max(2, min(4, cpu_count))
    oversubscribed = workers > cpu_count
    tasks = [hotspot_task(p, s) for p in policies for s in range(n_seeds)]
    version = "bench-parallel-v1"  # pinned: measurement, not invalidation

    serial = run_sweep(tasks, SweepConfig(workers=1, code_version=version))
    assert serial.all_ok, [o.error for o in serial.failed]

    with tempfile.TemporaryDirectory(prefix="bench-parallel-") as cache_dir:
        parallel = run_sweep(
            tasks,
            SweepConfig(workers=workers, code_version=version, cache_dir=cache_dir),
        )
        assert parallel.all_ok, [o.error for o in parallel.failed]
        assert parallel.executed == len(tasks)

        mismatched = [
            task.display()
            for task, a, b in zip(tasks, serial.results, parallel.results)
            if canonical_json(a) != canonical_json(b)
        ]
        assert not mismatched, f"parallel != serial for {mismatched}"

        cached = run_sweep(
            tasks,
            SweepConfig(workers=workers, code_version=version, cache_dir=cache_dir),
        )
        assert cached.executed == 0, "second invocation must run zero simulations"
        assert cached.cache_hits == len(tasks)
        assert [canonical_json(r) for r in cached.results] == [
            canonical_json(r) for r in serial.results
        ]

    if oversubscribed:
        # The pool leg launched more workers than cores: its wall time
        # measures contention, not parallel speedup.  Recording a sub-1x
        # "speedup" here would be misleading (and was: 0.79x on a 1-core
        # box), so the timed comparison is skipped with the reason.
        speedup = None
        speedup_assertion = {
            "checked": False,
            "skipped_reason": (
                f"{workers} workers > {cpu_count} core(s): the pool leg is "
                "oversubscribed, so its wall time measures contention, not "
                "speedup"
            ),
        }
    elif cpu_count >= 4:
        speedup = serial.wall_s / parallel.wall_s if parallel.wall_s > 0 else 0.0
        speedup_assertion = {"checked": True, "skipped_reason": None}
    else:
        speedup = serial.wall_s / parallel.wall_s if parallel.wall_s > 0 else 0.0
        speedup_assertion = {
            "checked": False,
            "skipped_reason": (
                f"only {cpu_count} core(s); the >= 2x assertion needs >= 4 "
                "physical cores to be meaningful"
            ),
        }
    payload = {
        "benchmark": "parallel_orchestrator",
        "workload": {
            "kind": "hotspot",
            "topology": "mesh:8",
            "policies": list(policies),
            "seeds": n_seeds,
            "cells": len(tasks),
            "repetitions": REPETITIONS,
        },
        "cpu_count": cpu_count,
        "workers": workers,
        "oversubscribed": oversubscribed,
        "serial_wall_s": round(serial.wall_s, 4),
        "parallel_wall_s": round(parallel.wall_s, 4),
        "speedup": round(speedup, 3) if speedup is not None else None,
        "cached_wall_s": round(cached.wall_s, 4),
        "cache_hit_rate": cached.cache_hits / len(tasks),
        "bit_identical": True,
        "cells_per_s_parallel": round(len(tasks) / parallel.wall_s, 3)
        if parallel.wall_s > 0 else 0.0,
        "speedup_assertion": speedup_assertion,
    }
    with open(out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(json.dumps(payload, indent=2, sort_keys=True))
    if speedup_assertion["checked"]:
        assert speedup >= 2.0, (
            f"expected >= 2x speedup with {workers} workers on {cpu_count} "
            f"cores, measured {speedup:.2f}x"
        )
    else:
        print(f"SKIPPED speedup assertion: {speedup_assertion['skipped_reason']}")
    return payload


def bench_parallel_orchestrator(benchmark):
    """pytest-benchmark entry point (one full serial+parallel+cached pass)."""
    benchmark.pedantic(run_bench, rounds=1, iterations=1)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--policies", nargs="+", default=list(DEFAULT_POLICIES))
    parser.add_argument("--seeds", type=int, default=8)
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--out", default="BENCH_parallel.json")
    args = parser.parse_args()
    run_bench(
        policies=args.policies, n_seeds=args.seeds,
        workers=args.workers, out=args.out,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
