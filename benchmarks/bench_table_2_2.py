"""Table 2.2: parallel-application phases and repetition weights."""

from repro.experiments.config import FULL
from repro.experiments.scenarios import table_2_2_phases

from conftest import run_scenario


def bench_table_2_2_phases(benchmark):
    run_scenario(benchmark, table_2_2_phases, FULL)
