"""Figs 4.13-4.14: fat-tree perfect shuffle, 32 nodes."""

from repro.experiments.config import FULL
from repro.experiments.scenarios import fig_4_13_14_shuffle_32

from conftest import run_scenario


def bench_fig_4_13_14_shuffle_32(benchmark):
    run_scenario(benchmark, fig_4_13_14_shuffle_32, FULL)
