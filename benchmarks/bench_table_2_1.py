"""Table 2.1: MPI communication-call breakdown across applications."""

from repro.experiments.config import FULL
from repro.experiments.scenarios import table_2_1_mpi_breakdown

from conftest import run_scenario


def bench_table_2_1_mpi_breakdown(benchmark):
    run_scenario(benchmark, table_2_1_mpi_breakdown, FULL)
