"""Figs 4.15-4.16: fat-tree bit reversal, 32 nodes."""

from repro.experiments.config import FULL
from repro.experiments.scenarios import fig_4_15_16_bitrev_32

from conftest import run_scenario


def bench_fig_4_15_16_bitrev_32(benchmark):
    run_scenario(benchmark, fig_4_15_16_bitrev_32, FULL)
