"""Figs 4.17-4.18: fat-tree matrix transpose, 64 nodes."""

from repro.experiments.config import FULL
from repro.experiments.scenarios import fig_4_17_18_transpose_64

from conftest import run_scenario


def bench_fig_4_17_18_transpose_64(benchmark):
    run_scenario(benchmark, fig_4_17_18_transpose_64, FULL)
