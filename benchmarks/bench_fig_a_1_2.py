"""Figs A.1-A.2: appendix - matrix transpose, 32 nodes."""

from repro.experiments.config import FULL
from repro.experiments.scenarios import fig_a_1_2_transpose_32

from conftest import run_scenario


def bench_fig_a_1_2_transpose_32(benchmark):
    run_scenario(benchmark, fig_a_1_2_transpose_32, FULL)
