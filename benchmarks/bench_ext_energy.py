"""Extension experiment (§5.2 further work): Per policy energy accounting."""

from repro.experiments.config import FULL
from repro.experiments.scenarios import ext_energy

from conftest import run_scenario


def bench_ext_energy(benchmark):
    run_scenario(benchmark, ext_energy, FULL)
