"""Fig 4.12: average latency over repeated bursts on the mesh."""

from repro.experiments.config import FULL
from repro.experiments.scenarios import fig_4_12_mesh_avg_latency

from conftest import run_scenario


def bench_fig_4_12_mesh_avg_latency(benchmark):
    run_scenario(benchmark, fig_4_12_mesh_avg_latency, FULL)
