"""Figs 4.8-4.9: DRB controlled path-opening procedures."""

from repro.experiments.config import FULL
from repro.experiments.scenarios import fig_4_8_9_path_opening

from conftest import run_scenario


def bench_fig_4_8_9_path_opening(benchmark):
    run_scenario(benchmark, fig_4_8_9_path_opening, FULL)
