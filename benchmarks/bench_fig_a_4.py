"""Fig A.4: appendix - bit reversal, 64 nodes."""

from repro.experiments.config import FULL
from repro.experiments.scenarios import fig_a_4_bitrev_64

from conftest import run_scenario


def bench_fig_a_4_bitrev_64(benchmark):
    run_scenario(benchmark, fig_a_4_bitrev_64, FULL)
