"""Fig 4.21: NAS MG global latency and execution time, classes S/A/B."""

from repro.experiments.config import FULL
from repro.experiments.scenarios import fig_4_21_nas_mg

from conftest import run_scenario


def bench_fig_4_21_nas_mg(benchmark):
    run_scenario(benchmark, fig_4_21_nas_mg, FULL)
