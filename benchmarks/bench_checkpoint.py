"""Benchmark: checkpoint size, save/restore latency, and cadence overhead.

Three questions a crash-safe sweep deployment needs answered
(docs/checkpoint.md):

* how big is a mid-run snapshot, and how does it scale with the
  simulation size;
* how long do ``save_scenario_checkpoint`` / ``load_scenario_checkpoint``
  take, i.e. what does one periodic checkpoint cost;
* what throughput does the default 20k-event cadence cost end to end —
  asserted below 5%, the budget the default was chosen against.

Before timing, it asserts the correctness invariant the numbers rest on:
a cadence-checkpointed run's digests are bit-identical to an untouched
run (the hook only observes event boundaries).

Standalone:
    PYTHONPATH=src python benchmarks/bench_checkpoint.py \
        [--repeats 3] [--out BENCH_checkpoint.json]
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import time
from pathlib import Path

from repro.analysis.replay import run_scenario
from repro.checkpoint.runner import (
    build_context,
    load_scenario_checkpoint,
    save_scenario_checkpoint,
)

#: (mesh_side, repetitions) points spanning small to sweep-sized cells.
SIZES = ((4, 3), (6, 10), (6, 40))

#: the worker default (repro.parallel.worker) whose overhead we budget.
DEFAULT_CADENCE = 200_000

#: cadence dense enough that several snapshots fire inside the
#: benchmark workload, giving a measurable per-save cost.
PROBE_CADENCE = 10_000

#: throughput budget for the default cadence, asserted.
OVERHEAD_BUDGET = 0.05


def _best(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.process_time()
        fn()
        best = min(best, time.process_time() - start)
    return best


def profile_size(mesh_side: int, repetitions: int, repeats: int, tmp: Path) -> dict:
    """Snapshot size + save/restore latency for one scenario size."""
    params = {"policy": "pr-drb", "seed": 0, "mesh_side": mesh_side,
              "repetitions": repetitions}
    context = build_context("replay", params)
    context.sim.run(until=context.until / 2)
    path = tmp / f"size_{mesh_side}x{repetitions}.ckpt"

    save_s = _best(lambda: save_scenario_checkpoint(context, path), repeats)
    restore_s = _best(lambda: load_scenario_checkpoint(path), repeats)
    return {
        "mesh_side": mesh_side,
        "repetitions": repetitions,
        "events_at_snapshot": context.sim.events_executed,
        "snapshot_bytes": os.path.getsize(path),
        "save_s": save_s,
        "restore_s": restore_s,
    }


def _run_with_cadence(params: dict, cadence, tmp: Path):
    """Run one replay cell, optionally checkpointing every ``cadence``
    events exactly as a resumable worker does; returns (digests, rate)."""
    from repro.analysis.replay import finish_scenario

    context = build_context("replay", params)
    if cadence:
        path = tmp / "cadence.ckpt"
        context.sim.set_checkpoint_cadence(
            cadence, lambda: save_scenario_checkpoint(context, path)
        )
    start = time.process_time()
    context.sim.run(until=context.until)
    elapsed = time.process_time() - start
    executed = context.sim.events_executed
    context.sim.set_checkpoint_cadence(None)
    result = finish_scenario(context).to_dict()
    return result, (executed / elapsed if elapsed > 0 else 0.0), executed


def cadence_overhead(repeats: int, tmp: Path) -> dict:
    """Measure per-save cost at a dense probe cadence, then project the
    throughput cost of the worker's default cadence.

    The benchmark workload (~80k events) is smaller than the 200k-event
    default cadence, so the default is probed indirectly: snapshots at
    ``PROBE_CADENCE`` give an empirical cost per save, and the overhead
    at any cadence C is ``save_cost * event_rate / C`` (one save per C
    events).  The probe's own measured overhead is reported too, as a
    sanity anchor for the projection.
    """
    params = {"policy": "pr-drb", "seed": 0, "mesh_side": 6, "repetitions": 40}

    # Correctness first: the cadence hook must not perturb the digests.
    plain, _, _ = _run_with_cadence(params, None, tmp)
    hooked, _, _ = _run_with_cadence(params, PROBE_CADENCE, tmp)
    assert hooked == plain, "cadence checkpointing perturbed the digests"

    rate_off = rate_on = 0.0
    executed = 0
    for _ in range(repeats):
        _, rate, executed = _run_with_cadence(params, None, tmp)
        rate_off = max(rate_off, rate)
        _, rate, _ = _run_with_cadence(params, PROBE_CADENCE, tmp)
        rate_on = max(rate_on, rate)
    saves_per_run = executed // PROBE_CADENCE
    probe_overhead = (rate_off - rate_on) / rate_off if rate_off else 0.0
    # time_on - time_off, amortized over the snapshots that fired.
    save_cost_s = (
        (executed / rate_on - executed / rate_off) / saves_per_run
        if rate_on and rate_off and saves_per_run
        else 0.0
    )
    projected = save_cost_s * rate_off / DEFAULT_CADENCE if rate_off else 0.0
    return {
        "probe_cadence_events": PROBE_CADENCE,
        "default_cadence_events": DEFAULT_CADENCE,
        "run_events": executed,
        "probe_saves_per_run": saves_per_run,
        "events_per_s_off": rate_off,
        "events_per_s_probe": rate_on,
        "probe_overhead": probe_overhead,
        "save_cost_s": save_cost_s,
        "default_cadence_overhead": projected,
        "budget": OVERHEAD_BUDGET,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--out", default="BENCH_checkpoint.json")
    args = parser.parse_args(argv)

    # Resume correctness smoke: a restored cell finishes with the same
    # digests as an uninterrupted one (the exhaustive gate is
    # ``python -m repro.checkpoint verify``).
    with tempfile.TemporaryDirectory() as tmpdir:
        tmp = Path(tmpdir)
        params = {"policy": "pr-drb", "seed": 0, "mesh_side": 4, "repetitions": 3}
        reference = run_scenario(**params).to_dict()
        context = build_context("replay", params)
        context.sim.run(until=context.until / 2)
        save_scenario_checkpoint(context, tmp / "smoke.ckpt")
        from repro.analysis.replay import finish_scenario

        _, resumed = load_scenario_checkpoint(tmp / "smoke.ckpt")
        resumed.sim.run(until=resumed.until)
        assert finish_scenario(resumed).to_dict() == reference, "resume drift"

        sizes = [profile_size(m, r, args.repeats, tmp) for m, r in SIZES]
        cadence = cadence_overhead(args.repeats, tmp)

    assert cadence["default_cadence_overhead"] < OVERHEAD_BUDGET, (
        f"default-cadence overhead {cadence['default_cadence_overhead']:.1%} "
        f"exceeds {OVERHEAD_BUDGET:.0%} budget"
    )

    report = {
        "benchmark": "checkpoint",
        "repeats": args.repeats,
        "sizes": sizes,
        "cadence": cadence,
    }
    Path(args.out).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(json.dumps(report, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
