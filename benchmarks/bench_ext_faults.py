"""Extension: fault-injection campaign resilience comparison."""

from repro.experiments.config import FULL
from repro.experiments.scenarios import ext_fault_resilience

from conftest import run_scenario


def bench_ext_fault_resilience(benchmark):
    run_scenario(benchmark, ext_fault_resilience, FULL)
