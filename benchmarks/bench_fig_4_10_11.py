"""Figs 4.10-4.11: mesh hot-spot latency maps, DRB vs PR-DRB."""

from repro.experiments.config import FULL
from repro.experiments.scenarios import fig_4_10_11_latency_map_mesh

from conftest import run_scenario


def bench_fig_4_10_11_latency_map_mesh(benchmark):
    run_scenario(benchmark, fig_4_10_11_latency_map_mesh, FULL)
