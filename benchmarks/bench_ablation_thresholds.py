"""Ablation: Threshold_High factor (zone boundaries)."""

from repro.experiments.config import FULL
from repro.experiments.scenarios import ablation_zone_thresholds

from conftest import run_scenario


def bench_ablation_thresholds(benchmark):
    run_scenario(benchmark, ablation_zone_thresholds, FULL)
