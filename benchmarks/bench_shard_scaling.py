"""Benchmark: space-parallel sharded simulation vs serial execution.

Thin wrapper over :mod:`repro.shard.bench` so the measurement lives with
the shard package (the ``python -m repro.shard bench`` subcommand runs
the same code).  Writes ``BENCH_shard.json`` at the repo root.

Standalone:
    PYTHONPATH=src python benchmarks/bench_shard_scaling.py \
        [--quick] [--shards 2 4] [--scenarios mesh16 dragonfly] [--out BENCH_shard.json]
"""

from __future__ import annotations

from repro.shard.bench import main, run_bench

__all__ = ["main", "run_bench", "bench_shard_scaling"]


def bench_shard_scaling(benchmark):
    """pytest-benchmark entry point (one quick serial+sharded pass)."""
    benchmark.pedantic(run_bench, kwargs={"quick": True}, rounds=1, iterations=1)


if __name__ == "__main__":
    raise SystemExit(main())
