"""Rank-to-host placement strategies (§3.1).

The thesis notes that routing performance "depends mostly on the
communication pattern used and the mapping of nodes to processors".
:class:`~repro.mpi.runtime.TraceRuntime` accepts an explicit
``rank_to_host`` mapping; this module provides the strategies:

* :func:`linear_mapping` — rank i on host i (the default everywhere);
* :func:`random_mapping` — a seeded permutation (the worst-case of
  locality studies);
* :func:`affinity_mapping` — greedy communication-aware placement: ranks
  that exchange the most volume are packed onto the same leaf switch /
  router neighbourhood, shrinking the traffic the fabric has to carry.
"""

from __future__ import annotations

import numpy as np

from repro.sim.rng import seeded_generator
from repro.topology.base import Topology


def linear_mapping(num_ranks: int, topology: Topology) -> list[int]:
    """Rank i -> host i."""
    if num_ranks > topology.num_hosts:
        raise ValueError("more ranks than hosts")
    return list(range(num_ranks))


def random_mapping(
    num_ranks: int,
    topology: Topology,
    seed: int = 0,
    rng: np.random.Generator | None = None,
) -> list[int]:
    """A seeded random placement over all hosts.

    Pass ``rng`` (e.g. a :class:`~repro.sim.rng.RandomStreams` stream) to
    tie the permutation to an experiment's stream family; the seed-based
    default stays bit-compatible with earlier releases.
    """
    if num_ranks > topology.num_hosts:
        raise ValueError("more ranks than hosts")
    if rng is None:
        rng = seeded_generator(seed)
    hosts = rng.permutation(topology.num_hosts)[:num_ranks]
    return [int(h) for h in hosts]


def _host_groups(topology: Topology) -> list[list[int]]:
    """Hosts grouped by their attachment router, densest packing first."""
    groups: dict[int, list[int]] = {}
    for host in range(topology.num_hosts):
        groups.setdefault(topology.host_router(host), []).append(host)
    return sorted(groups.values(), key=lambda g: (-len(g), g[0]))


def affinity_mapping(
    comm_matrix: np.ndarray, topology: Topology
) -> list[int]:
    """Greedy volume-aware placement.

    Orders ranks by a max-affinity traversal of the communication matrix
    (start from the heaviest communicator; repeatedly append the unplaced
    rank with the largest volume to those already placed) and fills host
    groups — same-leaf hosts first — in that order.  Ranks that talk the
    most therefore share a router, and their traffic never enters the
    fabric.
    """
    n = comm_matrix.shape[0]
    if comm_matrix.shape != (n, n):
        raise ValueError("communication matrix must be square")
    if n > topology.num_hosts:
        raise ValueError("more ranks than hosts")
    symmetric = comm_matrix + comm_matrix.T
    placed: list[int] = []
    remaining = set(range(n))
    current = int(symmetric.sum(axis=1).argmax())
    placed.append(current)
    remaining.discard(current)
    while remaining:
        affinity = symmetric[placed].sum(axis=0)
        best = max(remaining, key=lambda r: (affinity[r], -r))
        placed.append(best)
        remaining.discard(best)
    # Fill host groups (leaf switches) in traversal order.
    slots: list[int] = []
    for group in _host_groups(topology):
        slots.extend(group)
    mapping = [0] * n
    for rank, host in zip(placed, slots):
        mapping[rank] = host
    return mapping


def mapping_cost(
    comm_matrix: np.ndarray, mapping: list[int], topology: Topology
) -> float:
    """Volume-weighted mean hop distance of a placement.

    The objective :func:`affinity_mapping` greedily reduces; 0.0 when all
    communication is intra-router.
    """
    total = 0.0
    volume = 0.0
    n = comm_matrix.shape[0]
    for src in range(n):
        row = comm_matrix[src]
        for dst in np.nonzero(row)[0]:
            v = float(row[dst])
            hops = topology.distance(
                topology.host_router(mapping[src]),
                topology.host_router(mapping[int(dst)]),
            )
            total += v * hops
            volume += v
    return total / volume if volume else 0.0
