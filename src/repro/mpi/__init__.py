"""Logical-trace MPI layer (§4.7, Fig. 4.19).

The paper drives its network models with *logical traces* extracted from
real MPI applications: per-rank streams of compute and communication
events whose dependencies (blocking receives, collective rounds) are
re-executed inside the simulator.  This subpackage provides the event
vocabulary, collective-to-point-to-point lowering, the trace container
and the trace-driven runtime that replays a trace over a fabric.
"""

from repro.mpi.events import (
    Allreduce,
    Barrier,
    Bcast,
    Compute,
    Irecv,
    Isend,
    MPI_CALL_IDS,
    Recv,
    Reduce,
    Send,
    Wait,
    Waitall,
)
from repro.mpi.trace import Trace, call_breakdown, communication_matrix
from repro.mpi.collectives import lower_collectives
from repro.mpi.runtime import TraceRuntime

__all__ = [
    "Compute",
    "Send",
    "Recv",
    "Isend",
    "Irecv",
    "Wait",
    "Waitall",
    "Allreduce",
    "Reduce",
    "Bcast",
    "Barrier",
    "MPI_CALL_IDS",
    "Trace",
    "call_breakdown",
    "communication_matrix",
    "lower_collectives",
    "TraceRuntime",
]
