"""Trace container and trace-level analyses.

A :class:`Trace` is the logical record of one application run: per-rank
event streams plus metadata.  Two analyses from Chapter 2 are provided:

* :func:`call_breakdown` — the Table 2.1 percentage breakdown of MPI
  calls;
* :func:`communication_matrix` — the Figs 2.10-2.13 byte-volume matrix
  and TDC (topological degree of communication).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.mpi.events import Allreduce, Barrier, Bcast, Isend, Reduce, Send


@dataclass
class Trace:
    """Per-rank logical event streams for one application."""

    name: str
    num_ranks: int
    events: dict[int, list] = field(default_factory=dict)
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        for rank in range(self.num_ranks):
            self.events.setdefault(rank, [])

    def append(self, rank: int, event) -> None:
        if not 0 <= rank < self.num_ranks:
            raise ValueError(f"rank {rank} out of range")
        self.events[rank].append(event)

    def extend(self, rank: int, events) -> None:
        for e in events:
            self.append(rank, e)

    @property
    def total_events(self) -> int:
        return sum(len(v) for v in self.events.values())

    def ranks(self) -> range:
        return range(self.num_ranks)


def call_breakdown(trace: Trace) -> dict[str, float]:
    """Fraction of each MPI call over all *communication* events.

    Mirrors Table 2.1: compute events are excluded; collectives are
    counted once per participating rank (as a profiler would see them).
    """
    counts: Counter[str] = Counter()
    for events in trace.events.values():
        for e in events:
            call = e.call
            if call == "compute":
                continue
            counts[call] += 1
    total = sum(counts.values())
    if total == 0:
        return {}
    return {call: n / total for call, n in sorted(counts.items())}


def communication_matrix(trace: Trace, include_collectives: bool = True) -> np.ndarray:
    """Byte-volume matrix ``M[src, dst]`` over point-to-point sends.

    With ``include_collectives`` collectives are expanded notionally:
    allreduce/barrier contribute a recursive-doubling exchange volume,
    bcast/reduce a binomial tree — matching what the network actually
    carries after lowering.  Without it, only explicit point-to-point
    sends count, which is how the thesis reads TDC off its matrices
    (Sweep3D "TDC is 4", LAMMPS "TDC is 7" — the halo structure).
    """
    from repro.mpi.collectives import collective_pairs

    n = trace.num_ranks
    matrix = np.zeros((n, n))
    all_ranks = list(range(n))
    for rank, events in trace.events.items():
        for e in events:
            if isinstance(e, (Send, Isend)):
                matrix[rank, e.dst] += e.size_bytes
            elif include_collectives and isinstance(
                e, (Allreduce, Reduce, Bcast, Barrier)
            ):
                size = getattr(e, "size_bytes", 0) or 64  # barrier: token
                for src, dst in collective_pairs(e, rank, all_ranks):
                    if src == rank:
                        matrix[src, dst] += size
    return matrix


def tdc(matrix: np.ndarray) -> np.ndarray:
    """Per-rank topological degree of communication (distinct partners)."""
    sends = (matrix > 0).sum(axis=1)
    return sends


def mean_tdc(matrix: np.ndarray) -> float:
    values = tdc(matrix)
    return float(values.mean()) if values.size else 0.0
