"""Trace-driven rank engine (§4.7, Fig. 4.19).

:class:`TraceRuntime` replays a logical trace over a fabric: each rank is
a little interpreter advancing through its event stream; blocking receives
suspend the rank until the fabric delivers the matching message, compute
events advance the rank's local clock, and sends are injected through the
routing policy under test.  The application *execution time* (Fig. 4.21b,
4.25b, 4.27b) is the simulated time at which the last rank finishes.
"""

from __future__ import annotations

from collections import Counter
from typing import Optional

from repro.mpi.collectives import lower_collectives
from repro.mpi.events import (
    MPI_CALL_IDS,
    Compute,
    Irecv,
    Isend,
    Recv,
    Send,
    Wait,
    Waitall,
)
from repro.mpi.trace import Trace
from repro.network.fabric import Fabric

#: tag occupies the low 32 bits of Packet.mpi_seq; a per-runtime counter
#: in the high bits keeps message reassembly keys unique.
_TAG_BITS = 32
_TAG_MASK = (1 << _TAG_BITS) - 1


class TraceRuntime:
    """Replays one lowered trace over a fabric."""

    def __init__(
        self,
        fabric: Fabric,
        trace: Trace,
        rank_to_host: Optional[list[int]] = None,
    ) -> None:
        self.fabric = fabric
        if any(
            not isinstance(e, (Compute, Send, Recv, Isend, Irecv, Wait, Waitall))
            for events in trace.events.values()
            for e in events
        ):
            trace = lower_collectives(trace)
        self.trace = trace
        n = trace.num_ranks
        if rank_to_host is None:
            rank_to_host = list(range(n))
        if len(rank_to_host) != n:
            raise ValueError("rank_to_host must cover every rank")
        if n > fabric.topology.num_hosts:
            raise ValueError("more ranks than hosts")
        self.rank_to_host = list(rank_to_host)
        self.host_to_rank = {h: r for r, h in enumerate(self.rank_to_host)}
        self._pc = [0] * n
        #: arrived-but-unconsumed messages per rank: (src_rank, tag) -> count.
        self._mailbox: list[Counter] = [Counter() for _ in range(n)]
        #: blocking state per rank: None, ("recv", src, tag) or ("waitall",).
        self._blocked: list[Optional[tuple]] = [None] * n
        #: outstanding irecv requests per rank: request id -> (src, tag).
        self._irecvs: list[dict[int, tuple[int, int]]] = [dict() for _ in range(n)]
        self._seq_counter = 0
        self.finished_ranks = 0
        self.finish_time: Optional[float] = None
        self.messages_sent = 0
        self._started = False
        # Hook message delivery on every participating host.
        for rank, host in enumerate(self.rank_to_host):
            fabric.nodes[host].message_handler = self._make_handler(rank)

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Arm every rank at the current simulation time."""
        self._started = True
        for rank in self.trace.ranks():
            self.fabric.sim.schedule(0.0, self._advance, rank)

    def run(self, timeout_s: float = 10.0) -> float:
        """Start (if needed) and run until all ranks finish; returns the
        execution time.  Raises RuntimeError on deadlock/timeout."""
        if not self._started:
            self.start()
        self.fabric.sim.run(until=self.fabric.sim.now + timeout_s)
        if self.finish_time is None:
            stuck = [r for r in self.trace.ranks() if self._blocked[r] is not None]
            raise RuntimeError(
                f"trace did not complete within {timeout_s}s; "
                f"blocked ranks: {stuck[:8]}{'...' if len(stuck) > 8 else ''}"
            )
        return self.finish_time

    @property
    def done(self) -> bool:
        return self.finish_time is not None

    # ------------------------------------------------------------------
    # Rank interpreter
    # ------------------------------------------------------------------
    def _advance(self, rank: int) -> None:
        events = self.trace.events[rank]
        pc = self._pc[rank]
        sim = self.fabric.sim
        while pc < len(events):
            e = events[pc]
            if isinstance(e, Compute):
                pc += 1
                if e.duration_s > 0:
                    self._pc[rank] = pc
                    sim.schedule(e.duration_s, self._advance, rank)
                    return
            elif isinstance(e, (Send, Isend)):
                self._send(rank, e)
                pc += 1
            elif isinstance(e, Recv):
                if self._try_consume(rank, e.src, e.tag):
                    pc += 1
                else:
                    self._pc[rank] = pc
                    self._blocked[rank] = ("recv", e.src, e.tag)
                    return
            elif isinstance(e, Irecv):
                self._irecvs[rank][e.request] = (e.src, e.tag)
                pc += 1
            elif isinstance(e, Wait):
                pending = self._irecvs[rank].get(e.request)
                if pending is None:
                    pc += 1  # isend or unknown request: instantly complete
                elif self._try_consume(rank, *pending):
                    del self._irecvs[rank][e.request]
                    pc += 1
                else:
                    self._pc[rank] = pc
                    self._blocked[rank] = ("recv", *pending)
                    return
            elif isinstance(e, Waitall):
                self._drain_irecvs(rank)
                if self._irecvs[rank]:
                    self._pc[rank] = pc
                    self._blocked[rank] = ("waitall",)
                    return
                pc += 1
            else:  # pragma: no cover - lowering guarantees coverage
                raise TypeError(f"unexpected event {e!r}")
        self._pc[rank] = pc
        self._finish_rank(rank)

    def _send(self, rank: int, e) -> None:
        self._seq_counter += 1
        seq = (self._seq_counter << _TAG_BITS) | (e.tag & _TAG_MASK)
        self.fabric.send(
            self.rank_to_host[rank],
            self.rank_to_host[e.dst],
            e.size_bytes,
            mpi_type=MPI_CALL_IDS[e.call],
            mpi_seq=seq,
        )
        self.messages_sent += 1

    def _finish_rank(self, rank: int) -> None:
        if self._blocked[rank] == "done":
            return
        self._blocked[rank] = "done"
        self.finished_ranks += 1
        if self.finished_ranks == self.trace.num_ranks:
            self.finish_time = self.fabric.sim.now

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------
    def _try_consume(self, rank: int, src: int, tag: int) -> bool:
        box = self._mailbox[rank]
        key = (src, tag)
        if box[key] > 0:
            box[key] -= 1
            return True
        return False

    def _drain_irecvs(self, rank: int) -> None:
        satisfied = [
            req
            for req, (src, tag) in self._irecvs[rank].items()
            if self._try_consume(rank, src, tag)
        ]
        for req in satisfied:
            del self._irecvs[rank][req]

    def _make_handler(self, rank: int):
        def handler(src_host: int, mpi_type: int, mpi_seq: int, size: int, now: float):
            src_rank = self.host_to_rank.get(src_host)
            if src_rank is None or mpi_seq < 0:
                return
            tag = mpi_seq & _TAG_MASK
            self._mailbox[rank][(src_rank, tag)] += 1
            self._maybe_wake(rank)

        return handler

    def _maybe_wake(self, rank: int) -> None:
        blocked = self._blocked[rank]
        if blocked is None or blocked == "done":
            return
        if blocked[0] == "recv":
            _, src, tag = blocked
            if self._mailbox[rank][(src, tag)] > 0:
                self._blocked[rank] = None
                self.fabric.sim.schedule(0.0, self._resume, rank, ("recv", src, tag))
        elif blocked[0] == "waitall":
            self._drain_irecvs(rank)
            if not self._irecvs[rank]:
                self._blocked[rank] = None
                self.fabric.sim.schedule(0.0, self._advance_past_block, rank)

    def _resume(self, rank: int, expected: tuple) -> None:
        """Consume the message the rank was blocked on, then continue."""
        _, src, tag = expected
        if not self._try_consume(rank, src, tag):  # raced with another event
            self._blocked[rank] = expected
            return
        self._pc[rank] += 1
        self._advance(rank)

    def _advance_past_block(self, rank: int) -> None:
        self._pc[rank] += 1
        self._advance(rank)
