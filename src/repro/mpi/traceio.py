"""Trace serialization (JSON).

The paper's framework extracts logical traces from running applications
and feeds them to the simulator (§4.7.1, Fig. 4.19).  This module is the
interchange format: traces round-trip through plain JSON so externally
extracted traces can be replayed, and synthesized traces can be archived
with experiment results.

Format::

    {
      "name": "...", "num_ranks": N, "metadata": {...},
      "events": {"0": [["compute", 1e-5], ["send", dst, size, tag], ...]}
    }
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Union

from repro.mpi.events import (
    Allreduce,
    Barrier,
    Bcast,
    Compute,
    Irecv,
    Isend,
    Recv,
    Reduce,
    Send,
    Wait,
    Waitall,
)
from repro.mpi.trace import Trace

#: event -> compact list encoding.
_ENCODERS = {
    Compute: lambda e: ["compute", e.duration_s],
    Send: lambda e: ["send", e.dst, e.size_bytes, e.tag],
    Recv: lambda e: ["recv", e.src, e.tag],
    Isend: lambda e: ["isend", e.dst, e.size_bytes, e.tag, e.request],
    Irecv: lambda e: ["irecv", e.src, e.tag, e.request],
    Wait: lambda e: ["wait", e.request],
    Waitall: lambda e: ["waitall"],
    Allreduce: lambda e: ["allreduce", e.size_bytes],
    Reduce: lambda e: ["reduce", e.size_bytes, e.root],
    Bcast: lambda e: ["bcast", e.size_bytes, e.root],
    Barrier: lambda e: ["barrier"],
}

_DECODERS = {
    "compute": lambda a: Compute(float(a[0])),
    "send": lambda a: Send(int(a[0]), int(a[1]), int(a[2])),
    "recv": lambda a: Recv(int(a[0]), int(a[1])),
    "isend": lambda a: Isend(int(a[0]), int(a[1]), int(a[2]), int(a[3])),
    "irecv": lambda a: Irecv(int(a[0]), int(a[1]), int(a[2])),
    "wait": lambda a: Wait(int(a[0])),
    "waitall": lambda a: Waitall(),
    "allreduce": lambda a: Allreduce(int(a[0])),
    "reduce": lambda a: Reduce(int(a[0]), int(a[1])),
    "bcast": lambda a: Bcast(int(a[0]), int(a[1])),
    "barrier": lambda a: Barrier(),
}


def trace_to_dict(trace: Trace) -> dict:
    """Encode a trace as a JSON-ready dictionary."""
    events = {}
    for rank in trace.ranks():
        encoded = []
        for e in trace.events[rank]:
            encoder = _ENCODERS.get(type(e))
            if encoder is None:
                raise TypeError(f"cannot serialize event {e!r}")
            encoded.append(encoder(e))
        events[str(rank)] = encoded
    return {
        "name": trace.name,
        "num_ranks": trace.num_ranks,
        "metadata": trace.metadata,
        "events": events,
    }


def trace_from_dict(data: dict) -> Trace:
    """Decode :func:`trace_to_dict` output back into a Trace."""
    trace = Trace(
        name=data["name"],
        num_ranks=int(data["num_ranks"]),
        metadata=dict(data.get("metadata", {})),
    )
    for rank_str, encoded in data.get("events", {}).items():
        rank = int(rank_str)
        for item in encoded:
            kind, args = item[0], item[1:]
            decoder = _DECODERS.get(kind)
            if decoder is None:
                raise ValueError(f"unknown event kind {kind!r}")
            trace.append(rank, decoder(args))
    return trace


def save_trace(trace: Trace, target: Union[str, Path, IO[str]]) -> None:
    """Write a trace to a path or open text file."""
    data = trace_to_dict(trace)
    if hasattr(target, "write"):
        json.dump(data, target)
    else:
        Path(target).write_text(json.dumps(data))


def load_trace(source: Union[str, Path, IO[str]]) -> Trace:
    """Read a trace from a path or open text file."""
    if hasattr(source, "read"):
        data = json.load(source)
    else:
        data = json.loads(Path(source).read_text())
    return trace_from_dict(data)
