"""MPI logical-trace event vocabulary (Table 2.1 call set).

Every event a synthesized application trace may contain.  Point-to-point
events carry rank-level ids (the runtime maps ranks to hosts); sizes are
bytes.  ``Compute`` is the paper's ``Compute(t)`` event emulating serial
computation between communications (§4.7.1).
"""

from __future__ import annotations

from dataclasses import dataclass

#: ids stamped into Packet.mpi_type (Fig. 3.16), one per Table 2.1 call.
MPI_CALL_IDS = {
    "compute": 0,
    "send": 1,
    "recv": 2,
    "isend": 3,
    "irecv": 4,
    "wait": 5,
    "waitall": 6,
    "allreduce": 7,
    "reduce": 8,
    "bcast": 9,
    "barrier": 10,
}


@dataclass(frozen=True)
class Compute:
    """Serial computation of ``duration_s`` seconds."""

    duration_s: float
    call = "compute"


@dataclass(frozen=True)
class Send:
    """Blocking standard-mode send (buffered: completes at injection)."""

    dst: int
    size_bytes: int
    tag: int = 0
    call = "send"


@dataclass(frozen=True)
class Recv:
    """Blocking receive matching ``(src, tag)``."""

    src: int
    tag: int = 0
    call = "recv"


@dataclass(frozen=True)
class Isend:
    """Non-blocking send; completion is tracked by ``request``."""

    dst: int
    size_bytes: int
    tag: int = 0
    request: int = 0
    call = "isend"


@dataclass(frozen=True)
class Irecv:
    """Non-blocking receive posting ``request`` for ``(src, tag)``."""

    src: int
    tag: int = 0
    request: int = 0
    call = "irecv"


@dataclass(frozen=True)
class Wait:
    """Block until ``request`` completes."""

    request: int
    call = "wait"


@dataclass(frozen=True)
class Waitall:
    """Block until every currently outstanding request completes."""

    call = "waitall"


@dataclass(frozen=True)
class Allreduce:
    """All-to-all reduction of ``size_bytes`` over the communicator."""

    size_bytes: int
    call = "allreduce"


@dataclass(frozen=True)
class Reduce:
    """Reduction of ``size_bytes`` to ``root``."""

    size_bytes: int
    root: int = 0
    call = "reduce"


@dataclass(frozen=True)
class Bcast:
    """Broadcast of ``size_bytes`` from ``root``."""

    size_bytes: int
    root: int = 0
    call = "bcast"


@dataclass(frozen=True)
class Barrier:
    """Synchronization across the communicator."""

    call = "barrier"


#: events the collective-lowering pass must expand.
COLLECTIVES = (Allreduce, Reduce, Bcast, Barrier)
#: events the runtime executes directly.
POINT_TO_POINT = (Compute, Send, Recv, Isend, Irecv, Wait, Waitall)
