"""Collective-communication lowering (§2.2.4).

The fabric only moves point-to-point messages, so collectives are lowered
to the classic algorithms before a trace is replayed:

* **allreduce / barrier** — recursive doubling (dissemination for the
  barrier), with the standard fold-in/fold-out adjustment for non-power-
  of-two communicators;
* **bcast** — binomial tree from the root;
* **reduce** — binomial tree toward the root.

Lowering assumes SPMD traces: every rank executes the same sequence of
collectives (validated), so the per-rank collective counters agree and
the generated tags match across ranks.
"""

from __future__ import annotations

from repro.mpi.events import (
    Allreduce,
    Barrier,
    Bcast,
    Recv,
    Reduce,
    Send,
)

#: tags at or above this value are reserved for lowered collectives.
COLLECTIVE_TAG_BASE = 1 << 20
#: stride between collective instances in tag space (max rounds per op).
_TAG_STRIDE = 64
#: token size modelling a payload-free synchronization message.
BARRIER_TOKEN_BYTES = 64


def _tag(instance: int, round_: int) -> int:
    return COLLECTIVE_TAG_BASE + instance * _TAG_STRIDE + round_


def _allreduce_schedule(rank: int, n: int, size: int, instance: int) -> list:
    """Recursive doubling with fold-in/out for non-power-of-two n."""
    events: list = []
    p = 1 << (n.bit_length() - 1)
    if p == n:
        base = rank
        in_base = True
    else:
        in_base = rank < p
        base = rank
    round_ = 0
    if p != n:
        # Fold-in: extras hand their contribution to rank - p.
        if rank >= p:
            events.append(Send(rank - p, size, _tag(instance, round_)))
        elif rank + p < n:
            events.append(Recv(rank + p, _tag(instance, round_)))
        round_ += 1
    if in_base:
        k = 1
        while k < p:
            partner = rank ^ k
            events.append(Send(partner, size, _tag(instance, round_)))
            events.append(Recv(partner, _tag(instance, round_)))
            round_ += 1
            k <<= 1
    else:
        round_ += p.bit_length() - 1
    if p != n:
        # Fold-out: results go back to the extras.
        if rank >= p:
            events.append(Recv(rank - p, _tag(instance, round_)))
        elif rank + p < n:
            events.append(Send(rank + p, size, _tag(instance, round_)))
    return events


def _barrier_schedule(rank: int, n: int, instance: int) -> list:
    """Dissemination barrier: ceil(log2 n) rounds of shifted exchanges."""
    events: list = []
    round_ = 0
    k = 1
    while k < n:
        to = (rank + k) % n
        frm = (rank - k) % n
        events.append(Send(to, BARRIER_TOKEN_BYTES, _tag(instance, round_)))
        events.append(Recv(frm, _tag(instance, round_)))
        round_ += 1
        k <<= 1
    return events


def _bcast_schedule(rank: int, n: int, size: int, root: int, instance: int) -> list:
    """Binomial tree: relabelled rank v receives once, then fans out."""
    events: list = []
    v = (rank - root) % n
    round_ = 0
    k = 1
    while k < n:
        if v < k and v + k < n:
            events.append(Send((v + k + root) % n, size, _tag(instance, round_)))
        elif k <= v < 2 * k:
            events.append(Recv((v - k + root) % n, _tag(instance, round_)))
        round_ += 1
        k <<= 1
    return events


def _reduce_schedule(rank: int, n: int, size: int, root: int, instance: int) -> list:
    """Binomial tree toward the root: the bcast tree with arrows reversed."""
    events: list = []
    v = (rank - root) % n
    rounds = []
    k = 1
    round_ = 0
    while k < n:
        rounds.append((k, round_))
        round_ += 1
        k <<= 1
    for k, round_ in reversed(rounds):
        if v < k and v + k < n:
            events.append(Recv((v + k + root) % n, _tag(instance, round_)))
        elif k <= v < 2 * k:
            events.append(Send((v - k + root) % n, size, _tag(instance, round_)))
    return events


def lower_rank_collective(event, rank: int, n: int, instance: int) -> list:
    """Lower one collective event for one rank."""
    if isinstance(event, Allreduce):
        return _allreduce_schedule(rank, n, event.size_bytes, instance)
    if isinstance(event, Barrier):
        return _barrier_schedule(rank, n, instance)
    if isinstance(event, Bcast):
        return _bcast_schedule(rank, n, event.size_bytes, event.root, instance)
    if isinstance(event, Reduce):
        return _reduce_schedule(rank, n, event.size_bytes, event.root, instance)
    raise TypeError(f"not a collective: {event!r}")


def collective_pairs(event, rank: int, ranks: list[int]):
    """(src, dst) pairs in which ``rank`` sends, for volume accounting."""
    n = len(ranks)
    for e in lower_rank_collective(event, rank, n, instance=0):
        if isinstance(e, Send):
            yield (rank, e.dst)


def lower_collectives(trace):
    """Replace every collective in ``trace`` with its point-to-point form.

    Returns a new :class:`~repro.mpi.trace.Trace`; raises ValueError when
    ranks disagree on their collective sequences (a non-SPMD trace would
    deadlock at replay).
    """
    from repro.mpi.trace import Trace

    n = trace.num_ranks
    signatures = []
    for rank in trace.ranks():
        sig = [
            (type(e).__name__, getattr(e, "root", None))
            for e in trace.events[rank]
            if isinstance(e, (Allreduce, Barrier, Bcast, Reduce))
        ]
        signatures.append(sig)
    if any(sig != signatures[0] for sig in signatures[1:]):
        raise ValueError("ranks disagree on collective sequence; trace is not SPMD")

    lowered = Trace(
        name=trace.name,
        num_ranks=n,
        metadata={**trace.metadata, "collectives_lowered": True},
    )
    for rank in trace.ranks():
        instance = 0
        out = lowered.events[rank]
        for e in trace.events[rank]:
            if isinstance(e, (Allreduce, Barrier, Bcast, Reduce)):
                out.extend(lower_rank_collective(e, rank, n, instance))
                instance += 1
            else:
                out.append(e)
    return lowered
