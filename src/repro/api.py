"""High-level convenience API.

Wraps the lower-level pieces (topology, fabric, policy, recorder, traffic)
into two calls: :func:`build_network` and :func:`run_synthetic`.  The
experiment harness and the examples are built on these.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.metrics.recorder import StatsRecorder
from repro.network.config import NetworkConfig
from repro.network.fabric import DESTINATION_BASED, Fabric
from repro.routing import make_policy
from repro.routing.base import RoutingPolicy
from repro.sim.engine import Simulator
from repro.topology.base import Topology
from repro.topology.fattree import KaryNTree
from repro.topology.hypercube import Hypercube
from repro.topology.karycube import KaryNCube
from repro.topology.mesh import Mesh2D, Torus2D
from repro.traffic.bursty import BurstSchedule
from repro.traffic.generators import SyntheticTrafficSource
from repro.traffic.patterns import make_pattern


@dataclass
class NetworkHandle:
    """A ready-to-run simulated network."""

    topology: Topology
    config: NetworkConfig
    policy: RoutingPolicy
    sim: Simulator
    recorder: StatsRecorder
    fabric: Fabric


@dataclass
class RunResult:
    """Outcome of one simulation run."""

    handle: NetworkHandle
    duration_s: float
    messages_sent: int = 0

    @property
    def recorder(self) -> StatsRecorder:
        return self.handle.recorder

    @property
    def mean_latency_s(self) -> float:
        return self.recorder.mean_latency_s

    @property
    def global_average_latency_s(self) -> float:
        return self.recorder.global_average_latency_s

    def summary(self) -> dict:
        out = self.recorder.summary()
        out.update(self.handle.policy.stats())
        out["accepted_ratio"] = self.handle.fabric.accepted_ratio()
        out["duration_s"] = self.duration_s
        return out


def build_topology(topology: str = "mesh", **kwargs) -> Topology:
    """Construct a topology by name: mesh / torus / fattree / hypercube."""
    topology = topology.lower()
    if topology in ("mesh", "mesh2d"):
        return Mesh2D(kwargs.get("width", 8), kwargs.get("height", kwargs.get("width", 8)))
    if topology in ("torus", "torus2d"):
        return Torus2D(kwargs.get("width", 8), kwargs.get("height", kwargs.get("width", 8)))
    if topology in ("fattree", "karyntree", "fat-tree"):
        return KaryNTree(kwargs.get("k", 4), kwargs.get("n", 3))
    if topology == "hypercube":
        return Hypercube(kwargs.get("dimensions", 6))
    if topology in ("karyncube", "torus3d", "cube"):
        return KaryNCube(kwargs.get("k", 4), kwargs.get("n", 3))
    if topology in ("slimtree", "slimmed-fattree"):
        from repro.topology.slimtree import SlimmedKaryNTree

        return SlimmedKaryNTree(
            kwargs.get("k", 4), kwargs.get("n", 3),
            kwargs.get("keep_fraction", 0.5),
        )
    raise ValueError(f"unknown topology {topology!r}")


def build_network(
    topology: str | Topology = "mesh",
    policy: str | RoutingPolicy = "pr-drb",
    config: Optional[NetworkConfig] = None,
    notification: str = DESTINATION_BASED,
    recorder: Optional[StatsRecorder] = None,
    **topology_kwargs,
) -> NetworkHandle:
    """Assemble simulator + topology + routers + policy + recorder."""
    if isinstance(topology, str):
        topology = build_topology(topology, **topology_kwargs)
    if isinstance(policy, str):
        policy = make_policy(policy)
    config = config or NetworkConfig()
    sim = Simulator()
    recorder = recorder or StatsRecorder()
    fabric = Fabric(
        topology, config, policy, sim, recorder=recorder, notification=notification
    )
    return NetworkHandle(topology, config, policy, sim, recorder, fabric)


def run_synthetic(
    handle: NetworkHandle,
    pattern: str = "perfect-shuffle",
    rate_mbps: float = 400.0,
    duration_s: float = 1e-3,
    hosts: Optional[Sequence[int]] = None,
    schedule: Optional[BurstSchedule] = None,
    drain_s: float = 5e-4,
    seed: int = 0,
) -> RunResult:
    """Drive ``handle`` with a synthetic pattern and collect metrics.

    ``hosts`` defaults to all hosts when the topology size is a power of
    two, else the largest power-of-two prefix (permutations are defined on
    power-of-two node counts).
    """
    from repro.sim.rng import RandomStreams

    streams = RandomStreams(seed)
    n = handle.topology.num_hosts
    if hosts is None:
        count = 1 << (n.bit_length() - 1)
        hosts = range(count)
    hosts = list(hosts)
    pat_nodes = 1 << (len(hosts).bit_length() - 1)
    pat = make_pattern(pattern, pat_nodes, rng=streams.stream("pattern"))
    schedule = schedule or BurstSchedule(on_s=duration_s, off_s=0.0)
    source = SyntheticTrafficSource(
        handle.fabric,
        pat,
        hosts=hosts[:pat_nodes],
        rate_bps=rate_mbps * 1e6,
        schedule=schedule,
        stop_s=duration_s,
        rng=streams.stream("traffic"),
    )
    source.start()
    handle.sim.run(until=duration_s + drain_s)
    return RunResult(handle=handle, duration_s=duration_s, messages_sent=source.messages_sent)
