"""Statistics recorder wired into a fabric.

Collects what the evaluation chapter plots:

* global average latency per Eq. 4.2 (per-destination Eq. 4.1 means);
* a windowed time series of mean packet latency (the latency-vs-time
  curves of Figs 4.12-4.18);
* windowed per-router contention latency (the router curves of
  Figs 4.22-4.23, 4.26, 4.28);
* injected/delivered counters for throughput.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar

import numpy as np

from repro.checkpoint.state import Snapshottable
from repro.metrics.latency import GlobalAverageLatency


@dataclass
class TimeSeries(Snapshottable):
    """Windowed averages: ``times[i]`` is the window start, ``values[i]``
    the window's mean."""

    _snapshot_fields_: ClassVar[tuple[str, ...]] = (
        "window_s",
        "times",
        "values",
        "_sum",
        "_count",
        "_window_index",
    )

    window_s: float
    times: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)
    _sum: float = 0.0
    _count: int = 0
    _window_index: int = -1

    def add(self, t: float, value: float) -> None:
        index = int(t / self.window_s)
        if index != self._window_index:
            self._flush()
            self._window_index = index
        self._sum += value
        self._count += 1

    def _flush(self) -> None:
        if self._window_index >= 0 and self._count:
            self.times.append(self._window_index * self.window_s)
            self.values.append(self._sum / self._count)
        self._sum = 0.0
        self._count = 0

    def finalize(self) -> tuple[np.ndarray, np.ndarray]:
        """Close the open window and return (times, values) arrays."""
        self._flush()
        self._window_index = -1
        return np.array(self.times), np.array(self.values)

    def to_dict(self) -> dict:
        """Lossless snapshot, open-window accumulator included.

        Unlike :meth:`finalize` this never mutates: it can run mid-sim
        (the obs cadence snapshots do) without perturbing the series.
        """
        return {
            "window_s": self.window_s,
            "times": list(self.times),
            "values": list(self.values),
            "open_sum": self._sum,
            "open_count": self._count,
            "open_window_index": self._window_index,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TimeSeries":
        series = cls(window_s=float(data["window_s"]))
        series.times = [float(t) for t in data["times"]]
        series.values = [float(v) for v in data["values"]]
        series._sum = float(data["open_sum"])
        series._count = int(data["open_count"])
        series._window_index = int(data["open_window_index"])
        return series


class StatsRecorder(Snapshottable):
    """Fabric-attached collector of the paper's metrics."""

    _snapshot_fields_: ClassVar[tuple[str, ...]] = (
        "window_s",
        "track_router_series",
        "global_latency",
        "latency_series",
        "router_series",
        "packets_delivered",
        "packets_injected",
        "packets_dropped",
        "drops_by_reason",
        "latencies",
        "first_delivery_t",
        "last_delivery_t",
    )

    def __init__(
        self,
        window_s: float = 50e-6,
        track_router_series: bool = False,
    ) -> None:
        self.window_s = window_s
        self.track_router_series = track_router_series
        self.global_latency = GlobalAverageLatency()
        self.latency_series = TimeSeries(window_s)
        # Plain dict (not a defaultdict) so the recorder pickles without
        # closure-captured factories; see _on_router_wait.
        self.router_series: dict[int, TimeSeries] = {}
        self.packets_delivered = 0
        self.packets_injected = 0
        self.packets_dropped = 0
        self.drops_by_reason: dict[str, int] = {}
        self.latencies: list[float] = []
        self.first_delivery_t: float | None = None
        self.last_delivery_t: float = 0.0

    # ------------------------------------------------------------------
    # Fabric hooks
    # ------------------------------------------------------------------
    def attach(self, fabric) -> None:
        if self.track_router_series:
            for router in fabric.routers:
                router.wait_observer = self._on_router_wait

    def on_data_injected(self, packet, now: float) -> None:
        self.packets_injected += 1

    def on_data_delivered(self, packet, latency_s: float, now: float) -> None:
        self.packets_delivered += 1
        self.global_latency.add(packet.dst, latency_s)
        self.latency_series.add(now, latency_s)
        self.latencies.append(latency_s)
        if self.first_delivery_t is None:
            self.first_delivery_t = now
        self.last_delivery_t = now

    def on_data_dropped(self, packet, reason: str, now: float) -> None:
        self.packets_dropped += 1
        self.drops_by_reason[reason] = self.drops_by_reason.get(reason, 0) + 1

    def _on_router_wait(self, router_id: int, now: float, wait_s: float) -> None:
        series = self.router_series.get(router_id)
        if series is None:
            series = self.router_series[router_id] = TimeSeries(self.window_s)
        series.add(now, wait_s)

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------
    @property
    def mean_latency_s(self) -> float:
        """Plain mean over all delivered packets."""
        return float(np.mean(self.latencies)) if self.latencies else 0.0

    @property
    def global_average_latency_s(self) -> float:
        """Eq. 4.2 global average."""
        return self.global_latency.value_s

    def latency_percentile(self, q: float) -> float:
        return float(np.percentile(self.latencies, q)) if self.latencies else 0.0

    def summary(self) -> dict:
        summary = {
            "packets_injected": self.packets_injected,
            "packets_delivered": self.packets_delivered,
            "mean_latency_s": self.mean_latency_s,
            "global_average_latency_s": self.global_average_latency_s,
            "p99_latency_s": self.latency_percentile(99),
        }
        if self.packets_dropped:
            summary["packets_dropped"] = self.packets_dropped
            summary["drops_by_reason"] = {
                reason: self.drops_by_reason[reason]
                for reason in sorted(self.drops_by_reason)
            }
        return summary

    # ------------------------------------------------------------------
    # Serialization (shared by experiment reports and repro.obs snapshots)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Lossless JSON-ready state, windowed series included.

        Never mutates (see :meth:`TimeSeries.to_dict`), so the obs
        cadence can embed it in every snapshot; :meth:`from_dict`
        round-trips exactly.
        """
        return {
            "window_s": self.window_s,
            "track_router_series": self.track_router_series,
            "packets_injected": self.packets_injected,
            "packets_delivered": self.packets_delivered,
            "packets_dropped": self.packets_dropped,
            "drops_by_reason": {
                reason: self.drops_by_reason[reason]
                for reason in sorted(self.drops_by_reason)
            },
            "latencies": list(self.latencies),
            "first_delivery_t": self.first_delivery_t,
            "last_delivery_t": self.last_delivery_t,
            "global_latency": self.global_latency.to_dict(),
            "latency_series": self.latency_series.to_dict(),
            "router_series": {
                str(r): self.router_series[r].to_dict()
                for r in sorted(self.router_series)
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "StatsRecorder":
        recorder = cls(
            window_s=float(data["window_s"]),
            track_router_series=bool(data["track_router_series"]),
        )
        recorder.packets_injected = int(data["packets_injected"])
        recorder.packets_delivered = int(data["packets_delivered"])
        recorder.packets_dropped = int(data["packets_dropped"])
        recorder.drops_by_reason = dict(data["drops_by_reason"])
        recorder.latencies = [float(v) for v in data["latencies"]]
        first = data["first_delivery_t"]
        recorder.first_delivery_t = None if first is None else float(first)
        recorder.last_delivery_t = float(data["last_delivery_t"])
        recorder.global_latency = GlobalAverageLatency.from_dict(
            data["global_latency"]
        )
        recorder.latency_series = TimeSeries.from_dict(data["latency_series"])
        for router, encoded in data["router_series"].items():
            recorder.router_series[int(router)] = TimeSeries.from_dict(encoded)
        return recorder
