"""Evaluation metrics (§4.2).

Average message latency (Eqs 4.1-4.2), throughput (offered vs accepted
load), per-router contention latency, latency surface maps (Fig. 4.7) and
the time-series recorder the figures are plotted from.
"""

from repro.metrics.latency import RunningAverage, GlobalAverageLatency
from repro.metrics.throughput import Throughput
from repro.metrics.maps import latency_map, mesh_latency_surface, fattree_latency_surface
from repro.metrics.recorder import StatsRecorder, TimeSeries
from repro.metrics.energy import EnergyModel, EnergyReport, measure_energy
from repro.metrics.utilization import UtilizationReport, measure_utilization

__all__ = [
    "RunningAverage",
    "GlobalAverageLatency",
    "Throughput",
    "latency_map",
    "mesh_latency_surface",
    "fattree_latency_surface",
    "StatsRecorder",
    "TimeSeries",
    "EnergyModel",
    "EnergyReport",
    "measure_energy",
    "UtilizationReport",
    "measure_utilization",
]
