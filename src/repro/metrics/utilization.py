"""Link-utilization analysis (§5.2 further work: provisioning).

The thesis suggests using the models to reason about *provisioning* —
dedicating network portions to applications based on their communication
requirements.  This module provides the measurement side: per-link
utilization over a run, the load-imbalance coefficient across links, and
hot-link identification.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class LinkLoad:
    """Traffic carried by one router output link."""

    router: int
    target_kind: str
    target: int
    bytes: int
    packets: int
    utilization: float

    def label(self) -> str:
        prefix = "r" if self.target_kind == "router" else "h"
        return f"{self.router}->{prefix}{self.target}"


@dataclass
class UtilizationReport:
    """Fleet-wide link-load summary for one run."""

    links: list[LinkLoad]
    duration_s: float

    @property
    def max_utilization(self) -> float:
        return max((l.utilization for l in self.links), default=0.0)

    @property
    def mean_utilization(self) -> float:
        used = [l.utilization for l in self.links]
        return float(np.mean(used)) if used else 0.0

    def imbalance(self) -> float:
        """Coefficient of variation across used links (0 = perfectly even).

        High imbalance is the signature of poor traffic distribution —
        exactly what DRB's path expansion is meant to reduce.
        """
        used = np.array([l.utilization for l in self.links])
        if used.size == 0 or used.mean() == 0:
            return 0.0
        return float(used.std() / used.mean())

    def hottest(self, n: int = 5) -> list[LinkLoad]:
        return sorted(self.links, key=lambda l: -l.utilization)[:n]

    def row(self) -> dict:
        return {
            "links_used": len(self.links),
            "max_util": round(self.max_utilization, 4),
            "mean_util": round(self.mean_utilization, 4),
            "imbalance": round(self.imbalance(), 4),
        }


def measure_utilization(fabric, duration_s: float) -> UtilizationReport:
    """Compute per-link utilization from a finished fabric's counters.

    Utilization = bytes carried / (link capacity x duration); only links
    that carried traffic are listed (idle links would drown the stats on
    large topologies).
    """
    if duration_s <= 0:
        raise ValueError("duration must be positive")
    capacity_bytes = fabric.config.link_bandwidth_bps / 8 * duration_s
    links = []
    for router in fabric.routers:
        for (kind, target), port in router.ports.items():
            if port.packets == 0:
                continue
            links.append(
                LinkLoad(
                    router=router.router_id,
                    target_kind=kind,
                    target=target,
                    bytes=port.bytes,
                    packets=port.packets,
                    utilization=port.bytes / capacity_bytes,
                )
            )
    return UtilizationReport(links=links, duration_s=duration_s)
