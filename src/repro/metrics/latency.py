"""Latency averaging (Eqs 4.1 and 4.2).

Eq. 4.1 is the per-destination incremental mean:
``L_i[x] = (l_i[x] + (x-1) * L_i[x-1]) / x``; Eq. 4.2 averages those
per-destination means over the ``n`` destination nodes.
"""

from __future__ import annotations

from typing import ClassVar

from repro.checkpoint.state import Snapshottable


class RunningAverage(Snapshottable):
    """Incremental mean per Eq. 4.1 (numerically stable form)."""

    __slots__ = ("count", "mean")

    _snapshot_fields_: ClassVar[tuple[str, ...]] = ("count", "mean")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0

    def add(self, value: float) -> float:
        """Fold in one sample; returns the updated mean."""
        self.count += 1
        # Algebraically identical to Eq. 4.1: mean += (x - mean) / n.
        self.mean += (value - self.mean) / self.count
        return self.mean

    def __float__(self) -> float:
        return self.mean

    def to_dict(self) -> dict:
        return {"count": self.count, "mean": self.mean}

    @classmethod
    def from_dict(cls, data: dict) -> "RunningAverage":
        avg = cls()
        avg.count = int(data["count"])
        avg.mean = float(data["mean"])
        return avg


class GlobalAverageLatency(Snapshottable):
    """Eq. 4.2: average over the per-destination-node averages."""

    _snapshot_fields_: ClassVar[tuple[str, ...]] = ("_per_destination",)

    def __init__(self) -> None:
        self._per_destination: dict[int, RunningAverage] = {}

    def add(self, destination: int, latency_s: float) -> None:
        avg = self._per_destination.get(destination)
        if avg is None:
            avg = RunningAverage()
            self._per_destination[destination] = avg
        avg.add(latency_s)

    @property
    def value_s(self) -> float:
        """Current global average latency, seconds (0.0 with no samples)."""
        if not self._per_destination:
            return 0.0
        total = sum(avg.mean for avg in self._per_destination.values())
        return total / len(self._per_destination)

    @property
    def destinations(self) -> int:
        return len(self._per_destination)

    @property
    def samples(self) -> int:
        return sum(avg.count for avg in self._per_destination.values())

    def per_destination(self) -> dict[int, float]:
        return {d: avg.mean for d, avg in self._per_destination.items()}

    def to_dict(self) -> dict:
        """Lossless JSON-ready form (destination keys become strings)."""
        return {
            str(d): self._per_destination[d].to_dict()
            for d in sorted(self._per_destination)
        }

    @classmethod
    def from_dict(cls, data: dict) -> "GlobalAverageLatency":
        gal = cls()
        for dest, encoded in data.items():
            gal._per_destination[int(dest)] = RunningAverage.from_dict(encoded)
        return gal
