"""Throughput accounting (§4.2).

The paper reports throughput as accepted load per unit time and checks
that offered and accepted load stay in ratio (no loss).  The fabric keeps
the packet counters; this helper turns them into rates and ratios.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class Throughput:
    """Offered vs accepted load summary over a measurement interval."""

    injected_packets: int
    delivered_packets: int
    delivered_bytes: int
    interval_s: float

    @property
    def accepted_ratio(self) -> float:
        """Delivered / injected packets (1.0 means nothing in flight/lost)."""
        if self.injected_packets == 0:
            return 1.0
        return self.delivered_packets / self.injected_packets

    @property
    def bits_per_second(self) -> float:
        if self.interval_s <= 0:
            return 0.0
        return self.delivered_bytes * 8 / self.interval_s

    @classmethod
    def from_fabric(cls, fabric, interval_s: float) -> "Throughput":
        return cls(
            injected_packets=fabric.data_packets_injected,
            delivered_packets=fabric.data_packets_delivered,
            delivered_bytes=fabric.data_bytes_delivered,
            interval_s=interval_s,
        )
