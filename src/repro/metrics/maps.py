"""Latency surface maps (§4.2, Fig. 4.7; Figs 4.10-4.11, 4.20, 4.24, 4.29-4.30).

A latency map assigns each router its average internal-buffer (contention)
latency; on a mesh the routers' (x, y) coordinates give the figure's
surface, on a fat-tree the (level, position) grid does.
"""

from __future__ import annotations

import numpy as np

from repro.topology.fattree import KaryNTree
from repro.topology.mesh import Mesh2D


def latency_map(fabric) -> dict[int, float]:
    """Router id -> mean contention latency (seconds), congested only."""
    return fabric.contention_map()


def mesh_latency_surface(fabric, topology: Mesh2D) -> np.ndarray:
    """(height, width) array of mean contention latency per mesh router."""
    surface = np.zeros((topology.height, topology.width))
    for router_id, value in fabric.contention_map().items():
        x, y = topology.coords(router_id)
        surface[y, x] = value
    return surface


def fattree_latency_surface(fabric, topology: KaryNTree) -> np.ndarray:
    """(levels, switches-per-level) array of mean contention latency."""
    surface = np.zeros((topology.n, topology.num_routers // topology.n))
    per_level = topology.num_routers // topology.n
    for router_id, value in fabric.contention_map().items():
        level, pos = divmod(router_id, per_level)
        surface[level, pos] = value
    return surface


def map_peak(surface: np.ndarray) -> float:
    """Highest point of a latency surface (the paper compares peaks)."""
    return float(surface.max()) if surface.size else 0.0


def map_mean_nonzero(surface: np.ndarray) -> float:
    """Mean over routers that saw any contention."""
    nz = surface[surface > 0]
    return float(nz.mean()) if nz.size else 0.0
