"""Energy accounting (§5.2 further work: energy-aware routing).

The thesis proposes using the predictive module's knowledge of future
communication patterns for energy-aware policies.  This module provides
the accounting substrate: a simple but standard interconnect energy model
(static per-router idle power + dynamic per-bit traversal energy) applied
to a finished simulation, so policies can be compared on energy as well
as latency.

Defaults are in the ballpark of published router models (e.g. ~1-5 W
static per high-speed switch, a few pJ/bit dynamic) — the *relative*
comparison between policies is what matters here.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class EnergyModel:
    """Per-router energy parameters."""

    #: static (leakage + clocking) power per powered router, watts.
    idle_power_w: float = 2.0
    #: dynamic energy per bit crossing a router, joules.
    energy_per_bit_j: float = 5e-12
    #: extra energy per forwarded packet (header processing, arbitration).
    energy_per_packet_j: float = 2e-9


@dataclass
class EnergyReport:
    """Energy totals for one simulation run."""

    static_j: float
    dynamic_j: float
    packets_forwarded: int
    bits_forwarded: int
    duration_s: float
    active_routers: int

    @property
    def total_j(self) -> float:
        return self.static_j + self.dynamic_j

    @property
    def dynamic_fraction(self) -> float:
        total = self.total_j
        return self.dynamic_j / total if total > 0 else 0.0

    def joules_per_bit(self) -> float:
        """Total energy divided by delivered payload bits."""
        if self.bits_forwarded == 0:
            return 0.0
        return self.total_j / self.bits_forwarded

    def row(self) -> dict:
        return {
            "total_mj": round(self.total_j * 1e3, 6),
            "static_mj": round(self.static_j * 1e3, 6),
            "dynamic_uj": round(self.dynamic_j * 1e6, 3),
            "j_per_gbit": round(self.joules_per_bit() * 1e9, 3),
        }


def measure_energy(
    fabric,
    duration_s: float,
    model: EnergyModel | None = None,
) -> EnergyReport:
    """Apply ``model`` to a finished fabric's counters.

    Static power is charged for every router over the full duration
    (interconnects are always-on); dynamic energy scales with the bits and
    packets each router actually forwarded — which is where routing-policy
    differences (path lengths, ACK overhead, detours) show up.
    """
    model = model or EnergyModel()
    if duration_s < 0:
        raise ValueError("duration must be non-negative")
    packets = sum(r.packets_forwarded for r in fabric.routers)
    bytes_fwd = sum(r.bytes_forwarded for r in fabric.routers)
    bits = bytes_fwd * 8
    active = sum(1 for r in fabric.routers if r.packets_forwarded)
    return EnergyReport(
        static_j=model.idle_power_w * duration_s * len(fabric.routers),
        dynamic_j=bits * model.energy_per_bit_j
        + packets * model.energy_per_packet_j,
        packets_forwarded=packets,
        bits_forwarded=bits,
        duration_s=duration_s,
        active_routers=active,
    )
