"""Shard-scaling benchmark: serial vs space-parallel events/sec.

Measures the pinned bench scenarios (``mesh16``, ``dragonfly``) three
ways — serial in-process, and sharded across K ∈ ``shards`` worker
processes — and writes ``BENCH_shard.json`` at the repo root, following
the ``BENCH_parallel.json`` conventions: raw wall-clock numbers are
always recorded, the >= 1.5x speedup assertion only runs on machines
with enough cores to make it meaningful, and the skip is recorded with
its reason instead of a misleading sub-1x figure.

Alongside throughput, each sharded leg reports the conservative
protocol's overheads: the null-message fraction (barrier rounds that
moved no handoffs) and each worker's blocked-time fraction (wall time
spent waiting at barriers).  On a single-core box these dominate — that
is the honest story, and exactly why the gate is conditional.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from dataclasses import replace

from repro.shard.runtime import run_sharded
from repro.shard.scenarios import SCENARIOS, build_serial

__all__ = ["main", "run_bench"]

DEFAULT_SCENARIOS = ("mesh16", "dragonfly")
DEFAULT_SHARDS = (2, 4)
SPEEDUP_FLOOR = 1.5


def _bench_spec(name: str, policy: str, quick: bool):
    spec = SCENARIOS[name].with_policy(policy)
    if quick:
        spec = replace(spec, repetitions=1)
    return spec


def run_bench(
    out: str = "BENCH_shard.json",
    policy: str = "pr-drb",
    scenarios=DEFAULT_SCENARIOS,
    shards=DEFAULT_SHARDS,
    quick: bool = False,
) -> dict:
    cpu_count = os.cpu_count() or 1
    entries = []
    best_speedup = 0.0
    for name in scenarios:
        spec = _bench_spec(name, policy, quick)
        serial = build_serial(spec, with_digest=False)
        start = time.perf_counter()  # repro: allow(no-wall-clock) harness timing
        serial.sim.run(until=serial.until)
        serial_wall = time.perf_counter() - start  # repro: allow(no-wall-clock) harness timing
        serial_events = serial.sim.events_executed
        entry = {
            "scenario": name,
            "topology": spec.topology,
            "policy": spec.policy,
            "repetitions": spec.repetitions,
            "serial": {
                "events": serial_events,
                "wall_s": round(serial_wall, 4),
                "events_per_s": round(serial_events / serial_wall, 1) if serial_wall > 0 else None,
            },
            "sharded": {},
        }
        for num_shards in shards:
            report = run_sharded(spec, num_shards)
            assert report.events == serial_events, (
                f"{name} K={num_shards}: sharded run executed {report.events} "
                f"events, serial executed {serial_events} — not the same run"
            )
            speedup = serial_wall / report.wall_s if report.wall_s > 0 else 0.0
            best_speedup = max(best_speedup, speedup)
            entry["sharded"][str(num_shards)] = {
                "events": report.events,
                "wall_s": round(report.wall_s, 4),
                "events_per_s": round(report.events / report.wall_s, 1) if report.wall_s > 0 else None,
                "speedup": round(speedup, 3),
                "windows": report.windows,
                "null_windows": report.null_windows,
                "null_fraction": round(report.null_fraction(), 4),
                "handoffs": report.handoffs,
                "lookahead_s": report.lookahead_s,
                "blocked_fraction": [
                    round(blocked / report.wall_s, 4) if report.wall_s > 0 else None
                    for blocked in report.blocked_s
                ],
            }
        entries.append(entry)

    if cpu_count >= 4:
        speedup_assertion = {"checked": True, "skipped_reason": None}
    else:
        speedup_assertion = {
            "checked": False,
            "skipped_reason": (
                f"only {cpu_count} core(s); K worker processes cannot beat the "
                f"serial leg without >= 4 cores, so the >= {SPEEDUP_FLOOR}x "
                "gate is meaningless here"
            ),
        }
    payload = {
        "benchmark": "shard_scaling",
        "cpu_count": cpu_count,
        "quick": quick,
        "shards": list(shards),
        "results": entries,
        "speedup_assertion": speedup_assertion,
    }
    with open(out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(json.dumps(payload, indent=2, sort_keys=True))
    if speedup_assertion["checked"]:
        assert best_speedup >= SPEEDUP_FLOOR, (
            f"expected >= {SPEEDUP_FLOOR}x sharded speedup on {cpu_count} "
            f"cores, best measured {best_speedup:.2f}x"
        )
    else:
        print(f"SKIPPED speedup assertion: {speedup_assertion['skipped_reason']}")
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_shard.json")
    parser.add_argument("--policy", default="pr-drb")
    parser.add_argument("--scenarios", nargs="+", default=list(DEFAULT_SCENARIOS))
    parser.add_argument("--shards", nargs="+", type=int, default=list(DEFAULT_SHARDS))
    parser.add_argument("--quick", action="store_true", help="repetitions=1 (CI artifact)")
    args = parser.parse_args(argv)
    run_bench(
        out=args.out,
        policy=args.policy,
        scenarios=tuple(args.scenarios),
        shards=tuple(args.shards),
        quick=args.quick,
    )
    return 0
