"""Offline merge: rebuild the serial digests from per-shard logs.

Sharded execution cannot carry the serial engine's global sequence
counter (shards would have to serialize on it), so the digest gate works
after the fact: every shard logs its pops — ``(time, priority, label,
children, notes)`` — and this module replays the logs through a single
calendar that re-assigns the *serial* sequence numbers:

* the calendar is seeded with the setup operations (identical on every
  shard, globally counted), taking serial seqs ``0..S-1``;
* pop the minimum ``(time, priority, seq)`` entry; it must match, field
  for field, the next unconsumed pop record of the shard that executed
  it — anything else is a loud divergence, not a digest mismatch later;
* the popped record's children are pushed with consecutive fresh seqs in
  recorded scheduling-call order — exactly when and how the serial
  engine would have assigned them (children get their seqs inside the
  parent's callback);
* entries past the run horizon are drained without digesting: the serial
  run leaves them pending in the queue, but they did consume sequence
  numbers at scheduling time.

The same replay rebuilds the *metric* digest: delivery annotations feed
a fresh :class:`~repro.metrics.recorder.StatsRecorder` in merged order
(float accumulation order is bit-significant), fabric counters sum,
contention maps union disjointly (only owned routers forward), and
policy statistics merge per key — with DRB's ``mean_active_paths``
averaged over the merged flow-creation order recovered from ``flow``
annotations.  :func:`~repro.analysis.replay.digest_metrics` then runs
verbatim over the merged views, so the comparison exercises the real
hashing code, not a parallel reimplementation.
"""

from __future__ import annotations

import hashlib
import heapq
import struct
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.analysis.replay import _DIGEST_BLOCK_EVENTS, EventTraceDigest, digest_metrics
from repro.metrics.recorder import StatsRecorder
from repro.shard.engine import REC_CHILDREN, REC_LABEL, REC_NOTES, REC_PRIO, REC_TIME

__all__ = [
    "MergeError",
    "MergedRun",
    "ShardResult",
    "collect_result",
    "merge_results",
]

#: the fabric counters digest_metrics reads, summed across shards.
COUNTER_NAMES = (
    "data_packets_injected",
    "data_packets_delivered",
    "data_bytes_delivered",
    "acks_delivered",
    "predictive_acks_delivered",
    "packets_dropped",
)

#: policy-stat keys that must be identical on every shard.
_IDENTITY_KEYS = frozenset({"policy", "predictive"})
#: policy-stat keys recomputed from the merged flow table.
_FLOW_KEYS = frozenset({"flows", "mean_active_paths", "max_active_paths"})


class MergeError(RuntimeError):
    """The per-shard logs do not describe one serial execution."""


@dataclass
class ShardResult:
    """What one shard ships back to the coordinator when it finishes."""

    shard_id: int
    events_executed: int
    handoffs_out: int
    counters: dict
    contention: dict
    policy_stats: dict
    #: final active-path count per flow key; None for flow-less policies.
    flow_actives: Optional[dict]
    #: verify mode only; None in plain run mode.
    setup_log: Optional[list] = None
    pop_log: Optional[list] = None


def collect_result(ctx) -> ShardResult:
    """Package a finished :class:`~repro.shard.scenarios.ShardContext`."""
    fabric = ctx.fabric
    policy = ctx.policy_obj
    flow_actives = None
    if hasattr(policy, "flows"):
        flow_actives = {
            key: fs.metapath.active_count for key, fs in policy.flows.items()
        }
    return ShardResult(
        shard_id=ctx.shard_id,
        events_executed=ctx.sim.events_executed,
        handoffs_out=fabric.handoffs_out,
        counters={name: getattr(fabric, name) for name in COUNTER_NAMES},
        contention=dict(fabric.contention_map()),
        policy_stats=dict(policy.stats()),
        flow_actives=flow_actives,
        setup_log=ctx.sim.setup_log,
        pop_log=ctx.sim.pop_log,
    )


class _MergedFabricView:
    """Duck-typed stand-in for ``digest_metrics``'s fabric argument."""

    def __init__(self, counters: dict, contention: dict) -> None:
        for name, value in counters.items():
            setattr(self, name, value)
        self._contention = contention

    def contention_map(self) -> dict:
        return self._contention


class _MergedPolicyView:
    """Duck-typed stand-in for ``digest_metrics``'s policy argument."""

    def __init__(self, stats: dict) -> None:
        self._stats = stats

    def stats(self) -> dict:
        return self._stats


class _DeliveredPacket:
    """All ``StatsRecorder.on_data_delivered`` reads is ``packet.dst``."""

    __slots__ = ("dst",)

    def __init__(self, dst: int) -> None:
        self.dst = dst


def _feed_digest(trace: EventTraceDigest, time: float, prio: int, seq: int, label: str) -> None:
    """One event record, exactly as ``EventTraceDigest.update`` packs it."""
    trace.events += 1
    buffer = trace._buffer
    buffer += struct.pack("<dii", time, prio, seq)
    buffer += label.encode("utf-8")
    if trace.events % _DIGEST_BLOCK_EVENTS == 0:
        trace._chain = hashlib.sha256(trace._chain + buffer).digest()
        del buffer[:]


def _merge_policy_stats(results: list[ShardResult], flow_order: list, actives: dict) -> dict:
    reference = results[0].policy_stats
    merged: dict = {}
    for key, ref_value in reference.items():
        if key in _IDENTITY_KEYS:
            for result in results[1:]:
                if result.policy_stats[key] != ref_value:
                    raise MergeError(
                        f"policy stat {key!r} differs across shards: "
                        f"{ref_value!r} vs {result.policy_stats[key]!r}"
                    )
            merged[key] = ref_value
        elif key in _FLOW_KEYS:
            continue  # recomputed below from the merged flow table
        else:
            merged[key] = sum(result.policy_stats[key] for result in results)
    if _FLOW_KEYS & reference.keys():
        if len(flow_order) != len(actives):
            raise MergeError(
                f"{len(actives)} flows exist but {len(flow_order)} creation "
                "annotations were merged; a shard ran without verify mode?"
            )
        active = [actives[key] for key in flow_order]
        merged["flows"] = len(actives)
        merged["mean_active_paths"] = float(np.mean(active)) if active else 1.0
        merged["max_active_paths"] = max(active) if active else 1
    return merged


@dataclass
class MergedRun:
    """The reconstructed serial run, ready to compare against the oracle."""

    events: int
    trace_digest: str
    metrics_digest: str
    counters: dict
    policy_stats: dict
    recorder: StatsRecorder


def merge_results(spec, results: list[ShardResult], t_end: float) -> MergedRun:
    """Merge verify-mode shard results into the serial run's digests.

    ``t_end`` is the run horizon (``spec.until()``): calendar entries
    past it were scheduled but never executed, matching the serial
    ``run(until=t_end)`` leaving them pending.
    """
    results = sorted(results, key=lambda r: r.shard_id)
    if not results:
        raise MergeError("no shard results to merge")
    for result in results:
        if result.setup_log is None or result.pop_log is None:
            raise MergeError(f"shard {result.shard_id} ran without verify logs")
    setup_log = results[0].setup_log
    for result in results[1:]:
        if result.setup_log != setup_log:
            raise MergeError(
                f"setup logs diverge between shard {results[0].shard_id} and "
                f"shard {result.shard_id}; the workload setup is not a pure "
                "function of the spec"
            )

    # ------------------------------------------------------------------
    # Serial-calendar replay.
    # ------------------------------------------------------------------
    pop_logs = {result.shard_id: result.pop_log for result in results}
    cursors = {result.shard_id: 0 for result in results}
    calendar: list[tuple[float, int, int, int]] = []
    for seq, (time, prio, owner, _label) in enumerate(setup_log):
        calendar.append((time, prio, seq, owner))
    heapq.heapify(calendar)
    next_seq = len(setup_log)

    trace = EventTraceDigest()
    recorder = StatsRecorder(window_s=spec.window_s)
    flow_order: list = []
    merged_events = 0
    while calendar:
        time, prio, seq, shard = heapq.heappop(calendar)
        if time > t_end:
            # Pending at the horizon: consumed a seq, never executed.
            continue
        log = pop_logs.get(shard)
        cursor = cursors.get(shard, 0)
        if log is None or cursor >= len(log):
            raise MergeError(
                f"calendar expects a pop on shard {shard} at t={time!r} but "
                "its log is exhausted"
            )
        record = log[cursor]
        cursors[shard] = cursor + 1
        if record[REC_TIME] != time or record[REC_PRIO] != prio:
            raise MergeError(
                f"divergence on shard {shard} at pop #{cursor}: calendar says "
                f"(t={time!r}, p={prio}), shard executed "
                f"(t={record[REC_TIME]!r}, p={record[REC_PRIO]}, "
                f"{record[REC_LABEL]})"
            )
        _feed_digest(trace, time, prio, seq, record[REC_LABEL])
        merged_events += 1
        for child_time, child_prio, child_shard in record[REC_CHILDREN]:
            heapq.heappush(calendar, (child_time, child_prio, next_seq, child_shard))
            next_seq += 1
        for note in record[REC_NOTES]:
            kind = note[0]
            if kind == "deliv":
                _kind, dst, latency_s, now = note
                recorder.on_data_delivered(_DeliveredPacket(dst), latency_s, now)
            elif kind == "flow":
                flow_order.append(note[1])
    for result in results:
        leftover = len(result.pop_log) - cursors[result.shard_id]
        if leftover:
            raise MergeError(
                f"shard {result.shard_id} executed {leftover} pops the merged "
                "calendar never scheduled"
            )

    # ------------------------------------------------------------------
    # Metric views.
    # ------------------------------------------------------------------
    counters = {
        name: sum(result.counters[name] for result in results)
        for name in COUNTER_NAMES
    }
    contention: dict = {}
    for result in results:
        overlap = contention.keys() & result.contention.keys()
        if overlap:
            raise MergeError(
                f"routers {sorted(overlap)} forwarded packets on more than "
                "one shard; the partition is not a partition"
            )
        contention.update(result.contention)
    actives: dict = {}
    for result in results:
        if result.flow_actives:
            actives.update(result.flow_actives)
    policy_stats = _merge_policy_stats(results, flow_order, actives)
    metrics_digest = digest_metrics(
        _MergedFabricView(counters, contention),
        recorder,
        _MergedPolicyView(policy_stats),
    )
    return MergedRun(
        events=merged_events,
        trace_digest=trace.hexdigest(),
        metrics_digest=metrics_digest,
        counters=counters,
        policy_stats=policy_stats,
        recorder=recorder,
    )
