"""Per-shard simulator: rank-ordered calendar + windowed execution.

:class:`ShardSimulator` specializes the serial engine for space-parallel
runs (docs/sharding.md):

* every scheduled event carries a :class:`~repro.shard.rank.Rank` in its
  sequence slot, so ``(time, priority)`` ties across *and* within shards
  resolve in exactly the serial calendar's order;
* **setup mode** replays the full workload setup on every shard with one
  global counter, enqueueing only the root operations this shard owns —
  all shards therefore agree on setup ranks without communicating;
* :meth:`run_window` executes one conservative synchronization window
  ``[.., bound)`` while tracking the currently-executing pop so child
  ranks (and cross-shard handoff ranks) can be derived;
* in **verify mode** it additionally logs every pop and every scheduling
  call, which is what the offline merge uses to reconstruct the serial
  global sequence numbers and recompute the exact
  :class:`~repro.analysis.replay.EventTraceDigest`.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, ClassVar, Optional

from repro.sim.engine import (
    _ARGS,
    _CANCELLED,
    _FN,
    _PRIORITY,
    _SEQUENCE,
    _TIME,
    Event,
    SimulationError,
    Simulator,
    _never,
)
from repro.shard.rank import Rank

__all__ = ["ShardSimulator"]

#: pop-record layout: [time, priority, label, children, annotations]
REC_TIME, REC_PRIO, REC_LABEL, REC_CHILDREN, REC_NOTES = range(5)


class ShardSimulator(Simulator):
    """One shard's event calendar inside a space-parallel run."""

    _snapshot_fields_: ClassVar[tuple[str, ...]] = (
        "shard_id",
        "_op_counter",
        "_setup_counter",
    )
    _snapshot_exclude_: ClassVar[tuple[str, ...]] = (
        "_setup_mode",
        "_setup_owner",
        "_setup_log",
        "_pop_log",
        "_cur_time",
        "_cur_prio",
        "_cur_rank",
        "_cur_children",
        "_cur_record",
        "window_bound",
    )

    def __init__(self, shard_id: int, start_time: float = 0.0, verify: bool = False) -> None:
        super().__init__(start_time)
        self.shard_id = int(shard_id)
        #: per-shard operation counter: increments once per scheduling
        #: call made during execution, in call order (the rank contract).
        self._op_counter = 0
        #: global setup-operation counter (identical across shards).
        self._setup_counter = 0
        self._setup_mode = False
        self._setup_owner: Optional[Callable[..., int]] = None
        #: verify mode: (time, prio, owner_shard, label) per setup op.
        self._setup_log: Optional[list] = [] if verify else None
        #: verify mode: one [time, prio, label, children, notes] per pop.
        self._pop_log: Optional[list] = [] if verify else None
        self._cur_time = 0.0
        self._cur_prio = 0
        self._cur_rank: Optional[Rank] = None
        self._cur_children = 0
        self._cur_record: Optional[list] = None
        #: lower bound of the window currently executing (the lookahead
        #: guard in ShardFabric compares handoff times against it).
        self.window_bound: Optional[float] = None

    # ------------------------------------------------------------------
    # Setup mode
    # ------------------------------------------------------------------
    def begin_setup(self, owner: Callable[[Callable, tuple], int]) -> None:
        """Enter setup mode: count every root op, enqueue only ours.

        ``owner(fn, args)`` must deterministically map a root operation
        to its owning shard — identically on every shard.
        """
        self._setup_mode = True
        self._setup_owner = owner

    def end_setup(self) -> int:
        """Leave setup mode; returns the global setup-op count."""
        self._setup_mode = False
        self._setup_owner = None
        return self._setup_counter

    @property
    def setup_log(self) -> Optional[list]:
        return self._setup_log

    @property
    def pop_log(self) -> Optional[list]:
        return self._pop_log

    # ------------------------------------------------------------------
    # Rank-bearing scheduling
    # ------------------------------------------------------------------
    def _push(self, time: float, priority: int, rank: Rank, fn, args) -> Event:
        free = self._free
        if free:
            event = free.pop()
            event[_TIME] = time
            event[_PRIORITY] = priority
            event[_SEQUENCE] = rank
            event[_FN] = fn
            event[_ARGS] = args
            event[_CANCELLED] = False
        else:
            event = Event((time, priority, rank, fn, args, False))
        heapq.heappush(self._queue, event)
        return event

    def _rank_for(self, time: float, priority: int, fn, args, remote_shard: Optional[int]) -> Optional[Rank]:
        """Allocate the next rank; None means "not ours, don't enqueue".

        ``remote_shard`` is set for cross-shard handoffs (the child op is
        recorded as executing there, but the rank is still allocated
        from *this* shard's counter, in call order).
        """
        if self._setup_mode:
            counter = self._setup_counter
            self._setup_counter = counter + 1
            owner = self._setup_owner(fn, args)  # type: ignore[misc]
            if self._setup_log is not None:
                self._setup_log.append(
                    (time, priority, owner, getattr(fn, "__qualname__", repr(fn)))
                )
            if owner != self.shard_id:
                return None
            return Rank.setup(counter)
        parent = self._cur_rank
        if parent is None:
            raise SimulationError(
                "sharded scheduling outside setup and outside any event "
                "callback: the operation has no deterministic rank"
            )
        counter = self._op_counter
        self._op_counter = counter + 1
        self._cur_children += 1
        if self._cur_record is not None:
            self._cur_record[REC_CHILDREN].append(
                (time, priority, self.shard_id if remote_shard is None else remote_shard)
            )
        return Rank.child_of(parent, self._cur_time, self._cur_prio, self.shard_id, counter)

    def schedule(self, delay: float, fn: Callable[..., None], *args: Any, priority: int = 0) -> Event:
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        time = self.now + delay
        rank = self._rank_for(time, priority, fn, args, None)
        if rank is None:
            # Root op owned by another shard: hand back an inert event so
            # callers holding the handle (for cancel) stay correct.
            return Event((time, priority, -1, _never, (), True))
        return self._push(time, priority, rank, fn, args)

    def schedule_at(self, time: float, fn: Callable[..., None], *args: Any, priority: int = 0) -> Event:
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time!r}, clock already at {self.now!r}"
            )
        rank = self._rank_for(time, priority, fn, args, None)
        if rank is None:
            return Event((time, priority, -1, _never, (), True))
        return self._push(time, priority, rank, fn, args)

    def alloc_handoff_rank(self, time: float, priority: int, dest_shard: int, fn, args) -> Rank:
        """Rank for an op that will execute on ``dest_shard``."""
        rank = self._rank_for(time, priority, fn, args, dest_shard)
        if rank is None:  # pragma: no cover - handoffs never happen in setup
            raise SimulationError("cross-shard handoff during setup")
        return rank

    def apply_arrival(self, time: float, priority: int, rank: Rank, fn, args) -> None:
        """Enqueue a cross-shard arrival delivered at a window barrier."""
        if time < self.now:
            raise SimulationError(
                f"arrival at {time!r} is in this shard's past (now={self.now!r}); "
                "the lookahead contract was violated"
            )
        self._push(time, priority, rank, fn, args)

    # ------------------------------------------------------------------
    # Verify-mode annotations
    # ------------------------------------------------------------------
    def annotate(self, note: tuple) -> None:
        """Attach ``note`` to the pop record currently executing."""
        record = self._cur_record
        if record is not None:
            record[REC_NOTES].append(note)

    # ------------------------------------------------------------------
    # Windowed execution
    # ------------------------------------------------------------------
    def run_window(self, bound: float, inclusive: bool = False) -> int:
        """Execute events with ``time < bound`` (``<= bound`` when final).

        Maintains the currently-executing pop context so child ranks are
        derivable, and (verify mode) logs each pop with its scheduling
        calls.  The final window of a run is inclusive and advances the
        clock to ``bound``, mirroring the serial ``run(until=bound)``.
        """
        executed = 0
        self.window_bound = bound
        queue = self._queue
        free = self._free
        pop = heapq.heappop
        log = self._pop_log
        try:
            while queue:
                event = queue[0]
                time = event[_TIME]
                if (time > bound) if inclusive else (time >= bound):
                    break
                pop(queue)
                if event[_CANCELLED]:
                    event[_FN] = _never
                    event[_ARGS] = ()
                    free.append(event)
                    continue
                self.now = time
                prio = event[_PRIORITY]
                self._cur_time = time
                self._cur_prio = prio
                self._cur_rank = event[_SEQUENCE]
                self._cur_children = 0
                fn = event[_FN]
                if log is not None:
                    record = [
                        time,
                        prio,
                        getattr(fn, "__qualname__", repr(fn)),
                        [],
                        [],
                    ]
                    self._cur_record = record
                    log.append(record)
                hook = self._dispatch
                if hook is not None:
                    hook(event)
                fn(*event[_ARGS])
                executed += 1
                event[_FN] = _never
                event[_ARGS] = ()
                free.append(event)
        finally:
            self._cur_rank = None
            self._cur_record = None
            self.window_bound = None
            self._events_executed += executed
        if inclusive and self.now < bound:
            self.now = bound
        return executed
