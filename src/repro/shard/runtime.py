"""Conservative barrier-window coordinator over spawn-context workers.

One process per shard, one duplex pipe each.  The protocol is a YAWNS-
style bounded-lag loop (docs/sharding.md):

1. every worker reports ``("ready", peek, outbox, executed)`` — the
   earliest pending event time and the handoffs its last window produced;
2. the coordinator routes the handoffs, computes ``T_min`` over all
   peeks *and* still-in-flight handoff times, and broadcasts the next
   window ``[.., T_min + Δ)`` together with each shard's arrivals (Δ is
   the partition's minimum cut-link lookahead);
3. workers apply arrivals, optionally write a barrier-consistent
   checkpoint, execute the window, and report again.

A barrier round that moves no handoffs is the protocol's *null message*
— pure synchronization overhead, counted and reported.  Worker wall
time spent blocked at barriers is measured around the pipe reads.

Checkpoints reuse the PR-7 machinery verbatim: every shard snapshots the
same object-graph roots a serial run would, always at a barrier (so the
set of K files is mutually consistent), and SIGTERM converts the next
barrier into checkpoint-and-stop with the orchestrator's
``CHECKPOINTED_EXIT`` status.  Resume rebuilds workers from the files
and re-derives the window bound from fresh peeks — the arrivals applied
before the snapshot are already in the restored heaps.
"""

from __future__ import annotations

import json
import os
import signal
import time
from dataclasses import dataclass, field
from multiprocessing import get_context
from pathlib import Path
from typing import Optional

from repro.shard.merge import ShardResult, collect_result
from repro.shard.scenarios import ShardContext, ShardScenarioSpec, build_shard

__all__ = ["ShardRunReport", "run_sharded"]

#: shard checkpoints and manifests use this envelope kind.
CHECKPOINT_KIND = "shard"
MANIFEST_NAME = "manifest.json"


@dataclass
class ShardRunReport:
    """What a sharded run hands back to its caller."""

    status: str  # "completed" | "checkpointed"
    num_shards: int
    windows: int
    null_windows: int
    handoffs: int
    events: int
    lookahead_s: float
    resumed: bool
    wall_s: float
    #: per-shard wall seconds spent blocked at barriers.
    blocked_s: list = field(default_factory=list)
    #: run mode: one digest over every shard's final observable state.
    state_digest: Optional[str] = None
    #: verify mode: per-shard logs for :func:`repro.shard.merge.merge_results`.
    results: Optional[list] = None

    def null_fraction(self) -> float:
        return self.null_windows / self.windows if self.windows else 0.0


def _shard_ckpt(directory: Path, shard_id: int) -> Path:
    return directory / f"shard{shard_id}.ckpt"


def _restore_context(spec: ShardScenarioSpec, shard_id: int, num_shards: int, path: Path, verify: bool) -> ShardContext:
    from repro.checkpoint.format import read_payload
    from repro.checkpoint.runner import code_version
    from repro.network.packet import set_pid_counter
    from repro.shard.fabric import min_lookahead_s

    header, roots = read_payload(path, expect_code_version=code_version())
    if header.kind != CHECKPOINT_KIND:
        raise ValueError(f"{path}: expected a {CHECKPOINT_KIND!r} checkpoint, got {header.kind!r}")
    meta = header.meta
    if meta.get("scenario") != spec.name or meta.get("policy") != spec.policy:
        raise ValueError(
            f"{path}: checkpoint is for {meta.get('scenario')}/{meta.get('policy')}, "
            f"resume requested {spec.name}/{spec.policy}"
        )
    if int(meta.get("num_shards", -1)) != num_shards or int(meta.get("shard_id", -1)) != shard_id:
        raise ValueError(f"{path}: checkpoint shard layout does not match the resume request")
    set_pid_counter(roots.pop("pid_counter"))
    return ShardContext(
        spec=spec,
        shard_id=shard_id,
        until=spec.until(),
        lookahead_s=min_lookahead_s(roots["fabric"].config),
        setup_ops=int(meta.get("setup_ops", 0)),
        sim=roots["sim"],
        recorder=roots["recorder"],
        policy_obj=roots["policy_obj"],
        fabric=roots["fabric"],
        workload=roots["workload"],
    )


def _write_shard_checkpoint(ctx: ShardContext, num_shards: int, path: Path) -> None:
    from repro.checkpoint.format import write_checkpoint
    from repro.checkpoint.runner import code_version
    from repro.network.packet import pid_counter_value

    roots = ctx.checkpoint_roots()
    roots["pid_counter"] = pid_counter_value()
    write_checkpoint(
        path,
        roots,
        kind=CHECKPOINT_KIND,
        code_version=code_version(),
        sim_now=ctx.sim.now,
        events_executed=ctx.sim.events_executed,
        meta={
            "scenario": ctx.spec.name,
            "policy": ctx.spec.policy,
            "shard_id": ctx.shard_id,
            "num_shards": num_shards,
            "setup_ops": ctx.setup_ops,
        },
    )


def _state_digest_part(ctx: ShardContext) -> str:
    """Per-shard final-state digest; the resume bit-identity oracle."""
    from repro.analysis.replay import digest_metrics

    return digest_metrics(ctx.fabric, ctx.recorder, ctx.policy_obj)


def _worker_main(
    conn,
    spec: ShardScenarioSpec,
    shard_id: int,
    num_shards: int,
    verify: bool,
    resume_path: Optional[str],
    trace_path: Optional[str],
) -> None:
    """One shard's process body (module-level: spawn context requires it)."""
    from repro.parallel.tasks import make_topology
    from repro.parallel.worker import CHECKPOINTED_EXIT
    from repro.topology.partition import partition_topology

    tracer = None
    if trace_path is not None:
        from repro.obs.tracer import JsonlSink, Tracer

        tracer = Tracer(sinks=[JsonlSink(trace_path, label=f"shard{shard_id}")])
    if resume_path is not None:
        ctx = _restore_context(spec, shard_id, num_shards, Path(resume_path), verify)
    else:
        plan = partition_topology(make_topology(spec.topology), num_shards)
        ctx = build_shard(spec, shard_id, plan, verify=verify)
    sim, fabric = ctx.sim, ctx.fabric
    blocked_s = 0.0
    executed = 0
    try:
        while True:
            fabric.assert_shardable()
            conn.send(("ready", sim.peek_time(), fabric.outbox, executed))
            fabric.outbox = []
            start = time.perf_counter()  # repro: allow(no-wall-clock) harness timing
            command = conn.recv()
            blocked_s += time.perf_counter() - start  # repro: allow(no-wall-clock) harness timing
            kind = command[0]
            if kind == "window":
                _kind, bound, inclusive, arrivals, ckpt_path, stop = command
                for handoff in arrivals:
                    sim.apply_arrival(
                        handoff.time, handoff.priority, handoff.rank, fabric._arrive, (handoff.packet,)
                    )
                if ckpt_path is not None:
                    _write_shard_checkpoint(ctx, num_shards, Path(ckpt_path))
                    if stop:
                        conn.send(("stopped", sim.now, sim.events_executed))
                        conn.close()
                        os._exit(CHECKPOINTED_EXIT)
                executed = sim.run_window(bound, inclusive=inclusive)
                if tracer is not None:
                    tracer.emit(
                        sim.now,
                        "shard.window",
                        ("shard", shard_id),
                        args={"bound": bound, "events": executed, "handoffs": len(fabric.outbox)},
                    )
            elif kind == "finish":
                result = collect_result(ctx) if verify else None
                digest = None if verify else _state_digest_part(ctx)
                conn.send(("result", result, digest, blocked_s, sim.events_executed))
                break
            elif kind == "abort":
                break
            else:  # pragma: no cover - protocol bug
                raise RuntimeError(f"unknown coordinator command {kind!r}")
    finally:
        if tracer is not None:
            tracer.close()
        conn.close()


def run_sharded(
    spec: ShardScenarioSpec,
    num_shards: int,
    *,
    verify: bool = False,
    checkpoint_dir=None,
    checkpoint_every_windows: int = 0,
    resume: bool = False,
    trace_dir=None,
    install_sigterm: bool = True,
) -> ShardRunReport:
    """Run ``spec`` space-parallel across ``num_shards`` worker processes.

    ``verify=True`` collects the per-shard execution logs for the
    offline merge (and disables checkpointing: the logs are transient
    state a snapshot cannot carry).  With ``checkpoint_dir`` set, every
    ``checkpoint_every_windows`` barriers each shard parks a consistent
    snapshot there, and SIGTERM checkpoints-and-stops; ``resume=True``
    restarts from those files.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    if verify and checkpoint_dir is not None:
        raise ValueError("verify mode and checkpointing are mutually exclusive")
    if resume and checkpoint_dir is None:
        raise ValueError("resume requires checkpoint_dir")
    checkpoint_dir = Path(checkpoint_dir) if checkpoint_dir is not None else None
    if checkpoint_dir is not None:
        checkpoint_dir.mkdir(parents=True, exist_ok=True)
    trace_dir = Path(trace_dir) if trace_dir is not None else None
    if trace_dir is not None:
        trace_dir.mkdir(parents=True, exist_ok=True)

    from repro.shard.fabric import min_lookahead_s
    from repro.network.config import NetworkConfig

    delta = min_lookahead_s(NetworkConfig())
    t_end = spec.until()
    ctx = get_context("spawn")
    conns, procs, worker_traces = [], [], []
    coord_tracer = None
    coord_trace_path = None
    if trace_dir is not None:
        from repro.obs.tracer import JsonlSink, Tracer

        coord_trace_path = trace_dir / "coordinator.jsonl"
        coord_tracer = Tracer(sinks=[JsonlSink(coord_trace_path, label="coordinator")])

    interrupted = {"seen": False}
    previous_handler = None
    if install_sigterm:
        def _on_sigterm(signum, frame):
            interrupted["seen"] = True

        try:
            previous_handler = signal.signal(signal.SIGTERM, _on_sigterm)
        except ValueError:  # pragma: no cover - not the main thread
            previous_handler = None

    start_wall = time.perf_counter()  # repro: allow(no-wall-clock) harness timing
    try:
        for shard_id in range(num_shards):
            parent_conn, child_conn = ctx.Pipe()
            resume_path = None
            if resume:
                path = _shard_ckpt(checkpoint_dir, shard_id)
                if not path.exists():
                    raise FileNotFoundError(f"resume requested but {path} is missing")
                resume_path = str(path)
            trace_path = None
            if trace_dir is not None:
                trace_path = str(trace_dir / f"shard{shard_id}.jsonl")
                worker_traces.append(trace_path)
            proc = ctx.Process(
                target=_worker_main,
                args=(child_conn, spec, shard_id, num_shards, verify, resume_path, trace_path),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            conns.append(parent_conn)
            procs.append(proc)

        pending: list[list] = [[] for _ in range(num_shards)]
        windows = null_windows = handoffs_total = 0
        events_total = 0
        window_since_ckpt = 0
        while True:
            readies = [conn.recv() for conn in conns]
            peeks = []
            outbound = 0
            for shard_id, (tag, peek, outbox, executed) in enumerate(readies):
                if tag != "ready":  # pragma: no cover - protocol bug
                    raise RuntimeError(f"shard {shard_id}: expected ready, got {tag!r}")
                peeks.append(peek)
                events_total += executed
                for handoff in outbox:
                    pending[handoff.dest_shard].append(handoff)
                    outbound += 1
            handoffs_total += outbound

            candidates = [p for p in peeks if p is not None]
            candidates.extend(h.time for bucket in pending for h in bucket)
            t_min = min(candidates) if candidates else None

            stopping = interrupted["seen"] and checkpoint_dir is not None
            if t_min is None or t_min > t_end or stopping:
                if stopping and (t_min is None or t_min > t_end):
                    stopping = False  # run is done anyway; finish normally
                if stopping:
                    for shard_id, conn in enumerate(conns):
                        conn.send(
                            (
                                "window",
                                t_min,  # never executed: workers stop first
                                False,
                                pending[shard_id],
                                str(_shard_ckpt(checkpoint_dir, shard_id)),
                                True,
                            )
                        )
                    for shard_id, conn in enumerate(conns):
                        tag, _now, executed = conn.recv()
                        if tag != "stopped":  # pragma: no cover - protocol bug
                            raise RuntimeError(f"shard {shard_id}: expected stopped, got {tag!r}")
                    for proc in procs:
                        proc.join(timeout=30)
                    _write_manifest(checkpoint_dir, spec, num_shards, windows, complete=True)
                    wall = time.perf_counter() - start_wall  # repro: allow(no-wall-clock) harness timing
                    return ShardRunReport(
                        status="checkpointed",
                        num_shards=num_shards,
                        windows=windows,
                        null_windows=null_windows,
                        handoffs=handoffs_total,
                        events=events_total,
                        lookahead_s=delta,
                        resumed=resume,
                        wall_s=wall,
                    )
                break

            inclusive = t_min + delta > t_end
            bound = t_end if inclusive else t_min + delta
            ckpt_due = (
                checkpoint_dir is not None
                and checkpoint_every_windows > 0
                and window_since_ckpt + 1 >= checkpoint_every_windows
            )
            moved = sum(len(bucket) for bucket in pending)
            for shard_id, conn in enumerate(conns):
                ckpt_path = str(_shard_ckpt(checkpoint_dir, shard_id)) if ckpt_due else None
                conn.send(("window", bound, inclusive, pending[shard_id], ckpt_path, False))
            pending = [[] for _ in range(num_shards)]
            windows += 1
            window_since_ckpt = 0 if ckpt_due else window_since_ckpt + 1
            if moved == 0:
                null_windows += 1
            if coord_tracer is not None:
                coord_tracer.emit(
                    bound,
                    "shard.sync",
                    ("shard", "coordinator"),
                    args={"t_min": t_min, "moved": moved, "null": moved == 0, "final": inclusive},
                )
                if moved:
                    coord_tracer.emit(
                        bound, "shard.handoff", ("shard", "coordinator"), args={"count": moved}
                    )
            if ckpt_due:
                # Workers write before running the window; the manifest
                # is only advisory (files self-describe), write it now.
                _write_manifest(checkpoint_dir, spec, num_shards, windows, complete=True)

        for conn in conns:
            conn.send(("finish",))
        results, blocked, digest_parts = [], [], []
        for shard_id, conn in enumerate(conns):
            tag, result, digest, blocked_s, _executed = conn.recv()
            if tag != "result":  # pragma: no cover - protocol bug
                raise RuntimeError(f"shard {shard_id}: expected result, got {tag!r}")
            if result is not None:
                results.append(result)
            if digest is not None:
                digest_parts.append(digest)
            blocked.append(blocked_s)
        for proc in procs:
            proc.join(timeout=30)
        state_digest = None
        if digest_parts:
            import hashlib

            state_digest = hashlib.sha256("".join(digest_parts).encode("ascii")).hexdigest()
        wall = time.perf_counter() - start_wall  # repro: allow(no-wall-clock) harness timing
        if coord_tracer is not None:
            coord_tracer.close()
            coord_tracer = None
            from repro.obs.trace_merge import merge_shard_traces

            merge_shard_traces(
                [*worker_traces, str(coord_trace_path)],
                str(trace_dir / "merged.jsonl"),
                label=f"shard-run:{spec.name}:{spec.policy}",
            )
        return ShardRunReport(
            status="completed",
            num_shards=num_shards,
            windows=windows,
            null_windows=null_windows,
            handoffs=handoffs_total,
            events=events_total,
            lookahead_s=delta,
            resumed=resume,
            wall_s=wall,
            blocked_s=blocked,
            state_digest=state_digest,
            results=results or None,
        )
    finally:
        if coord_tracer is not None:
            coord_tracer.close()
        for conn in conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=10)
        if previous_handler is not None:
            signal.signal(signal.SIGTERM, previous_handler)


def _write_manifest(directory: Path, spec: ShardScenarioSpec, num_shards: int, windows: int, complete: bool) -> None:
    manifest = {
        "kind": CHECKPOINT_KIND,
        "scenario": spec.name,
        "policy": spec.policy,
        "seed": spec.seed,
        "num_shards": num_shards,
        "windows": windows,
        "complete": complete,
    }
    tmp = directory / (MANIFEST_NAME + ".tmp")
    tmp.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    os.replace(tmp, directory / MANIFEST_NAME)
