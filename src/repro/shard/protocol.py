"""Cross-shard wire protocol: handoffs and the payload whitelist.

Everything that crosses a process boundary at a window barrier is listed
in :data:`HANDOFF_PAYLOAD_TYPES` and must be a Snapshottable-declared
class — serialization then flows through the explicit snapshot protocol
(``Snapshottable.__reduce_ex__``), never through ad-hoc ``__dict__``
pickling, closures, or lambdas.  The ``shard-safety`` contract pass
(:mod:`repro.analysis.contracts.shardsafe`) statically cross-checks this
registry, and :func:`check_handoff_payload` enforces it at runtime.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.network.packet import Packet
from repro.shard.rank import Rank

__all__ = ["HANDOFF_PAYLOAD_TYPES", "Handoff", "check_handoff_payload"]

#: the only classes allowed inside a cross-shard handoff payload.  The
#: shard-safety contract pass verifies each is Snapshottable-declared.
HANDOFF_PAYLOAD_TYPES = (Packet, Rank)


@dataclass
class Handoff:
    """One cross-shard arrival: ``fabric._arrive(packet)`` at ``time``.

    ``rank`` was allocated by the *sending* shard in scheduling-call
    order, so the receiver's calendar orders the arrival exactly where
    the serial calendar would have (docs/sharding.md, merge-order rule).
    """

    time: float
    priority: int
    rank: Rank
    dest_shard: int
    packet: Packet

    def __post_init__(self) -> None:
        check_handoff_payload(self)


def check_handoff_payload(handoff: "Handoff") -> None:
    """Refuse a handoff whose payload bypasses the Snapshottable protocol."""
    for value in (handoff.packet, handoff.rank):
        if not isinstance(value, HANDOFF_PAYLOAD_TYPES):
            raise TypeError(
                f"handoff payload {type(value).__name__} is not one of the "
                "declared HANDOFF_PAYLOAD_TYPES; only Snapshottable-declared "
                "classes may cross a shard boundary (docs/sharding.md)"
            )
