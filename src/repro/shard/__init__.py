"""Space-parallel sharded simulation (ROADMAP item 3, docs/sharding.md).

One large simulation is partitioned across K spawn-context worker
processes: :func:`repro.topology.partition.partition_topology` assigns
routers (and their hosts) to shards, each worker runs a
:class:`~repro.shard.engine.ShardSimulator` over its sub-fabric, and a
coordinator synchronizes them conservatively with a barrier-window
(YAWNS-style) protocol whose lookahead is derived from the minimum
latency of any cut link.  Cross-shard packet arrivals are handed off
through the Snapshottable pickling protocol at window barriers.

The correctness oracle is the PR-1/PR-4 digest gate:
``python -m repro.shard verify`` runs the same pinned scenario serially
and sharded and fails unless the event-trace and metric digests are
bit-identical (the offline merge in :mod:`repro.shard.merge`
reconstructs the serial calendar's global sequence numbers from the
per-shard execution logs).
"""

from repro.shard.rank import SETUP_ORIGIN, AmbiguousTieError, Rank
from repro.shard.engine import ShardSimulator
from repro.shard.fabric import LookaheadViolation, ShardFabric, ShardConfigError, min_lookahead_s
from repro.shard.protocol import HANDOFF_PAYLOAD_TYPES, Handoff
from repro.shard.scenarios import SCENARIOS, ShardScenarioSpec, build_serial, build_shard
from repro.shard.merge import MergeError, MergedRun, ShardResult, collect_result, merge_results
from repro.shard.runtime import ShardRunReport, run_sharded

__all__ = [
    "AmbiguousTieError",
    "HANDOFF_PAYLOAD_TYPES",
    "Handoff",
    "LookaheadViolation",
    "MergeError",
    "MergedRun",
    "Rank",
    "SCENARIOS",
    "SETUP_ORIGIN",
    "ShardConfigError",
    "ShardFabric",
    "ShardRunReport",
    "ShardResult",
    "ShardScenarioSpec",
    "ShardSimulator",
    "build_serial",
    "build_shard",
    "collect_result",
    "merge_results",
    "min_lookahead_s",
    "run_sharded",
]
