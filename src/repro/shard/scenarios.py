"""Pinned scenarios shared by the serial and sharded digest legs.

A :class:`ShardScenarioSpec` is a frozen, picklable description of one
hot-spot workload; :func:`build_serial` and :func:`build_shard` construct
it in *exactly* the same order (policy, fabric, workload, injection
roots), which is what makes the serial digest the oracle for the sharded
run (docs/sharding.md).

Two deviations from the legacy :mod:`repro.analysis.replay` scenario are
deliberate, and apply to **both** legs so the comparison stays apples to
apples:

* routing policies run flow-seeded (``flow_seeded=true``): each flow
  draws from its own ``named_generator`` stream, so the draw *order*
  across flows stops mattering — on a shard, only a subset of flows
  exists, and a shared stream would interleave differently;
* background noise uses :class:`ShardHotSpotWorkload`, whose per-host
  noise generators make each host's destination sequence independent of
  every other host's injection schedule, for the same reason.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import ClassVar, Optional

from repro.analysis.replay import EventTraceDigest
from repro.metrics.recorder import StatsRecorder
from repro.network.config import NetworkConfig
from repro.network.fabric import Fabric
from repro.parallel.tasks import make_topology
from repro.routing import make_policy
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams, named_generator
from repro.shard.engine import ShardSimulator
from repro.shard.fabric import ShardFabric, min_lookahead_s
from repro.topology.partition import PartitionPlan
from repro.traffic.bursty import BurstSchedule
from repro.traffic.generators import HotSpotFlow, HotSpotWorkload

__all__ = [
    "SCENARIOS",
    "SerialContext",
    "ShardContext",
    "ShardHotSpotWorkload",
    "ShardScenarioSpec",
    "VerifyRecorder",
    "build_serial",
    "build_shard",
    "default_flows",
]


@dataclass(frozen=True)
class ShardScenarioSpec:
    """One pinned hot-spot workload, fully described by plain values.

    Frozen and closure-free so a spec travels verbatim to spawn-context
    shard workers; ``flows=None`` derives the topology's canonical
    aggressor set via :func:`default_flows`.
    """

    name: str
    topology: str
    policy: str = "pr-drb"
    seed: int = 0
    repetitions: int = 3
    on_s: float = 1.5e-4
    off_s: float = 1.5e-4
    rate_bps: float = 1.2e9
    noise_rate_bps: float = 3e7
    idle_rate_bps: float = 2e8
    window_s: float = 2.5e-5
    until_margin_s: float = 4e-4
    flows: Optional[tuple[tuple[int, int], ...]] = None

    def with_policy(self, policy: str) -> "ShardScenarioSpec":
        return replace(self, policy=policy)

    def schedule(self) -> BurstSchedule:
        return BurstSchedule(on_s=self.on_s, off_s=self.off_s, repetitions=self.repetitions)

    def until(self) -> float:
        return self.schedule().end_time() + self.until_margin_s


def default_flows(spec_text: str, topology) -> tuple[tuple[int, int], ...]:
    """The canonical aggressor set for a topology.

    Mesh/torus: the replay scenario's colliding columns (two source
    columns funnel into one destination column).  Dragonfly: the perf
    harness's group-pair permutation — every host of group 0 sends to
    its mirror in the next group, contending for the pair's global link.
    """
    n = topology.num_hosts
    if hasattr(topology, "group_of"):
        per_group = n // topology.num_groups
        return tuple((h, h + per_group) for h in range(per_group))
    side = int(getattr(topology, "width", 0) or round(n**0.5))
    return ((0, n - side + 1), (side, n - side + 1), (1, n - 1))


class ShardHotSpotWorkload(HotSpotWorkload):
    """Hot-spot workload whose noise draws are per-host streams.

    The base class draws every host's random destination from one shared
    generator, so the draw order — and therefore every destination —
    depends on the global interleaving of noise injections.  A shard
    only executes its own hosts' injections, which would silently shift
    every destination.  Per-host ``named_generator(seed, "noise:<h>")``
    streams make each host's sequence a pure function of (seed, host).
    """

    _snapshot_fields_: ClassVar[tuple[str, ...]] = (
        "fabric",
        "flows",
        "idle_rate_bps",
        "idle_interval_s",
        "rate_bps",
        "schedule",
        "stop_s",
        "noise_hosts",
        "noise_rate_bps",
        "rng",
        "message_bytes",
        "interval_s",
        "messages_sent",
        "noise_seed",
        "noise_rngs",
    )

    def __init__(self, *args, noise_seed: int = 0, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.noise_seed = int(noise_seed)
        #: built eagerly for every noise host: generator state must not
        #: depend on which hosts a shard happens to execute.
        self.noise_rngs = {
            host: named_generator(self.noise_seed, f"noise:{host}")
            for host in self.noise_hosts
        }

    def _inject_noise(self, host: int, interval: float) -> None:
        now = self.fabric.sim.now
        if now >= self.stop_s:
            return
        n = self.fabric.topology.num_hosts
        rng = self.noise_rngs[host]
        dst = int(rng.integers(n - 1))
        dst = dst if dst < host else dst + 1
        self.fabric.send(host, dst, self.message_bytes)
        self.fabric.sim.schedule(interval, self._inject_noise, host, interval)


class VerifyRecorder(StatsRecorder):
    """Stats recorder that reports deliveries to the pop log.

    The offline merge rebuilds the run's metrics by replaying delivery
    annotations in merged calendar order into a fresh
    :class:`StatsRecorder`; ``(dst, latency, now)`` is everything
    ``on_data_delivered`` reads.
    """

    _snapshot_exclude_: ClassVar[tuple[str, ...]] = ("sim",)

    def __init__(self, sim: Optional[ShardSimulator] = None, window_s: float = 50e-6) -> None:
        super().__init__(window_s=window_s)
        self.sim = sim

    def on_data_delivered(self, packet, latency_s: float, now: float) -> None:
        super().on_data_delivered(packet, latency_s, now)
        if self.sim is not None:
            self.sim.annotate(("deliv", packet.dst, latency_s, now))


# ----------------------------------------------------------------------
# Construction (order is load-bearing on both legs)
# ----------------------------------------------------------------------
def _make_policy(spec: ShardScenarioSpec, streams: RandomStreams):
    """Build the policy flow-seeded; fall back for rng-free policies.

    The attempt cascade is identical on both legs (same spec string), so
    stream creation and construction order stay in lockstep.
    """
    rng = streams.stream("routing")
    for kwargs in ({"rng": rng, "flow_seeded": True}, {"rng": rng}, {}):
        try:
            return make_policy(spec.policy, **kwargs)
        except TypeError:
            continue
    raise ValueError(f"cannot construct policy {spec.policy!r}")


def _make_workload(spec: ShardScenarioSpec, fabric) -> ShardHotSpotWorkload:
    topology = fabric.topology
    flows = spec.flows
    if flows is None:
        flows = default_flows(spec.topology, topology)
    schedule = spec.schedule()
    return ShardHotSpotWorkload(
        fabric,
        [HotSpotFlow(src, dst) for src, dst in flows],
        rate_bps=spec.rate_bps,
        schedule=schedule,
        stop_s=schedule.end_time(),
        noise_hosts=range(topology.num_hosts),
        noise_rate_bps=spec.noise_rate_bps,
        idle_rate_bps=spec.idle_rate_bps,
        noise_seed=spec.seed,
    )


@dataclass
class SerialContext:
    """The serial oracle leg: digest installed, workload started."""

    spec: ShardScenarioSpec
    until: float
    sim: Simulator
    trace: EventTraceDigest
    recorder: StatsRecorder
    policy_obj: object
    fabric: Fabric
    workload: ShardHotSpotWorkload


@dataclass
class ShardContext:
    """One shard's leg: setup replayed, only owned roots enqueued."""

    spec: ShardScenarioSpec
    shard_id: int
    until: float
    lookahead_s: float
    setup_ops: int
    sim: ShardSimulator
    recorder: StatsRecorder
    policy_obj: object
    fabric: ShardFabric
    workload: ShardHotSpotWorkload

    def checkpoint_roots(self) -> dict:
        """The object-graph roots a per-shard checkpoint must carry."""
        return {
            "sim": self.sim,
            "recorder": self.recorder,
            "policy_obj": self.policy_obj,
            "fabric": self.fabric,
            "workload": self.workload,
        }


def build_serial(spec: ShardScenarioSpec, with_digest: bool = True) -> SerialContext:
    """Construct (but do not run) the serial oracle leg.

    ``with_digest=False`` skips installing the event-trace observer: the
    bench's serial baseline must not pay a per-event cost the sharded
    legs don't (digests don't change what executes, only what's hashed).
    """
    streams = RandomStreams(spec.seed)
    sim = Simulator()
    trace = EventTraceDigest()
    if with_digest:
        trace.install(sim)
    recorder = StatsRecorder(window_s=spec.window_s)
    policy_obj = _make_policy(spec, streams)
    fabric = Fabric(
        make_topology(spec.topology),
        NetworkConfig(),
        policy_obj,
        sim,
        recorder=recorder,
        notification="router",
    )
    workload = _make_workload(spec, fabric)
    workload.start()
    return SerialContext(
        spec=spec,
        until=spec.until(),
        sim=sim,
        trace=trace,
        recorder=recorder,
        policy_obj=policy_obj,
        fabric=fabric,
        workload=workload,
    )


def _setup_owner(topology, plan: PartitionPlan):
    """Map a root injection op to its owning shard.

    Root operations are ``_inject_flow(HotSpotFlow)`` and
    ``_inject_noise(host, interval)``; both are owned by the shard of the
    *source* host — every downstream event either stays there or crosses
    through the handoff seam.
    """
    shard_of_router = plan.shard_of_router

    def owner(fn, args) -> int:
        head = args[0]
        host = head.src if isinstance(head, HotSpotFlow) else int(head)
        return shard_of_router[topology.host_router(host)]

    return owner


def build_shard(
    spec: ShardScenarioSpec,
    shard_id: int,
    plan: PartitionPlan,
    verify: bool = False,
) -> ShardContext:
    """Construct (but do not run) one shard's leg of the scenario.

    Mirrors :func:`build_serial` step for step; the only differences are
    the shard-aware engine/fabric classes and the setup-mode bracket
    around workload start.
    """
    streams = RandomStreams(spec.seed)
    sim = ShardSimulator(shard_id, verify=verify)
    # No EventTraceDigest here: shard events carry Rank objects in the
    # sequence slot; the merge recomputes the digest with serial seqs.
    recorder = (
        VerifyRecorder(sim, window_s=spec.window_s)
        if verify
        else StatsRecorder(window_s=spec.window_s)
    )
    policy_obj = _make_policy(spec, streams)
    topology = make_topology(spec.topology)
    fabric = ShardFabric(
        topology,
        NetworkConfig(),
        policy_obj,
        sim,
        plan,
        recorder=recorder,
        notification="router",
        verify=verify,
    )
    fabric.assert_shardable()
    workload = _make_workload(spec, fabric)
    sim.begin_setup(_setup_owner(topology, plan))
    workload.start()
    setup_ops = sim.end_setup()
    return ShardContext(
        spec=spec,
        shard_id=shard_id,
        until=spec.until(),
        lookahead_s=min_lookahead_s(fabric.config),
        setup_ops=setup_ops,
        sim=sim,
        recorder=recorder,
        policy_obj=policy_obj,
        fabric=fabric,
        workload=workload,
    )


#: the pinned scenario registry (docs/sharding.md): ``verify`` gates on
#: mesh8, ``bench`` measures mesh16 + the dragonfly group pairs, and
#: ``large`` is the ISSUE's big-fabric checkpoint/resume workload.
SCENARIOS: dict[str, ShardScenarioSpec] = {
    spec.name: spec
    for spec in (
        ShardScenarioSpec(name="mesh8", topology="mesh:8"),
        ShardScenarioSpec(name="mesh16", topology="mesh:16", repetitions=2),
        ShardScenarioSpec(name="dragonfly", topology="dragonfly:4,2,2", repetitions=2),
        ShardScenarioSpec(name="mesh32", topology="mesh:32", repetitions=1),
    )
}
