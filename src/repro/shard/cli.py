"""``python -m repro.shard`` — run, verify, and bench sharded simulation.

* ``run``: execute one scenario space-parallel; optional checkpoint
  cadence (SIGTERM checkpoints-and-stops) and per-shard tracing.
* ``verify``: the digest gate.  For every requested policy and shard
  count, run the scenario serially and sharded, merge the shard logs
  offline, and fail unless both the event-trace digest and the metric
  digest are bit-identical (docs/sharding.md).
* ``bench``: the shard-scaling measurement (``BENCH_shard.json``).
"""

from __future__ import annotations

import argparse
import json

from repro.shard.scenarios import SCENARIOS

__all__ = ["main"]

#: the digest gate covers the full policy family of the paper plus the
#: notification-driven baseline (ISSUE 9 acceptance).
VERIFY_POLICIES = ("deterministic", "drb", "fr-drb", "pr-drb", "notified-adaptive")
VERIFY_SHARDS = (2, 4)


def _spec(args):
    try:
        spec = SCENARIOS[args.scenario]
    except KeyError:
        raise SystemExit(
            f"unknown scenario {args.scenario!r}; available: {', '.join(sorted(SCENARIOS))}"
        )
    return spec.with_policy(args.policy)


def cmd_run(args) -> int:
    from repro.shard.runtime import run_sharded

    spec = _spec(args)
    report = run_sharded(
        spec,
        args.shards,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every_windows=args.checkpoint_every,
        resume=args.resume,
        trace_dir=args.trace_dir,
    )
    print(
        json.dumps(
            {
                "scenario": spec.name,
                "policy": spec.policy,
                "status": report.status,
                "num_shards": report.num_shards,
                "events": report.events,
                "windows": report.windows,
                "null_windows": report.null_windows,
                "null_fraction": round(report.null_fraction(), 4),
                "handoffs": report.handoffs,
                "lookahead_s": report.lookahead_s,
                "resumed": report.resumed,
                "wall_s": round(report.wall_s, 3),
                "blocked_s": [round(b, 3) for b in report.blocked_s],
                "state_digest": report.state_digest,
            },
            indent=2,
            sort_keys=True,
        )
    )
    return 0


def cmd_verify(args) -> int:
    from repro.analysis.replay import digest_metrics
    from repro.shard.merge import merge_results
    from repro.shard.runtime import run_sharded
    from repro.shard.scenarios import build_serial

    base = SCENARIOS[args.scenario]
    policies = args.policies or list(VERIFY_POLICIES)
    shard_counts = args.shards or list(VERIFY_SHARDS)
    failures = 0
    for policy in policies:
        spec = base.with_policy(policy)
        serial = build_serial(spec)
        serial.sim.run(until=serial.until)
        serial_trace = serial.trace.hexdigest()
        serial_metrics = digest_metrics(serial.fabric, serial.recorder, serial.policy_obj)
        for num_shards in shard_counts:
            report = run_sharded(spec, num_shards, verify=True)
            merged = merge_results(spec, report.results, spec.until())
            trace_ok = merged.trace_digest == serial_trace
            metrics_ok = merged.metrics_digest == serial_metrics
            ok = trace_ok and metrics_ok
            failures += 0 if ok else 1
            print(
                f"{'PASS' if ok else 'FAIL'} {spec.name} {policy:>17s} K={num_shards} "
                f"events={merged.events} windows={report.windows} "
                f"handoffs={report.handoffs} "
                f"trace={'ok' if trace_ok else 'MISMATCH'} "
                f"metrics={'ok' if metrics_ok else 'MISMATCH'}"
            )
    if failures:
        print(f"{failures} digest comparison(s) FAILED")
        return 1
    print("all sharded digests bit-identical to serial")
    return 0


def cmd_bench(args) -> int:
    from repro.shard.bench import run_bench

    run_bench(
        out=args.out,
        policy=args.policy,
        scenarios=tuple(args.scenarios),
        shards=tuple(args.shards),
        quick=args.quick,
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.shard", description=__doc__.splitlines()[0]
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run one scenario space-parallel")
    p_run.add_argument("--scenario", default="mesh8", choices=sorted(SCENARIOS))
    p_run.add_argument("--policy", default="pr-drb")
    p_run.add_argument("--shards", type=int, default=2)
    p_run.add_argument("--checkpoint-dir", default=None)
    p_run.add_argument("--checkpoint-every", type=int, default=0, metavar="WINDOWS")
    p_run.add_argument("--resume", action="store_true")
    p_run.add_argument("--trace-dir", default=None)
    p_run.set_defaults(func=cmd_run)

    p_verify = sub.add_parser("verify", help="digest gate: sharded == serial, bit for bit")
    p_verify.add_argument("--scenario", default="mesh8", choices=sorted(SCENARIOS))
    p_verify.add_argument("--policies", nargs="+", default=None)
    p_verify.add_argument("--shards", nargs="+", type=int, default=None)
    p_verify.set_defaults(func=cmd_verify)

    p_bench = sub.add_parser("bench", help="shard-scaling measurement (BENCH_shard.json)")
    p_bench.add_argument("--out", default="BENCH_shard.json")
    p_bench.add_argument("--policy", default="pr-drb")
    p_bench.add_argument("--scenarios", nargs="+", default=["mesh16", "dragonfly"])
    p_bench.add_argument("--shards", nargs="+", type=int, default=[2, 4])
    p_bench.add_argument("--quick", action="store_true")
    p_bench.set_defaults(func=cmd_bench)

    args = parser.parse_args(argv)
    return args.func(args)
