"""Entry point for ``python -m repro.shard``."""

from repro.shard.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
