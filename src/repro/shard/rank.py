"""Deterministic cross-shard event ordering (docs/sharding.md).

The serial engine breaks ``(time, priority)`` ties with a global integer
sequence assigned at *scheduling* time.  Shards cannot share that
counter without serializing, so sharded events carry a :class:`Rank` in
the sequence slot instead — a key that compares in exactly the order the
serial counter would have imposed, computable from information each
shard has locally:

* every event is scheduled either during **setup** (all shards replay
  the full workload setup and count every root operation with one global
  counter — ranks compare by that counter), or from inside the callback
  of some **parent** event;
* the serial counter orders execution-born operations lexicographically
  by (parent's execution order, index among the parent's children),
  because children are assigned sequence numbers inside their parent's
  callback, in call order;
* a parent's execution order is its pop key ``(time, priority, rank)``
  — so comparing two ranks means comparing their parents' pop keys,
  recursing on the parents' *ranks* only when both time and priority
  tie.

Two shortcuts keep the recursion cheap and the memory bounded:

* ranks born on the same shard compare by a per-shard counter — a
  shard's local execution order is order-isomorphic to the serial
  projection (the conservative window protocol guarantees it), so the
  local scheduling order already matches the serial one;
* each rank stores its parent's (origin, counter) scalars, so parents
  that tie on (time, priority) but share an origin also resolve without
  touching the parent object.  Only a cross-origin parent tie needs the
  parent's full rank, so the parent reference chain is cut every
  :data:`MAX_PARENT_DEPTH` generations.

Symmetric workloads (two hosts injecting identical schedules on
different shards) produce parallel chains whose ancestors tie on
(time, priority) at *every* generation — deeper than any retained
chain.  For those, every rank also carries two O(1) scalars: the setup
counter of its founding root and a ``spine`` hash folding the
(parent_time, parent_prio) pop keys from the root down.  Equal spines
certify (up to hash collision) that the two ancestries tie at every
generation with equal depth, in which case the serial counter's order
is, by induction over generations, exactly the setup-root order — so
the tie resolves from the scalars alone.  Only a tie that is both
beyond the retained ancestry *and* spine-divergent (or same-root
symmetric) raises :class:`AmbiguousTieError` — loud instead of
silently nondeterministic.
"""

from __future__ import annotations

import struct
from typing import ClassVar, Optional

from repro.checkpoint.state import Snapshottable

__all__ = ["SETUP_ORIGIN", "MAX_PARENT_DEPTH", "AmbiguousTieError", "Rank"]

_PACK_F64 = struct.Struct("<d").pack
_UNPACK_U64 = struct.Struct("<Q").unpack
_FNV_PRIME = 0x100000001B3
_SPINE_MASK = (1 << 64) - 1


def _fold_spine(spine: int, time: float, prio: int) -> int:
    """FNV-1a fold of a pop key into an ancestry spine.

    Explicit arithmetic over the exact float bits — unlike builtin
    ``hash()`` there is no per-process salt, so spines computed on
    different shard processes are comparable.
    """
    (bits,) = _UNPACK_U64(_PACK_F64(time))
    spine = ((spine ^ bits) * _FNV_PRIME) & _SPINE_MASK
    return ((spine ^ (prio & _SPINE_MASK)) * _FNV_PRIME) & _SPINE_MASK

#: pseudo shard id of setup-born ranks; sorts before every real shard.
SETUP_ORIGIN = -1

#: parent-reference chains are cut after this many generations.  A chain
#: cannot be older than the run, so any value above run_length /
#: min_reschedule_period retains every resolvable ancestry; the pinned
#: scenarios peak around 1700 generations (mesh:32 pipelines at the
#: packet tx period).  Memory stays modest because pending events on one
#: pipeline share their ancestor chain.
MAX_PARENT_DEPTH = 4096


class AmbiguousTieError(RuntimeError):
    """Two events tie beyond the retained ancestry — refuse to guess."""


class Rank(Snapshottable):
    """Total-order key standing in for the serial sequence number."""

    _snapshot_fields_: ClassVar[tuple[str, ...]] = (
        "origin",
        "counter",
        "parent_time",
        "parent_prio",
        "parent_origin",
        "parent_counter",
        "parent",
        "depth",
        "root_counter",
        "spine",
    )

    __slots__ = (
        "origin",
        "counter",
        "parent_time",
        "parent_prio",
        "parent_origin",
        "parent_counter",
        "parent",
        "depth",
        "root_counter",
        "spine",
    )

    def __init__(
        self,
        origin: int,
        counter: int,
        parent_time: float = 0.0,
        parent_prio: int = 0,
        parent_origin: int = SETUP_ORIGIN,
        parent_counter: int = -1,
        parent: Optional["Rank"] = None,
        depth: int = 0,
        root_counter: int = -1,
        spine: int = 0,
    ) -> None:
        self.origin = origin
        self.counter = counter
        self.parent_time = parent_time
        self.parent_prio = parent_prio
        self.parent_origin = parent_origin
        self.parent_counter = parent_counter
        self.parent = parent
        self.depth = depth
        self.root_counter = root_counter
        self.spine = spine

    @classmethod
    def setup(cls, counter: int) -> "Rank":
        """A setup-born rank: compares by the global setup counter."""
        return cls(SETUP_ORIGIN, counter, root_counter=counter)

    @classmethod
    def child_of(cls, parent: "Rank", time: float, prio: int, origin: int, counter: int) -> "Rank":
        """A rank born inside ``parent``'s callback, popped at (time, prio).

        ``counter`` is the per-origin operation counter; the caller
        guarantees it increments in scheduling-call order.
        """
        depth = parent.depth + 1
        keep = parent if depth <= MAX_PARENT_DEPTH else None
        return cls(
            origin,
            counter,
            parent_time=time,
            parent_prio=prio,
            parent_origin=parent.origin,
            parent_counter=parent.counter,
            parent=keep,
            depth=depth if keep is not None else 0,
            root_counter=parent.root_counter,
            spine=_fold_spine(parent.spine, time, prio),
        )

    # ------------------------------------------------------------------
    def _cmp(self, other: "Rank") -> int:
        if self is other:
            return 0
        if self.origin == other.origin:
            # Same shard (or both setup): the local counter is exact.
            return -1 if self.counter < other.counter else 1
        if self.origin == SETUP_ORIGIN:
            return -1  # all setup operations precede all execution-born ones
        if other.origin == SETUP_ORIGIN:
            return 1
        # Cross-origin: order by the parents' pop keys.
        if self.parent_time != other.parent_time:
            return -1 if self.parent_time < other.parent_time else 1
        if self.parent_prio != other.parent_prio:
            return -1 if self.parent_prio < other.parent_prio else 1
        if self.parent_origin == other.parent_origin:
            if self.parent_counter == other.parent_counter:
                # Same parent pop, children alloc'd on different shards —
                # impossible: one pop executes on exactly one shard.
                raise AmbiguousTieError(
                    "two ranks claim the same parent from different origins"
                )
            return -1 if self.parent_counter < other.parent_counter else 1
        if self.parent is None or other.parent is None:
            # Beyond the retained ancestry.  Equal spines certify the two
            # ancestries tie on (time, priority) at every generation down
            # to their setup roots, where the global setup counter is the
            # serial order (see module docstring).
            if self.spine == other.spine and self.root_counter != other.root_counter:
                return -1 if self.root_counter < other.root_counter else 1
            raise AmbiguousTieError(
                "cross-origin (time, priority) tie beyond the retained "
                f"ancestry (depth cut {MAX_PARENT_DEPTH}) with divergent "
                "spines; cannot order deterministically"
            )
        return self.parent._cmp(other.parent)

    def __lt__(self, other: "Rank") -> bool:
        return self._cmp(other) < 0

    def __eq__(self, other: object) -> bool:
        return self is other

    __hash__ = object.__hash__

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if self.origin == SETUP_ORIGIN:
            return f"<Rank setup#{self.counter}>"
        return (
            f"<Rank s{self.origin}#{self.counter} "
            f"parent=(t={self.parent_time!r}, p={self.parent_prio}, "
            f"s{self.parent_origin}#{self.parent_counter})>"
        )
