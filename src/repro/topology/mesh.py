"""2-D mesh and torus topologies (§2.1.1, Fig. 2.2).

The paper's hot-spot experiments (Table 4.2) use an 8x8 mesh with one host
per router and dimension-order (X then Y) deterministic routing.  The torus
is the closed variant (k-ary 2-cube) with wrap-around links and
shortest-direction dimension-order routing.
"""

from __future__ import annotations

from repro.topology.base import Path, Topology


class Mesh2D(Topology):
    """``width x height`` mesh, one host per router, DOR minimal routing."""

    kind = "mesh2d"

    def __init__(self, width: int, height: int | None = None) -> None:
        if height is None:
            height = width
        if width < 2 or height < 2:
            raise ValueError("mesh dimensions must be >= 2")
        self.width = width
        self.height = height

    # -- id helpers ----------------------------------------------------
    def coords(self, router: int) -> tuple[int, int]:
        """Router id -> (x, y)."""
        return router % self.width, router // self.width

    def router_id(self, x: int, y: int) -> int:
        """(x, y) -> router id."""
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise ValueError(f"coordinates ({x},{y}) out of range")
        return y * self.width + x

    # -- Topology API ----------------------------------------------------
    @property
    def num_hosts(self) -> int:
        return self.width * self.height

    @property
    def num_routers(self) -> int:
        return self.width * self.height

    def host_router(self, host: int) -> int:
        return host

    def router_hosts(self, router: int) -> tuple[int, ...]:
        return (router,)

    def router_neighbors(self, router: int) -> tuple[int, ...]:
        x, y = self.coords(router)
        out = []
        if x > 0:
            out.append(self.router_id(x - 1, y))
        if x < self.width - 1:
            out.append(self.router_id(x + 1, y))
        if y > 0:
            out.append(self.router_id(x, y - 1))
        if y < self.height - 1:
            out.append(self.router_id(x, y + 1))
        return tuple(out)

    def minimal_route(self, src_router: int, dst_router: int) -> Path:
        x, y = self.coords(src_router)
        dx, dy = self.coords(dst_router)
        path = [src_router]
        while x != dx:
            x += 1 if dx > x else -1
            path.append(self.router_id(x, y))
        while y != dy:
            y += 1 if dy > y else -1
            path.append(self.router_id(x, y))
        return tuple(path)

    def distance(self, src_router: int, dst_router: int) -> int:
        x, y = self.coords(src_router)
        dx, dy = self.coords(dst_router)
        return abs(dx - x) + abs(dy - y)


class Torus2D(Mesh2D):
    """k-ary 2-cube: mesh with wrap-around links (§2.1.1)."""

    kind = "torus2d"

    def router_neighbors(self, router: int) -> tuple[int, ...]:
        x, y = self.coords(router)
        out = {
            self.router_id((x - 1) % self.width, y),
            self.router_id((x + 1) % self.width, y),
            self.router_id(x, (y - 1) % self.height),
            self.router_id(x, (y + 1) % self.height),
        }
        out.discard(router)
        return tuple(sorted(out))

    def _axis_step(self, pos: int, target: int, size: int) -> int:
        """Step one hop along the shorter wrap-aware direction."""
        forward = (target - pos) % size
        backward = (pos - target) % size
        if forward == 0:
            return pos
        if forward <= backward:
            return (pos + 1) % size
        return (pos - 1) % size

    def minimal_route(self, src_router: int, dst_router: int) -> Path:
        x, y = self.coords(src_router)
        dx, dy = self.coords(dst_router)
        path = [src_router]
        while x != dx:
            x = self._axis_step(x, dx, self.width)
            path.append(self.router_id(x, y))
        while y != dy:
            y = self._axis_step(y, dy, self.height)
            path.append(self.router_id(x, y))
        return tuple(path)

    def distance(self, src_router: int, dst_router: int) -> int:
        x, y = self.coords(src_router)
        dx, dy = self.coords(dst_router)
        ddx = min((dx - x) % self.width, (x - dx) % self.width)
        ddy = min((dy - y) % self.height, (y - dy) % self.height)
        return ddx + ddy
