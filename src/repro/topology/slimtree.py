"""Slimmed k-ary n-tree (§2.2.2 related work; §4.8.5 / §5.1 claim).

Full fat-trees provision full bisection bandwidth, which real
applications under-use (§2.3: they "generally under-utilize the bisection
bandwidth of fully-connected networks").  A *slimmed* tree removes a
fraction of the upper-level switches — fewer components, less bisection —
and relies on the routing policy to use what remains efficiently.  The
thesis' cost argument (§5.1: PR-DRB "allows using less network
components, because they are more efficiently handled") is evaluated on
exactly this trade in the `ext_slimtree` experiment.

Construction: take a k-ary n-tree and keep only the top-level switches
whose word's *last* digit is below ``ceil(k * keep_fraction)``.  Upward
digit choices at the root level are folded into the surviving switches,
so minimal up/down routing still works — with proportionally fewer root
paths.
"""

from __future__ import annotations

import math

from repro.topology.base import Path
from repro.topology.fattree import KaryNTree


class SlimmedKaryNTree(KaryNTree):
    """k-ary n-tree with only a fraction of its root switches."""

    kind = "slimtree"

    def __init__(self, k: int, n: int, keep_fraction: float = 0.5) -> None:
        if not 0.0 < keep_fraction <= 1.0:
            raise ValueError("keep_fraction must be in (0, 1]")
        if n < 2:
            raise ValueError("slimming needs at least 2 levels")
        super().__init__(k, n)
        #: surviving root-word digit values (digit index n-2 at level 0).
        self.kept_digits = max(1, math.ceil(k * keep_fraction))
        self.keep_fraction = keep_fraction

    # -- helpers -----------------------------------------------------------
    def _fold(self, digit: int) -> int:
        """Map any root digit choice onto a surviving switch."""
        return digit % self.kept_digits

    def _is_root(self, level: int) -> bool:
        return level == 0

    def router_alive(self, router: int) -> bool:
        """Root switches beyond the kept set do not exist."""
        level, w = self.switch_coords(router)
        if not self._is_root(level):
            return True
        # Ascending to level 0 frees digit index 0: slim by that digit.
        return w[0] < self.kept_digits

    @property
    def num_live_routers(self) -> int:
        """Routers actually present in the slimmed network."""
        per_level = self.num_routers // self.n
        removed = per_level - (per_level // self.k) * self.kept_digits
        return self.num_routers - removed

    def router_neighbors(self, router: int) -> tuple[int, ...]:
        """Adjacency excludes removed root switches entirely."""
        if not self.router_alive(router):
            return ()
        return tuple(
            nb for nb in super().router_neighbors(router) if self.router_alive(nb)
        )

    # -- routing: fold freed root digits into the kept range ---------------
    def _path_via_ancestor(self, src_host, dst_host, freed):
        nca = self.nca_level(src_host, dst_host)
        if nca == 0 and freed:
            # The digit freed last (index 0, chosen when entering level 0)
            # must land on a surviving root switch.
            freed = tuple(freed[:-1]) + (self._fold(freed[-1]),)
        return super()._path_via_ancestor(src_host, dst_host, freed)

    def host_minimal_route(self, src_host: int, dst_host: int) -> Path:
        path = super().host_minimal_route(src_host, dst_host)
        if all(self.router_alive(r) for r in path):
            return path
        # Deterministic route hit a removed root: re-route via fold.
        nca = self.nca_level(src_host, dst_host)
        b = self.host_digits(dst_host)
        freed_count = (self.n - 1) - nca
        freed = tuple(
            b[nca + i] if nca + i < self.n else 0 for i in range(freed_count)
        )
        return self._path_via_ancestor(src_host, dst_host, freed)

    def alternative_paths(self, src_host: int, dst_host: int, max_paths: int):
        paths = super().alternative_paths(src_host, dst_host, max_paths * 2)
        live = [p for p in paths if all(self.router_alive(r) for r in p)]
        seen: set[Path] = set()
        out: list[Path] = []
        for p in live:
            if p not in seen:
                seen.add(p)
                out.append(p)
            if len(out) >= max_paths:
                break
        return out or [self.host_minimal_route(src_host, dst_host)]
