"""Hypercube topology (§2.1.1: k-ary n-cube with k = 2).

One host per router; e-cube (dimension-order, lowest differing bit first)
deterministic routing.  Alternative paths come from the generic
intermediate-node machinery in :class:`repro.topology.base.Topology`.
"""

from __future__ import annotations

from repro.topology.base import Path, Topology


class Hypercube(Topology):
    """n-dimensional binary hypercube with e-cube routing."""

    kind = "hypercube"

    def __init__(self, dimensions: int) -> None:
        if dimensions < 1:
            raise ValueError("need at least one dimension")
        self.dimensions = dimensions

    @property
    def num_hosts(self) -> int:
        return 1 << self.dimensions

    @property
    def num_routers(self) -> int:
        return 1 << self.dimensions

    def host_router(self, host: int) -> int:
        return host

    def router_hosts(self, router: int) -> tuple[int, ...]:
        return (router,)

    def router_neighbors(self, router: int) -> tuple[int, ...]:
        return tuple(router ^ (1 << d) for d in range(self.dimensions))

    def minimal_route(self, src_router: int, dst_router: int) -> Path:
        path = [src_router]
        current = src_router
        diff = src_router ^ dst_router
        for d in range(self.dimensions):
            if diff & (1 << d):
                current ^= 1 << d
                path.append(current)
        return tuple(path)

    def distance(self, src_router: int, dst_router: int) -> int:
        return (src_router ^ dst_router).bit_count()
