"""Canonical dragonfly topology (Kim et al., ISCA'08; arXiv:2502.00616 §II).

A dragonfly(a, p, h) groups ``a`` routers into a fully connected local
cluster; every router attaches ``p`` hosts and drives ``h`` global links.
The canonical (balanced, maximum-size) arrangement has ``g = a*h + 1``
groups, so every ordered group pair is joined by *exactly one* global
link — which is what makes the topology interesting for adaptive
routing: minimal (l-g-l) traffic between two groups funnels through a
single global link, while Valiant routing through a random intermediate
group can spread the same traffic over all ``a*h`` of a group's global
links.  The notified policy family (:mod:`repro.routing.notified`)
exploits exactly that redundancy.

Id spaces: router ``r`` lives in group ``r // a`` with local index
``r % a``; host ``n`` attaches to router ``n // p``.  Global link ``m``
(``0 <= m < a*h``) of group ``G`` is driven by the router with local
index ``m // h`` and lands in group ``(G + m + 1) mod g`` — the
"consecutive" arrangement, whose inverse link index is ``g - m - 2``.
"""

from __future__ import annotations

from repro.topology.base import Path, Topology


class Dragonfly(Topology):
    """Canonical dragonfly(a, p, h) with ``a*h + 1`` fully linked groups."""

    kind = "dragonfly"

    def __init__(self, a: int, p: int, h: int) -> None:
        if a < 2:
            raise ValueError(
                f"dragonfly needs a >= 2 routers per group (got a={a}); "
                "a single-router group has no intra-group links"
            )
        if p < 1:
            raise ValueError(f"dragonfly needs p >= 1 hosts per router (got p={p})")
        if h < 1:
            raise ValueError(
                f"dragonfly needs h >= 1 global links per router (got h={h}); "
                "without global links the groups are disconnected"
            )
        self.a = a
        self.p = p
        self.h = h
        #: canonical group count: every group pair shares one global link.
        self.num_groups = a * h + 1

    # -- id helpers ----------------------------------------------------
    def group_of(self, router: int) -> int:
        """Group containing ``router``."""
        return router // self.a

    def group_routers(self, group: int) -> tuple[int, ...]:
        """Routers of ``group`` in local-index order."""
        base = group * self.a
        return tuple(range(base, base + self.a))

    def group_hosts(self, group: int) -> tuple[int, ...]:
        """Hosts attached to ``group``'s routers."""
        base = group * self.a * self.p
        return tuple(range(base, base + self.a * self.p))

    def host_group(self, host: int) -> int:
        """Group containing ``host``'s router."""
        return self.group_of(self.host_router(host))

    def global_gateway(self, src_group: int, dst_group: int) -> tuple[int, int]:
        """The router pair carrying the single src->dst global link."""
        if src_group == dst_group:
            raise ValueError("no global link inside a group")
        g = self.num_groups
        m_out = (dst_group - src_group - 1) % g
        m_back = (src_group - dst_group - 1) % g
        return (
            src_group * self.a + m_out // self.h,
            dst_group * self.a + m_back // self.h,
        )

    def global_peers(self, router: int) -> tuple[int, ...]:
        """Remote endpoints of ``router``'s ``h`` global links."""
        group = self.group_of(router)
        local = router % self.a
        out = []
        for k in range(self.h):
            m = local * self.h + k
            peer_group = (group + m + 1) % self.num_groups
            m_back = (group - peer_group - 1) % self.num_groups
            out.append(peer_group * self.a + m_back // self.h)
        return tuple(out)

    # -- Topology API --------------------------------------------------
    @property
    def num_hosts(self) -> int:
        return self.num_groups * self.a * self.p

    @property
    def num_routers(self) -> int:
        return self.num_groups * self.a

    def host_router(self, host: int) -> int:
        return host // self.p

    def router_hosts(self, router: int) -> tuple[int, ...]:
        return tuple(range(router * self.p, (router + 1) * self.p))

    def router_neighbors(self, router: int) -> tuple[int, ...]:
        group = self.group_of(router)
        local = tuple(r for r in self.group_routers(group) if r != router)
        return tuple(sorted(local + self.global_peers(router)))

    def minimal_route(self, src_router: int, dst_router: int) -> Path:
        if src_router == dst_router:
            return (src_router,)
        src_group = self.group_of(src_router)
        dst_group = self.group_of(dst_router)
        if src_group == dst_group:
            return (src_router, dst_router)
        # l-g-l: hop to the gateway, cross the global link, hop to the
        # destination router — at most four routers end to end.
        gw_src, gw_dst = self.global_gateway(src_group, dst_group)
        path = [src_router]
        if gw_src != src_router:
            path.append(gw_src)
        path.append(gw_dst)
        if dst_router != gw_dst:
            path.append(dst_router)
        return tuple(path)

    def distance(self, src_router: int, dst_router: int) -> int:
        return len(self.minimal_route(src_router, dst_router)) - 1

    # -- Valiant path enumeration --------------------------------------
    def valiant_route(self, src_router: int, dst_router: int, mid_group: int) -> Path | None:
        """Valiant path: minimal to ``mid_group``'s entry router, then
        minimal to the destination.  None when ``mid_group`` is an
        endpoint group or the concatenation would revisit a router."""
        src_group = self.group_of(src_router)
        dst_group = self.group_of(dst_router)
        if mid_group == src_group or mid_group == dst_group:
            return None
        _, entry = self.global_gateway(src_group, mid_group)
        return self._concat_segments(src_router, entry, dst_router)

    def alternative_paths(self, src_host: int, dst_host: int, max_paths: int) -> list[Path]:
        """Minimal path first, then Valiant paths through distinct
        intermediate groups (or detours through local routers for
        intra-group pairs).  The intermediate ordering rotates with a
        per-flow offset so concurrent flows decorrelate their detours."""
        src_r = self.host_router(src_host)
        dst_r = self.host_router(dst_host)
        original = self.minimal_route(src_r, dst_r)
        paths: list[Path] = [original]
        if src_r == dst_r or max_paths <= 1:
            return paths
        seen: set[Path] = {original}
        src_group = self.group_of(src_r)
        dst_group = self.group_of(dst_r)
        if src_group == dst_group:
            # Intra-group detours: the all-to-all cluster offers a 2-hop
            # path through every other local router.
            waypoints = [r for r in self.group_routers(src_group) if r not in original]
        else:
            waypoints = [
                mid for mid in range(self.num_groups)
                if mid != src_group and mid != dst_group
            ]
        if not waypoints:
            return paths
        offset = (src_host * 31 + dst_host * 17) % len(waypoints)
        for i in range(len(waypoints)):
            if len(paths) >= max_paths:
                break
            w = waypoints[(offset + i) % len(waypoints)]
            if src_group == dst_group:
                candidate: Path | None = (src_r, w, dst_r)
            else:
                candidate = self.valiant_route(src_r, dst_r, w)
            if candidate is not None and candidate not in seen:
                seen.add(candidate)
                paths.append(candidate)
        return paths

    def describe(self) -> str:
        return (
            f"{self.kind}(a={self.a}, p={self.p}, h={self.h}): "
            f"{self.num_groups} groups, {self.num_routers} routers, "
            f"{self.num_hosts} hosts"
        )
