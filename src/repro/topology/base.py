"""Topology abstraction.

A topology owns two id spaces: *hosts* (``0..num_hosts-1``, the paper's
terminal/processing nodes) and *routers* (``0..num_routers-1``, the paper's
network nodes).  It answers three questions the rest of the system needs:

* adjacency — :meth:`Topology.router_neighbors`;
* deterministic minimal routing — :meth:`Topology.minimal_route`, used both
  for the baseline deterministic algorithm and for each segment of a
  DRB multistep path (Eq. 3.1 builds MSPs from minimal segments);
* path redundancy — :meth:`Topology.alternative_paths`, the ordered list of
  concrete router paths DRB/PR-DRB may open between a host pair (§3.2.3).

Paths are tuples of router ids from the source's router to the
destination's router, inclusive.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Sequence

Path = tuple[int, ...]


class Topology(ABC):
    """Base class for all interconnection topologies."""

    #: short machine name, e.g. ``"mesh2d"``; subclasses override.
    kind: str = "abstract"

    # ------------------------------------------------------------------
    # Sizes and id spaces
    # ------------------------------------------------------------------
    @property
    @abstractmethod
    def num_hosts(self) -> int:
        """Number of terminal (processing) nodes."""

    @property
    @abstractmethod
    def num_routers(self) -> int:
        """Number of network nodes (switches/routers)."""

    @abstractmethod
    def host_router(self, host: int) -> int:
        """Router to which ``host`` attaches."""

    def router_hosts(self, router: int) -> tuple[int, ...]:
        """Hosts attached to ``router`` (default: scan; subclasses may override)."""
        return tuple(
            h for h in range(self.num_hosts) if self.host_router(h) == router
        )

    # ------------------------------------------------------------------
    # Adjacency
    # ------------------------------------------------------------------
    @abstractmethod
    def router_neighbors(self, router: int) -> tuple[int, ...]:
        """Routers directly linked to ``router`` (no duplicates, no self)."""

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    @abstractmethod
    def minimal_route(self, src_router: int, dst_router: int) -> Path:
        """Deterministic minimal router path, inclusive of both endpoints."""

    def distance(self, src_router: int, dst_router: int) -> int:
        """Hop count of the deterministic minimal route."""
        return len(self.minimal_route(src_router, dst_router)) - 1

    def minimal_next_hops(self, router: int, dst_router: int) -> tuple[int, ...]:
        """All neighbours of ``router`` on *some* minimal path to the
        destination — the per-hop choice set of in-network adaptive
        routing (Fig. 2.5).  The base implementation scans neighbours by
        distance; subclasses may specialize.
        """
        if router == dst_router:
            return ()
        here = self.distance(router, dst_router)
        return tuple(
            nb
            for nb in self.router_neighbors(router)
            if self.distance(nb, dst_router) == here - 1
        )

    # ------------------------------------------------------------------
    # DRB path redundancy
    # ------------------------------------------------------------------
    def alternative_paths(self, src_host: int, dst_host: int, max_paths: int) -> list[Path]:
        """Ordered candidate paths between a host pair.

        Element 0 is always the deterministic minimal path.  Subsequent
        elements are multistep paths ``S -> IN1 -> IN2 -> D`` built from
        intermediate nodes at increasing ring distance from the original
        path (§3.2.3, Fig. 3.6/3.7).  Subclasses with richer structural
        redundancy (fat-trees) override this with topology-aware
        enumeration.
        """
        src_r = self.host_router(src_host)
        dst_r = self.host_router(dst_host)
        original = self.minimal_route(src_r, dst_r)
        paths: list[Path] = [original]
        seen: set[Path] = {original}
        if src_r == dst_r:
            return paths
        # Intermediate nodes: neighbours of the source router (IN1) and of
        # the destination router (IN2), nearest rings first.
        in1_candidates = self._ring_candidates(src_r, exclude=original)
        in2_candidates = self._ring_candidates(dst_r, exclude=original)
        for in1 in in1_candidates:
            for in2 in in2_candidates:
                if len(paths) >= max_paths:
                    return paths
                msp = self._concat_segments(src_r, in1, in2, dst_r)
                if msp is not None and msp not in seen:
                    seen.add(msp)
                    paths.append(msp)
        # Fallback: single-intermediate MSPs if the pairwise scheme ran dry.
        for in1 in in1_candidates:
            if len(paths) >= max_paths:
                break
            msp = self._concat_segments(src_r, in1, dst_r)
            if msp is not None and msp not in seen:
                seen.add(msp)
                paths.append(msp)
        return paths

    def _ring_candidates(self, router: int, exclude: Sequence[int]) -> list[int]:
        """Neighbours of ``router`` preferring those off the original path."""
        excluded = set(exclude)
        neighbors = self.router_neighbors(router)
        off_path = [n for n in neighbors if n not in excluded]
        on_path = [n for n in neighbors if n in excluded and n != router]
        return off_path + on_path

    def _concat_segments(self, *waypoints: int) -> Path | None:
        """Concatenate minimal segments through ``waypoints`` (Eq. 3.1).

        Returns None when the concatenation revisits a router (the paper's
        MSPs never loop; looping candidates are discarded).
        """
        full: list[int] = [waypoints[0]]
        for a, b in zip(waypoints, waypoints[1:]):
            seg = self.minimal_route(a, b)
            full.extend(seg[1:])
        if len(set(full)) != len(full):
            return None
        return tuple(full)

    # ------------------------------------------------------------------
    # Hot-path memoization
    # ------------------------------------------------------------------
    def enable_route_cache(self) -> None:
        """Memoize the pure routing queries on *this instance*.

        Topologies are immutable once constructed, and the fabric asks the
        same ``minimal_route`` / ``minimal_next_hops`` / ``host_router``
        questions for every packet — memoizing them turns per-packet graph
        walks into dict lookups (see docs/performance.md).  Installed
        automatically by :class:`repro.network.fabric.Fabric` and by
        :func:`repro.parallel.tasks.make_topology`; idempotent.

        ``alternative_paths`` hits return a fresh list each call (the
        cached paths themselves are immutable tuples), so callers that
        mutate the returned list cannot corrupt the cache.
        """
        if self.__dict__.get("_route_cache_enabled"):
            return
        self.__dict__["_route_cache_enabled"] = True
        for name in (
            "host_router",
            "router_neighbors",
            "minimal_route",
            "distance",
            "minimal_next_hops",
        ):
            fn = getattr(self, name)
            cache: dict = {}

            def memo(*args, _fn=fn, _cache=cache):
                hit = _cache.get(args)
                if hit is None:
                    hit = _cache[args] = _fn(*args)
                return hit

            memo.__name__ = f"{name}_memo"
            self.__dict__[name] = memo
        alt = self.alternative_paths
        alt_cache: dict = {}

        def alternative_paths_memo(
            src_host: int, dst_host: int, max_paths: int,
            _fn=alt, _cache=alt_cache,
        ) -> list[Path]:
            key = (src_host, dst_host, max_paths)
            hit = _cache.get(key)
            if hit is None:
                hit = _cache[key] = tuple(_fn(src_host, dst_host, max_paths))
            return list(hit)

        self.__dict__["alternative_paths"] = alternative_paths_memo

    #: instance-dict entries installed by :meth:`enable_route_cache`.
    _ROUTE_MEMO_NAMES = (
        "host_router",
        "router_neighbors",
        "minimal_route",
        "distance",
        "minimal_next_hops",
        "alternative_paths",
    )

    def __getstate__(self):
        """Pickle without the memo closures (they are unpicklable).

        The memoized queries are pure functions of the immutable topology,
        so dropping the warm cache and rebuilding it on restore cannot
        change any routing answer — checkpoints stay behaviour-identical.
        """
        state = dict(self.__dict__)
        if state.pop("_route_cache_enabled", None):
            for name in self._ROUTE_MEMO_NAMES:
                state.pop(name, None)
            state["_route_cache_was_enabled"] = True
        return state

    def __setstate__(self, state) -> None:
        rebuild = state.pop("_route_cache_was_enabled", False)
        self.__dict__.update(state)
        if rebuild:
            self.enable_route_cache()

    # ------------------------------------------------------------------
    # Validation helpers (used by tests and the fabric)
    # ------------------------------------------------------------------
    def validate_path(self, path: Iterable[int]) -> bool:
        """True when consecutive routers on ``path`` are adjacent."""
        path = list(path)
        if not path:
            return False
        for a, b in zip(path, path[1:]):
            if b not in self.router_neighbors(a):
                return False
        return True

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.kind}: {self.num_hosts} hosts, {self.num_routers} routers"
        )
