"""k-ary n-tree (fat-tree) topology (§2.1.1, §2.1.5, Fig. 2.3d).

Following Petrini & Vanneschi's construction used by the thesis:

* ``k**n`` hosts, each identified by ``n`` base-k digits ``(p0..p_{n-1})``;
* ``n`` levels of ``k**(n-1)`` switches; a switch is ``(level, w)`` with
  ``w`` a tuple of ``n-1`` base-k digits.  Level ``n-1`` is nearest the
  hosts, level 0 holds the roots.
* Switch ``(l, w)`` connects *down* to the k switches ``(l+1, w')`` where
  ``w'`` differs from ``w`` only in digit ``l`` (or, at level ``n-1``, to
  hosts ``(w, c)``), and *up* to the k switches ``(l-1, w')`` where ``w'``
  differs only in digit ``l-1``.

Minimal routing ascends adaptively to a nearest common ancestor (NCA) at
the level equal to the common digit-prefix length of the two hosts, then
descends deterministically (§2.1.5).  The set of NCAs — one per choice of
the freed digits — gives the structural path redundancy DRB exploits:
:meth:`KaryNTree.alternative_paths` enumerates one concrete up/down path
per ancestor.
"""

from __future__ import annotations

from itertools import product

from repro.topology.base import Path, Topology


class KaryNTree(Topology):
    """k-ary n-tree with deterministic destination-digit up-routing."""

    kind = "karyntree"

    def __init__(self, k: int, n: int) -> None:
        if k < 2 or n < 1:
            raise ValueError("need k >= 2 and n >= 1")
        self.k = k
        self.n = n
        self._switches_per_level = k ** (n - 1)
        self._route_cache: dict[tuple[int, int], Path] = {}

    # -- digit helpers ---------------------------------------------------
    def host_digits(self, host: int) -> tuple[int, ...]:
        """Host id -> n base-k digits, most significant first."""
        digits = []
        for _ in range(self.n):
            digits.append(host % self.k)
            host //= self.k
        return tuple(reversed(digits))

    def host_from_digits(self, digits: tuple[int, ...]) -> int:
        value = 0
        for d in digits:
            value = value * self.k + d
        return value

    def switch_id(self, level: int, w: tuple[int, ...]) -> int:
        """(level, w digits) -> router id."""
        if not 0 <= level < self.n:
            raise ValueError(f"level {level} out of range")
        if len(w) != self.n - 1:
            raise ValueError("switch word must have n-1 digits")
        value = 0
        for d in w:
            if not 0 <= d < self.k:
                raise ValueError(f"digit {d} out of range")
            value = value * self.k + d
        return level * self._switches_per_level + value

    def switch_coords(self, router: int) -> tuple[int, tuple[int, ...]]:
        """Router id -> (level, w digits)."""
        level, value = divmod(router, self._switches_per_level)
        w = []
        for _ in range(self.n - 1):
            w.append(value % self.k)
            value //= self.k
        return level, tuple(reversed(w))

    # -- Topology API ----------------------------------------------------
    @property
    def num_hosts(self) -> int:
        return self.k**self.n

    @property
    def num_routers(self) -> int:
        return self.n * self._switches_per_level

    def host_router(self, host: int) -> int:
        digits = self.host_digits(host)
        return self.switch_id(self.n - 1, digits[: self.n - 1])

    def router_hosts(self, router: int) -> tuple[int, ...]:
        level, w = self.switch_coords(router)
        if level != self.n - 1:
            return ()
        return tuple(self.host_from_digits(w + (c,)) for c in range(self.k))

    def router_neighbors(self, router: int) -> tuple[int, ...]:
        level, w = self.switch_coords(router)
        out = []
        if level > 0:  # up-neighbours: digit level-1 freed
            for c in range(self.k):
                w2 = w[: level - 1] + (c,) + w[level:]
                out.append(self.switch_id(level - 1, w2))
        if level < self.n - 1:  # down-neighbours: digit level freed
            for c in range(self.k):
                w2 = w[:level] + (c,) + w[level + 1 :]
                out.append(self.switch_id(level + 1, w2))
        return tuple(dict.fromkeys(out))

    # -- routing -----------------------------------------------------------
    def nca_level(self, src_host: int, dst_host: int) -> int:
        """Level of the nearest common ancestors (= common prefix length)."""
        a = self.host_digits(src_host)
        b = self.host_digits(dst_host)
        prefix = 0
        for da, db in zip(a[: self.n - 1], b[: self.n - 1]):
            if da != db:
                break
            prefix += 1
        return prefix if a[: self.n - 1] != b[: self.n - 1] else self.n - 1

    def _descend(self, level: int, w: tuple[int, ...], dst_digits: tuple[int, ...]) -> list[int]:
        """Deterministic down-route from switch (level, w) to dst's leaf."""
        hops = []
        while level < self.n - 1:
            w = w[:level] + (dst_digits[level],) + w[level + 1 :]
            level += 1
            hops.append(self.switch_id(level, w))
        return hops

    def _path_via_ancestor(
        self, src_host: int, dst_host: int, freed: tuple[int, ...]
    ) -> Path:
        """Concrete up/down path using ``freed`` digits for the NCA word."""
        a = self.host_digits(src_host)
        b = self.host_digits(dst_host)
        nca = self.nca_level(src_host, dst_host)
        w = a[: self.n - 1]
        level = self.n - 1
        path = [self.switch_id(level, w)]
        idx = 0
        while level > nca:
            # Ascending from level l to l-1 frees digit l-1.
            digit = freed[idx]
            idx += 1
            w = w[: level - 1] + (digit,) + w[level:]
            level -= 1
            path.append(self.switch_id(level, w))
        path.extend(self._descend(level, w, b[: self.n - 1]))
        return tuple(path)

    def minimal_route(self, src_router: int, dst_router: int) -> Path:
        """Deterministic minimal route between any two switches.

        The tree graph is layered, so every BFS shortest path is a valid
        up-then-down route; neighbour order makes tie-breaking
        deterministic.  Leaf-to-leaf data traffic uses the faster
        :meth:`host_minimal_route` instead; this generic form serves ACK
        reverse paths and tests.
        """
        if src_router == dst_router:
            return (src_router,)
        cached = self._route_cache.get((src_router, dst_router))
        if cached is not None:
            return cached
        parent: dict[int, int] = {src_router: -1}
        frontier = [src_router]
        while frontier and dst_router not in parent:
            nxt: list[int] = []
            for node in frontier:
                for nb in self.router_neighbors(node):
                    if nb not in parent:
                        parent[nb] = node
                        nxt.append(nb)
            frontier = nxt
        if dst_router not in parent:
            raise ValueError(
                f"no route between switches {src_router} and {dst_router}"
            )
        path = [dst_router]
        while path[-1] != src_router:
            path.append(parent[path[-1]])
        route = tuple(reversed(path))
        self._route_cache[(src_router, dst_router)] = route
        return route

    def host_minimal_route(self, src_host: int, dst_host: int) -> Path:
        """Deterministic leaf-to-leaf route (destination digits ascend)."""
        b = self.host_digits(dst_host)
        nca = self.nca_level(src_host, dst_host)
        freed_count = (self.n - 1) - nca
        freed = tuple(b[nca + i] if nca + i < self.n else 0 for i in range(freed_count))
        return self._path_via_ancestor(src_host, dst_host, freed)

    # -- DRB redundancy ----------------------------------------------------
    def alternative_paths(self, src_host: int, dst_host: int, max_paths: int) -> list[Path]:
        """One concrete path per nearest-common-ancestor choice.

        Path 0 is the deterministic route; subsequent paths iterate the
        freed up-route digits, which in a k-ary n-tree is exactly the set
        of minimal paths (§2.1.5).  All are minimal, so the paper's MSP
        non-minimality never arises here — path diversity comes from
        distinct ancestors instead of detour INs.
        """
        src_r = self.host_router(src_host)
        dst_r = self.host_router(dst_host)
        if src_r == dst_r:
            return [(src_r,)]
        original = self.host_minimal_route(src_host, dst_host)
        paths: list[Path] = [original]
        seen = {original}
        nca = self.nca_level(src_host, dst_host)
        freed_count = (self.n - 1) - nca
        combos = list(product(range(self.k), repeat=freed_count))
        # Start the enumeration at a per-flow offset: if every flow listed
        # ancestors in the same order, all first alternatives would funnel
        # into the same up-switch and the "alternative" paths of different
        # flows would collide with each other by construction.
        offset = (src_host * 31 + dst_host * 17) % max(1, len(combos))
        for j in range(len(combos)):
            if len(paths) >= max_paths:
                break
            freed = combos[(offset + j) % len(combos)]
            candidate = self._path_via_ancestor(src_host, dst_host, freed)
            if candidate not in seen:
                seen.add(candidate)
                paths.append(candidate)
        return paths
