"""Network topologies (§2.1.1).

The paper evaluates PR-DRB on an 8x8 mesh and on k-ary n-tree (fat-tree)
networks; torus and hypercube are provided as additional direct topologies
for the generic DRB path-expansion machinery.
"""

from repro.topology.base import Topology
from repro.topology.mesh import Mesh2D, Torus2D
from repro.topology.fattree import KaryNTree
from repro.topology.hypercube import Hypercube
from repro.topology.karycube import KaryNCube
from repro.topology.slimtree import SlimmedKaryNTree

__all__ = ["Topology", "Mesh2D", "Torus2D", "KaryNTree", "Hypercube", "KaryNCube", "SlimmedKaryNTree"]
