"""Network topologies (§2.1.1).

The paper evaluates PR-DRB on an 8x8 mesh and on k-ary n-tree (fat-tree)
networks; torus and hypercube are provided as additional direct topologies
for the generic DRB path-expansion machinery, and the canonical dragonfly
hosts the notified-adaptive policy family (arXiv:2502.00616).
"""

from repro.topology.base import Topology
from repro.topology.mesh import Mesh2D, Torus2D
from repro.topology.partition import PartitionError, PartitionPlan, partition_topology
from repro.topology.fattree import KaryNTree
from repro.topology.hypercube import Hypercube
from repro.topology.karycube import KaryNCube
from repro.topology.slimtree import SlimmedKaryNTree
from repro.topology.dragonfly import Dragonfly

__all__ = [
    "Topology",
    "Mesh2D",
    "Torus2D",
    "KaryNTree",
    "Hypercube",
    "KaryNCube",
    "SlimmedKaryNTree",
    "Dragonfly",
    "PartitionError",
    "PartitionPlan",
    "partition_topology",
]
