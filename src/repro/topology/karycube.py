"""k-ary n-cube topology (§2.1.1).

The general closed-mesh family: ``n`` dimensions of ``k`` nodes each with
wrap-around links.  ``k=2`` degenerates to the hypercube, ``n=2`` to the
2-D torus; this class covers 3-D tori and beyond, with shortest-direction
dimension-order routing.
"""

from __future__ import annotations

from repro.topology.base import Path, Topology


class KaryNCube(Topology):
    """n-dimensional radix-k torus, one host per router."""

    kind = "karyncube"

    def __init__(self, k: int, n: int) -> None:
        if k < 2 or n < 1:
            raise ValueError("need k >= 2 and n >= 1")
        self.k = k
        self.n = n
        self._size = k**n

    # -- coordinate helpers ------------------------------------------------
    def coords(self, router: int) -> tuple[int, ...]:
        """Router id -> digits, dimension 0 first."""
        out = []
        for _ in range(self.n):
            out.append(router % self.k)
            router //= self.k
        return tuple(out)

    def router_id(self, coords: tuple[int, ...]) -> int:
        value = 0
        for d in reversed(coords):
            if not 0 <= d < self.k:
                raise ValueError(f"digit {d} out of range")
            value = value * self.k + d
        return value

    # -- Topology API --------------------------------------------------------
    @property
    def num_hosts(self) -> int:
        return self._size

    @property
    def num_routers(self) -> int:
        return self._size

    def host_router(self, host: int) -> int:
        return host

    def router_hosts(self, router: int) -> tuple[int, ...]:
        return (router,)

    def router_neighbors(self, router: int) -> tuple[int, ...]:
        coords = self.coords(router)
        out = []
        for dim in range(self.n):
            for step in (1, -1):
                nb = list(coords)
                nb[dim] = (nb[dim] + step) % self.k
                out.append(self.router_id(tuple(nb)))
        # k == 2 collapses +1/-1 to the same neighbour.
        return tuple(dict.fromkeys(n for n in out if n != router))

    def _axis_step(self, pos: int, target: int) -> int:
        forward = (target - pos) % self.k
        backward = (pos - target) % self.k
        if forward == 0:
            return pos
        return (pos + 1) % self.k if forward <= backward else (pos - 1) % self.k

    def minimal_route(self, src_router: int, dst_router: int) -> Path:
        coords = list(self.coords(src_router))
        target = self.coords(dst_router)
        path = [src_router]
        for dim in range(self.n):
            while coords[dim] != target[dim]:
                coords[dim] = self._axis_step(coords[dim], target[dim])
                path.append(self.router_id(tuple(coords)))
        return tuple(path)

    def distance(self, src_router: int, dst_router: int) -> int:
        a = self.coords(src_router)
        b = self.coords(dst_router)
        total = 0
        for x, y in zip(a, b):
            total += min((y - x) % self.k, (x - y) % self.k)
        return total
