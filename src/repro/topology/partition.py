"""Topology partitioning for space-parallel (sharded) simulation.

A :class:`PartitionPlan` assigns every router (and, through
``host_router``, every host) of a :class:`~repro.topology.base.Topology`
to one of ``num_shards`` shards and enumerates the **edge cut**: the
router-to-router links whose endpoints live on different shards.  The
sharded runtime (:mod:`repro.shard`) uses the plan to decide which
next-hop schedules stay local and which become cross-process handoffs,
and derives its conservative lookahead from the minimum latency of the
cut links (docs/sharding.md).

Two partitioners:

* :func:`partition_topology` — deterministic recursive bisection over
  the router adjacency (BFS orders from the lowest-id router of each
  block, so equal inputs always produce equal plans);
* a dragonfly specialization that assigns whole *groups* to shards.
  Keeping a group on one shard keeps the notified-adaptive policy's
  (source zone, destination zone) escalation state shard-local and puts
  only global links on the cut.

Both guarantee the properties the Hypothesis suite pins down: shard
router sets are disjoint and exhaustive, and every topology link is
either shard-internal or appears exactly once in the cut.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Sequence

from repro.topology.base import Topology

__all__ = ["PartitionError", "PartitionPlan", "partition_topology"]


class PartitionError(ValueError):
    """An unusable partition request (bad K, disconnected block, ...)."""


@dataclass(frozen=True)
class PartitionPlan:
    """Router/host -> shard assignment plus the derived edge cut."""

    num_shards: int
    #: router id -> shard id, dense over ``range(num_routers)``.
    shard_of_router: tuple[int, ...]
    #: per-shard sorted router ids (disjoint, exhaustive).
    routers_by_shard: tuple[tuple[int, ...], ...] = field(compare=False)
    #: sorted ``(a, b)`` with ``a < b`` and differing shards; each
    #: undirected cross-shard link appears exactly once.
    cut_links: tuple[tuple[int, int], ...] = field(compare=False)

    @classmethod
    def from_assignment(
        cls, topology: Topology, shard_of_router: Sequence[int]
    ) -> "PartitionPlan":
        """Derive the per-shard sets and edge cut from an assignment."""
        assignment = tuple(int(s) for s in shard_of_router)
        if len(assignment) != topology.num_routers:
            raise PartitionError(
                f"assignment covers {len(assignment)} routers, topology has "
                f"{topology.num_routers}"
            )
        num_shards = max(assignment) + 1 if assignment else 0
        by_shard: list[list[int]] = [[] for _ in range(num_shards)]
        for router, shard in enumerate(assignment):
            if not 0 <= shard < num_shards:
                raise PartitionError(f"router {router} assigned to shard {shard}")
            by_shard[shard].append(router)
        empty = [s for s, routers in enumerate(by_shard) if not routers]
        if empty:
            raise PartitionError(f"shard(s) {empty} own no routers")
        cut = []
        for a in range(topology.num_routers):
            for b in topology.router_neighbors(a):
                if a < b and assignment[a] != assignment[b]:
                    cut.append((a, b))
        return cls(
            num_shards=num_shards,
            shard_of_router=assignment,
            routers_by_shard=tuple(tuple(r) for r in by_shard),
            cut_links=tuple(sorted(cut)),
        )

    # ------------------------------------------------------------------
    def shard_of_host(self, topology: Topology, host: int) -> int:
        """Hosts follow their router: the NIC link never crosses a cut."""
        return self.shard_of_router[topology.host_router(host)]

    def hosts_by_shard(self, topology: Topology) -> tuple[tuple[int, ...], ...]:
        out: list[list[int]] = [[] for _ in range(self.num_shards)]
        for host in range(topology.num_hosts):
            out[self.shard_of_host(topology, host)].append(host)
        return tuple(tuple(h) for h in out)

    def validate(self, topology: Topology) -> None:
        """Re-derive everything and fail loudly on any inconsistency."""
        rebuilt = PartitionPlan.from_assignment(topology, self.shard_of_router)
        if rebuilt.routers_by_shard != self.routers_by_shard:
            raise PartitionError("per-shard router sets diverge from assignment")
        if rebuilt.cut_links != self.cut_links:
            raise PartitionError("edge cut diverges from assignment")
        covered = sorted(r for shard in self.routers_by_shard for r in shard)
        if covered != list(range(topology.num_routers)):
            raise PartitionError("shard router sets are not a partition")


# ----------------------------------------------------------------------
# Recursive bisection (generic topologies)
# ----------------------------------------------------------------------
def _bfs_order(routers: list[int], neighbors) -> list[int]:
    """Deterministic BFS over ``routers`` (lowest id seeds each component)."""
    members = set(routers)
    seen: set[int] = set()
    order: list[int] = []
    for seed in routers:  # routers is sorted; later seeds catch components
        if seed in seen:
            continue
        seen.add(seed)
        queue = deque([seed])
        while queue:
            current = queue.popleft()
            order.append(current)
            for peer in neighbors(current):
                if peer in members and peer not in seen:
                    seen.add(peer)
                    queue.append(peer)
    return order


def _bisect(routers: list[int], shards: int, neighbors) -> list[list[int]]:
    """Split ``routers`` into ``shards`` contiguous-ish blocks recursively."""
    if shards == 1:
        return [sorted(routers)]
    left_shards = shards // 2
    order = _bfs_order(sorted(routers), neighbors)
    split = round(len(order) * left_shards / shards)
    split = min(max(split, 1), len(order) - 1)
    left, right = order[:split], order[split:]
    return _bisect(left, left_shards, neighbors) + _bisect(
        right, shards - left_shards, neighbors
    )


def _partition_generic(topology: Topology, num_shards: int) -> PartitionPlan:
    blocks = _bisect(
        list(range(topology.num_routers)), num_shards, topology.router_neighbors
    )
    assignment = [0] * topology.num_routers
    for shard, block in enumerate(blocks):
        for router in block:
            assignment[router] = shard
    return PartitionPlan.from_assignment(topology, assignment)


# ----------------------------------------------------------------------
# Dragonfly specialization (whole groups per shard)
# ----------------------------------------------------------------------
def _partition_dragonfly(topology, num_shards: int) -> PartitionPlan:
    groups = int(topology.num_groups)
    if groups < num_shards:
        raise PartitionError(
            f"dragonfly has {groups} groups, cannot keep groups whole over "
            f"{num_shards} shards"
        )
    # Contiguous balanced blocks of group ids: group g -> shard via the
    # same rounding rule everywhere, so every process derives the same
    # plan without communicating.
    assignment = [0] * topology.num_routers
    for router in range(topology.num_routers):
        group = topology.group_of(router)
        assignment[router] = min(group * num_shards // groups, num_shards - 1)
    return PartitionPlan.from_assignment(topology, assignment)


def partition_topology(topology: Topology, num_shards: int) -> PartitionPlan:
    """Partition ``topology`` into ``num_shards`` shards, deterministically.

    Dragonflies are split group-wise (the escalation zone of the notified
    policy family stays shard-local); everything else goes through
    recursive bisection over the router adjacency.
    """
    if num_shards < 1:
        raise PartitionError(f"num_shards must be >= 1, got {num_shards}")
    if num_shards > topology.num_routers:
        raise PartitionError(
            f"cannot split {topology.num_routers} routers into {num_shards} shards"
        )
    if hasattr(topology, "group_of") and hasattr(topology, "num_groups"):
        return _partition_dragonfly(topology, num_shards)
    return _partition_generic(topology, num_shards)
