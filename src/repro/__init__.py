"""repro — Predictive and Distributed Routing Balancing (PR-DRB).

A from-scratch reproduction of Núñez Castillo et al., *Predictive and
Distributed Routing Balancing for High Speed Interconnection Networks*
(IEEE CLUSTER 2011 / UAB PhD thesis 2013): a discrete-event
interconnection-network simulator, the DRB / PR-DRB / FR-DRB routing
family, synthetic and application-trace workloads, and the evaluation
harness regenerating the paper's tables and figures.

Quickstart::

    from repro import build_network, run_synthetic

    net = build_network(topology="fattree", k=4, n=3, policy="pr-drb")
    result = run_synthetic(net, pattern="perfect-shuffle",
                           rate_mbps=400, duration_s=0.002)
    print(result.summary())
"""

from repro.sim import Simulator, RandomStreams
from repro.topology import Mesh2D, Torus2D, KaryNTree, Hypercube
from repro.network import Fabric, NetworkConfig
from repro.routing import (
    DeterministicPolicy,
    RandomPolicy,
    CyclicPolicy,
    SourceAdaptivePolicy,
    DRBPolicy,
    PRDRBPolicy,
    FRDRBPolicy,
    make_policy,
)
from repro.metrics import StatsRecorder
from repro.traffic import BurstSchedule, make_pattern
from repro.api import NetworkHandle, RunResult, build_network, build_topology, run_synthetic

__version__ = "1.0.0"

__all__ = [
    "Simulator",
    "RandomStreams",
    "Mesh2D",
    "Torus2D",
    "KaryNTree",
    "Hypercube",
    "Fabric",
    "NetworkConfig",
    "DeterministicPolicy",
    "RandomPolicy",
    "CyclicPolicy",
    "SourceAdaptivePolicy",
    "DRBPolicy",
    "PRDRBPolicy",
    "FRDRBPolicy",
    "make_policy",
    "StatsRecorder",
    "BurstSchedule",
    "make_pattern",
    "NetworkHandle",
    "RunResult",
    "build_network",
    "build_topology",
    "run_synthetic",
    "__version__",
]
