"""Bursty traffic modulation (§2.2.3, Fig. 2.6).

Parallel applications alternate computation (network-quiet) and
communication (network-heavy) phases.  A :class:`BurstSchedule` describes
the resulting on/off envelope: bursts of ``on_s`` seconds separated by
``off_s`` gaps, repeated ``repetitions`` times — the repetition is exactly
what PR-DRB's predictive module exploits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class BurstSchedule:
    """Periodic on/off injection envelope."""

    #: burst (communication phase) duration, seconds.
    on_s: float
    #: inter-burst (computation phase) gap, seconds.
    off_s: float
    #: time of the first burst's start.
    start_s: float = 0.0
    #: number of bursts; None = unbounded.
    repetitions: int | None = None

    def __post_init__(self) -> None:
        if self.on_s <= 0 or self.off_s < 0:
            raise ValueError("need on_s > 0 and off_s >= 0")

    @property
    def period_s(self) -> float:
        return self.on_s + self.off_s

    def burst_index(self, t: float) -> int | None:
        """Index of the burst active at ``t``, or None when off."""
        if t < self.start_s:
            return None
        rel = t - self.start_s
        index = int(rel // self.period_s)
        if self.repetitions is not None and index >= self.repetitions:
            return None
        return index if (rel - index * self.period_s) < self.on_s else None

    def is_on(self, t: float) -> bool:
        return self.burst_index(t) is not None

    def next_on(self, t: float) -> float | None:
        """Earliest time >= t at which injection is (still) allowed."""
        if self.is_on(t):
            return t
        if t < self.start_s:
            return self.start_s
        rel = t - self.start_s
        index = int(rel // self.period_s) + 1
        if self.repetitions is not None and index >= self.repetitions:
            return None
        candidate = self.start_s + index * self.period_s
        # start + index * period can land an ULP before the burst under
        # floating point; nudge forward until the schedule agrees.
        while not self.is_on(candidate):
            candidate = math.nextafter(candidate, math.inf)
        return candidate

    def end_time(self) -> float | None:
        """End of the last burst, or None when unbounded."""
        if self.repetitions is None:
            return None
        return self.start_s + (self.repetitions - 1) * self.period_s + self.on_s


ALWAYS_ON = BurstSchedule(on_s=float("inf"), off_s=0.0)
