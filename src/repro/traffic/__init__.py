"""Workload generation (§4.4-4.6).

Synthetic permutation patterns (Table 4.1), uniform and hot-spot specific
patterns, rate-controlled injection processes and the bursty on/off
modulation of Fig. 2.6.
"""

from repro.traffic.patterns import (
    PATTERNS,
    TrafficPattern,
    bit_reversal,
    perfect_shuffle,
    matrix_transpose,
    make_pattern,
)
from repro.traffic.bursty import BurstSchedule
from repro.traffic.generators import SyntheticTrafficSource, HotSpotWorkload

__all__ = [
    "PATTERNS",
    "TrafficPattern",
    "bit_reversal",
    "perfect_shuffle",
    "matrix_transpose",
    "make_pattern",
    "BurstSchedule",
    "SyntheticTrafficSource",
    "HotSpotWorkload",
]
