"""Synthetic traffic patterns (Table 4.1, §4.6).

Node ids are treated as ``bits``-wide binary numbers; destinations are bit
permutations of sources:

* **bit reversal** — ``d_i = s_{n-i-1}``;
* **perfect shuffle** — ``d_i = s_{(i-1) mod n}`` (rotate left);
* **matrix transpose** — ``d_i = s_{(i + n/2) mod n}`` (swap halves);
* **uniform** — destination drawn uniformly per message (§4.6's noise and
  low-load phases).

All permutations are bijections on ``[0, 2**bits)`` — the property tests
check this invariant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np


def _bits_of(value: int, bits: int) -> list[int]:
    """LSB-first bit list."""
    return [(value >> i) & 1 for i in range(bits)]


def _from_bits(bit_list: list[int]) -> int:
    value = 0
    for i, b in enumerate(bit_list):
        value |= b << i
    return value


def bit_reversal(src: int, bits: int) -> int:
    """d_i = s_{n-i-1}: reverse the bit string."""
    s = _bits_of(src, bits)
    return _from_bits(list(reversed(s)))


def perfect_shuffle(src: int, bits: int) -> int:
    """d_i = s_{(i-1) mod n}: rotate the bit string left by one."""
    s = _bits_of(src, bits)
    d = [s[(i - 1) % bits] for i in range(bits)]
    return _from_bits(d)


def matrix_transpose(src: int, bits: int) -> int:
    """d_i = s_{(i + n/2) mod n}: swap the bit-string halves.

    With odd ``bits`` the rotation by ``bits // 2`` is used (the standard
    generalization; the paper's networks all have even ``bits``).
    """
    half = bits // 2
    s = _bits_of(src, bits)
    d = [s[(i + half) % bits] for i in range(bits)]
    return _from_bits(d)


@dataclass
class TrafficPattern:
    """A destination function over ``2**bits`` nodes."""

    name: str
    bits: int
    fn: Optional[Callable[[int, int], int]] = None
    rng: Optional[np.random.Generator] = None

    @property
    def num_nodes(self) -> int:
        return 1 << self.bits

    def destination(self, src: int) -> int:
        if not 0 <= src < self.num_nodes:
            raise ValueError(f"source {src} out of range for {self.num_nodes} nodes")
        if self.fn is not None:
            return self.fn(src, self.bits)
        # Uniform: any node except the source itself.
        if self.rng is None:
            raise ValueError("uniform pattern needs an rng")
        dst = int(self.rng.integers(self.num_nodes - 1))
        return dst if dst < src else dst + 1

    @property
    def is_permutation(self) -> bool:
        return self.fn is not None


PATTERNS = {
    "bit-reversal": bit_reversal,
    "perfect-shuffle": perfect_shuffle,
    "matrix-transpose": matrix_transpose,
}


def make_pattern(
    name: str, num_nodes: int, rng: Optional[np.random.Generator] = None
) -> TrafficPattern:
    """Build a pattern over ``num_nodes`` (must be a power of two)."""
    bits = int(num_nodes).bit_length() - 1
    if 1 << bits != num_nodes:
        raise ValueError(f"num_nodes must be a power of two, got {num_nodes}")
    if name == "uniform":
        return TrafficPattern(name=name, bits=bits, fn=None, rng=rng)
    fn = PATTERNS.get(name)
    if fn is None:
        raise ValueError(f"unknown pattern {name!r}; known: {sorted(PATTERNS)} + uniform")
    return TrafficPattern(name=name, bits=bits, fn=fn)
