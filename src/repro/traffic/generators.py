"""Rate-controlled traffic injection processes (§4.1.1, §4.5-4.6).

:class:`SyntheticTrafficSource` drives a set of hosts at a configured
per-node rate (e.g. the paper's 400/600 Mbps) following a traffic pattern
and a bursty envelope.  :class:`HotSpotWorkload` reproduces the specific
hot-spot scheme of §4.5: a handful of flows whose minimal paths share
trajectory segments, plus uniform background noise from the remaining
nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Optional, Sequence

import numpy as np

from repro.checkpoint.state import Snapshottable
from repro.network.fabric import Fabric
from repro.sim.rng import seeded_generator
from repro.traffic.bursty import BurstSchedule
from repro.traffic.patterns import TrafficPattern


class SyntheticTrafficSource(Snapshottable):
    """Injects pattern traffic from ``hosts`` at ``rate_bps`` per node."""

    _snapshot_fields_: ClassVar[tuple[str, ...]] = (
        "fabric",
        "pattern",
        "hosts",
        "rate_bps",
        "schedule",
        "stop_s",
        "rng",
        "message_bytes",
        "interval_s",
        "idle_rate_bps",
        "idle_interval_s",
        "messages_sent",
    )

    def __init__(
        self,
        fabric: Fabric,
        pattern: TrafficPattern,
        hosts: Sequence[int],
        rate_bps: float,
        schedule: BurstSchedule,
        stop_s: float,
        rng: Optional[np.random.Generator] = None,
        message_bytes: Optional[int] = None,
        idle_rate_bps: float = 0.0,
    ) -> None:
        if rate_bps <= 0:
            raise ValueError("rate must be positive")
        self.fabric = fabric
        self.pattern = pattern
        self.hosts = list(hosts)
        self.rate_bps = rate_bps
        self.schedule = schedule
        self.stop_s = stop_s
        self.rng = rng
        self.message_bytes = message_bytes or fabric.config.packet_size_bytes
        #: mean inter-injection gap achieving the per-node offered load.
        self.interval_s = self.message_bytes * 8 / rate_bps
        #: Fig. 2.6a: outside bursts the nodes keep a low uniform load;
        #: 0 disables the idle phase entirely.
        self.idle_rate_bps = idle_rate_bps
        self.idle_interval_s = (
            self.message_bytes * 8 / idle_rate_bps if idle_rate_bps > 0 else None
        )
        self.messages_sent = 0

    def start(self) -> None:
        """Arm the injection process for every participating host.

        Hosts start with small deterministic phase offsets so the very
        first packets do not all collide on one simulator timestamp.
        """
        for i, host in enumerate(self.hosts):
            offset = (i / max(1, len(self.hosts))) * self.interval_s
            self.fabric.sim.schedule(offset, self._inject, host)

    def _inject(self, host: int) -> None:
        now = self.fabric.sim.now
        if now >= self.stop_s:
            return
        if not self.schedule.is_on(now):
            resume = self.schedule.next_on(now)
            if self.idle_interval_s is not None:
                # Low-load phase between bursts: keep trickling to the
                # pattern destination so source nodes still receive ACK
                # feedback and close their alternative paths.
                dst = self.pattern.destination(host)
                if dst != host:
                    self.fabric.send(host, dst, self.message_bytes)
                    self.messages_sent += 1
                next_t = now + self.idle_interval_s
                if resume is not None:
                    next_t = min(next_t, max(resume, now))
                if next_t < self.stop_s:
                    self.fabric.sim.schedule_at(next_t, self._inject, host)
                return
            if resume is None or resume >= self.stop_s:
                return
            self.fabric.sim.schedule_at(resume, self._inject, host)
            return
        dst = self.pattern.destination(host)
        if dst != host:
            self.fabric.send(host, dst, self.message_bytes)
            self.messages_sent += 1
        self.fabric.sim.schedule(self.interval_s, self._inject, host)


@dataclass
class HotSpotFlow:
    """One aggressor flow of the hot-spot specific pattern."""

    src: int
    dst: int


class HotSpotWorkload(Snapshottable):
    """§4.5 specific pattern: colliding flows + uniform background noise.

    ``flows`` are chosen so their deterministic minimal paths share
    trajectory segments (the congestion area); all other ``noise_hosts``
    inject uniform traffic at a lower rate.
    """

    _snapshot_fields_: ClassVar[tuple[str, ...]] = (
        "fabric",
        "flows",
        "idle_rate_bps",
        "idle_interval_s",
        "rate_bps",
        "schedule",
        "stop_s",
        "noise_hosts",
        "noise_rate_bps",
        "rng",
        "message_bytes",
        "interval_s",
        "messages_sent",
    )

    def __init__(
        self,
        fabric: Fabric,
        flows: Sequence[HotSpotFlow],
        rate_bps: float,
        schedule: BurstSchedule,
        stop_s: float,
        noise_hosts: Sequence[int] = (),
        noise_rate_bps: float = 0.0,
        rng: Optional[np.random.Generator] = None,
        message_bytes: Optional[int] = None,
        idle_rate_bps: float = 0.0,
    ) -> None:
        self.fabric = fabric
        self.flows = list(flows)
        self.idle_rate_bps = idle_rate_bps
        self.idle_interval_s = (
            (message_bytes or fabric.config.packet_size_bytes) * 8 / idle_rate_bps
            if idle_rate_bps > 0
            else None
        )
        self.rate_bps = rate_bps
        self.schedule = schedule
        self.stop_s = stop_s
        self.noise_hosts = [
            h for h in noise_hosts if all(h != f.src for f in self.flows)
        ]
        self.noise_rate_bps = noise_rate_bps
        self.rng = rng if rng is not None else seeded_generator(0)
        self.message_bytes = message_bytes or fabric.config.packet_size_bytes
        self.interval_s = self.message_bytes * 8 / rate_bps
        self.messages_sent = 0

    def start(self) -> None:
        for i, flow in enumerate(self.flows):
            offset = (i / max(1, len(self.flows))) * self.interval_s
            self.fabric.sim.schedule(offset, self._inject_flow, flow)
        if self.noise_rate_bps > 0:
            noise_interval = self.message_bytes * 8 / self.noise_rate_bps
            for i, host in enumerate(self.noise_hosts):
                offset = (i / max(1, len(self.noise_hosts))) * noise_interval
                self.fabric.sim.schedule(offset, self._inject_noise, host, noise_interval)

    def _inject_flow(self, flow: HotSpotFlow) -> None:
        now = self.fabric.sim.now
        if now >= self.stop_s:
            return
        if not self.schedule.is_on(now):
            resume = self.schedule.next_on(now)
            if self.idle_interval_s is not None:
                # Fig. 2.6a low-load phase: trickle so ACK feedback keeps
                # flowing and sources close their paths between bursts.
                self.fabric.send(flow.src, flow.dst, self.message_bytes)
                self.messages_sent += 1
                next_t = now + self.idle_interval_s
                if resume is not None:
                    next_t = min(next_t, max(resume, now))
                if next_t < self.stop_s:
                    self.fabric.sim.schedule_at(next_t, self._inject_flow, flow)
                return
            if resume is None or resume >= self.stop_s:
                return
            self.fabric.sim.schedule_at(resume, self._inject_flow, flow)
            return
        self.fabric.send(flow.src, flow.dst, self.message_bytes)
        self.messages_sent += 1
        self.fabric.sim.schedule(self.interval_s, self._inject_flow, flow)

    def _inject_noise(self, host: int, interval: float) -> None:
        now = self.fabric.sim.now
        if now >= self.stop_s:
            return
        n = self.fabric.topology.num_hosts
        dst = int(self.rng.integers(n - 1))
        dst = dst if dst < host else dst + 1
        self.fabric.send(host, dst, self.message_bytes)
        self.fabric.sim.schedule(interval, self._inject_noise, host, interval)
