"""Content-addressed on-disk result cache.

Layout (all JSON, human-inspectable)::

    <root>/
      <key[:2]>/<key>.json         one cached cell result
      <key[:2]>/<key>.prof         optional cProfile dump (``--profile``)
      <key[:2]>/<key>.trace.jsonl  optional repro.obs trace (``--trace``)
      manifest.json                last sweep's summary + failure ledger

An entry stores the task spec it answers for, the code-version token it
was computed under, the result payload, and a SHA-256 checksum over the
canonical JSON of ``(task, code_version, result)``.  :meth:`ResultCache.get`
verifies that checksum on every read: a corrupted or truncated entry is
*evicted* (unlinked) and reported as a miss, never trusted — the
orchestrator then simply recomputes the cell.

Writes are atomic (:mod:`repro.util.io`) so a crashed or killed worker
can never leave a half-written entry that later reads as valid.  The
manifest additionally goes through an advisory-locked read-modify-write
merge, so two sweeps sharing one ``REPRO_CACHE_DIR`` union their
outcome ledgers instead of the last writer clobbering the first.

Interrupted cells may leave a ``<key>.ckpt`` checkpoint next to the
entry (:mod:`repro.parallel.worker`); :meth:`ResultCache.checkpoint_path_for`
names it and :meth:`ResultCache.purge` removes it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Optional

from repro.parallel.tasks import SimTask, canonical_json
from repro.util.io import FileLock, atomic_write_text, sha256_hex

__all__ = ["CacheEntry", "CacheStats", "ResultCache"]

_ENTRY_SUFFIX = ".json"
_CHECKPOINT_SUFFIX = ".ckpt"
_MANIFEST_NAME = "manifest.json"


def _payload_checksum(task: dict, version: str, result: dict) -> str:
    blob = canonical_json({"task": task, "code_version": version, "result": result})
    return sha256_hex(blob)


@dataclass(frozen=True)
class CacheEntry:
    """Metadata of one stored cell (result omitted unless requested)."""

    key: str
    kind: str
    label: str
    code_version: str
    size_bytes: int
    path: str

    def to_dict(self) -> dict:
        return {
            "key": self.key,
            "kind": self.kind,
            "label": self.label,
            "code_version": self.code_version,
            "size_bytes": self.size_bytes,
            "path": self.path,
        }


@dataclass
class CacheStats:
    """Read/write counters for one cache handle's lifetime."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    corrupt_evicted: int = 0

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "corrupt_evicted": self.corrupt_evicted,
        }


@dataclass
class ResultCache:
    """Content-addressed store of sweep-cell results under ``root``."""

    root: Path
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    # -- paths ----------------------------------------------------------
    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}{_ENTRY_SUFFIX}"

    def profile_path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.prof"

    def trace_path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.trace.jsonl"

    def checkpoint_path_for(self, key: str) -> Path:
        """Where an interrupted worker parks the cell's checkpoint."""
        return self.root / key[:2] / f"{key}{_CHECKPOINT_SUFFIX}"

    @property
    def manifest_path(self) -> Path:
        return self.root / _MANIFEST_NAME

    # -- read -----------------------------------------------------------
    def get(self, key: str) -> Optional[dict]:
        """The cached result for ``key``, or None (miss / evicted)."""
        path = self.path_for(key)
        try:
            raw = path.read_text(encoding="utf-8")
        except OSError:
            self.stats.misses += 1
            return None
        entry = self._validate(key, raw)
        if entry is None:
            # Corrupted: evict so the next sweep recomputes instead of
            # tripping over the same bad bytes forever.
            try:
                path.unlink()
            except OSError:
                pass
            self.stats.corrupt_evicted += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return entry["result"]

    @staticmethod
    def _validate(key: str, raw: str) -> Optional[dict]:
        try:
            entry = json.loads(raw)
        except json.JSONDecodeError:
            return None
        if not isinstance(entry, dict):
            return None
        required = ("key", "task", "code_version", "result", "checksum")
        if any(name not in entry for name in required):
            return None
        if entry["key"] != key:
            return None
        expected = _payload_checksum(
            entry["task"], entry["code_version"], entry["result"]
        )
        if entry["checksum"] != expected:
            return None
        return entry

    # -- write ----------------------------------------------------------
    def put(self, key: str, task: SimTask, version: str, result: dict) -> Path:
        """Store ``result`` for ``key``; atomic, returns the entry path."""
        task_dict = task.to_dict()
        entry = {
            "key": key,
            "task": task_dict,
            "code_version": version,
            "result": result,
            "checksum": _payload_checksum(task_dict, version, result),
        }
        path = self.path_for(key)
        atomic_write_text(path, canonical_json(entry))
        self.stats.writes += 1
        return path

    # -- inspection / maintenance ---------------------------------------
    def entries(self) -> Iterator[CacheEntry]:
        """Iterate stored entries (validating each; corrupt ones skipped)."""
        if not self.root.is_dir():
            return
        for path in sorted(self.root.glob(f"??/*{_ENTRY_SUFFIX}")):
            key = path.stem
            try:
                raw = path.read_text(encoding="utf-8")
            except OSError:
                continue
            entry = self._validate(key, raw)
            if entry is None:
                continue
            task = entry.get("task", {})
            yield CacheEntry(
                key=key,
                kind=str(task.get("kind", "?")),
                label=str(task.get("label", "")),
                code_version=str(entry.get("code_version", "")),
                size_bytes=len(raw),
                path=str(path),
            )

    def purge(self) -> int:
        """Remove every entry (and profile dump); returns entries removed."""
        removed = 0
        if not self.root.is_dir():
            return removed
        suffixes = (
            _ENTRY_SUFFIX, _CHECKPOINT_SUFFIX, ".prof", ".tmp", ".txt", ".jsonl"
        )
        for path in sorted(self.root.glob("??/*")):
            if path.suffix in suffixes or ".tmp." in path.name:
                try:
                    path.unlink()
                except OSError:
                    continue
                if path.suffix == _ENTRY_SUFFIX:
                    removed += 1
        for sub in sorted(self.root.glob("??")):
            try:
                sub.rmdir()
            except OSError:
                pass
        return removed

    # -- manifest -------------------------------------------------------
    def write_manifest(self, manifest: dict) -> Path:
        """Merge ``manifest`` into the on-disk manifest under a file lock.

        Two orchestrators sharing a cache directory finish at arbitrary
        times; a plain overwrite would drop whichever sweep landed first.
        The whole read-merge-write cycle holds an advisory lock
        (:class:`repro.util.io.FileLock`), so concurrent sweeps union
        their outcome ledgers — per cell key, the newest result wins.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        with FileLock(self.manifest_path):
            merged = _merge_manifests(self.read_manifest(), manifest)
            atomic_write_text(
                self.manifest_path,
                json.dumps(merged, indent=2, sort_keys=True),
            )
        return self.manifest_path

    def read_manifest(self) -> Optional[dict]:
        try:
            return json.loads(self.manifest_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None


def _merge_manifests(existing: Optional[dict], new: dict) -> dict:
    """Union two sweep manifests; ``new`` wins per cell key.

    Merging only applies when both sides carry an ``outcomes`` ledger —
    anything else (first write, hand-rolled manifests in tests) passes
    through untouched.  Stale failure events for cells the new sweep
    re-ran are dropped along with their superseded outcomes; the
    aggregate counters are recomputed over the merged ledger so
    ``status`` reports the union, not the last sweep.
    """
    if (
        not isinstance(existing, dict)
        or "outcomes" not in existing
        or "outcomes" not in new
    ):
        return new
    new_keys = {o.get("key") for o in new.get("outcomes", [])}
    outcomes = [
        o for o in existing.get("outcomes", []) if o.get("key") not in new_keys
    ] + list(new.get("outcomes", []))
    failures = [
        f for f in existing.get("failures", []) if f.get("key") not in new_keys
    ] + list(new.get("failures", []))
    merged = dict(new)
    merged["outcomes"] = outcomes
    merged["failures"] = failures
    merged["executed"] = sum(1 for o in outcomes if o.get("status") == "ok")
    merged["cache_hits"] = sum(1 for o in outcomes if o.get("status") == "cached")
    merged["all_ok"] = all(o.get("status") != "failed" for o in outcomes)
    return merged
