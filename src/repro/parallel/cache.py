"""Content-addressed on-disk result cache.

Layout (all JSON, human-inspectable)::

    <root>/
      <key[:2]>/<key>.json         one cached cell result
      <key[:2]>/<key>.prof         optional cProfile dump (``--profile``)
      <key[:2]>/<key>.trace.jsonl  optional repro.obs trace (``--trace``)
      manifest.json                last sweep's summary + failure ledger

An entry stores the task spec it answers for, the code-version token it
was computed under, the result payload, and a SHA-256 checksum over the
canonical JSON of ``(task, code_version, result)``.  :meth:`ResultCache.get`
verifies that checksum on every read: a corrupted or truncated entry is
*evicted* (unlinked) and reported as a miss, never trusted — the
orchestrator then simply recomputes the cell.

Writes are atomic (temp file + ``os.replace``) so a crashed or killed
worker can never leave a half-written entry that later reads as valid.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Optional

from repro.parallel.tasks import SimTask, canonical_json

__all__ = ["CacheEntry", "CacheStats", "ResultCache"]

_ENTRY_SUFFIX = ".json"
_MANIFEST_NAME = "manifest.json"


def _payload_checksum(task: dict, version: str, result: dict) -> str:
    blob = canonical_json({"task": task, "code_version": version, "result": result})
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class CacheEntry:
    """Metadata of one stored cell (result omitted unless requested)."""

    key: str
    kind: str
    label: str
    code_version: str
    size_bytes: int
    path: str

    def to_dict(self) -> dict:
        return {
            "key": self.key,
            "kind": self.kind,
            "label": self.label,
            "code_version": self.code_version,
            "size_bytes": self.size_bytes,
            "path": self.path,
        }


@dataclass
class CacheStats:
    """Read/write counters for one cache handle's lifetime."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    corrupt_evicted: int = 0

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "corrupt_evicted": self.corrupt_evicted,
        }


@dataclass
class ResultCache:
    """Content-addressed store of sweep-cell results under ``root``."""

    root: Path
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    # -- paths ----------------------------------------------------------
    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}{_ENTRY_SUFFIX}"

    def profile_path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.prof"

    def trace_path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.trace.jsonl"

    @property
    def manifest_path(self) -> Path:
        return self.root / _MANIFEST_NAME

    # -- read -----------------------------------------------------------
    def get(self, key: str) -> Optional[dict]:
        """The cached result for ``key``, or None (miss / evicted)."""
        path = self.path_for(key)
        try:
            raw = path.read_text(encoding="utf-8")
        except OSError:
            self.stats.misses += 1
            return None
        entry = self._validate(key, raw)
        if entry is None:
            # Corrupted: evict so the next sweep recomputes instead of
            # tripping over the same bad bytes forever.
            try:
                path.unlink()
            except OSError:
                pass
            self.stats.corrupt_evicted += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return entry["result"]

    @staticmethod
    def _validate(key: str, raw: str) -> Optional[dict]:
        try:
            entry = json.loads(raw)
        except json.JSONDecodeError:
            return None
        if not isinstance(entry, dict):
            return None
        required = ("key", "task", "code_version", "result", "checksum")
        if any(name not in entry for name in required):
            return None
        if entry["key"] != key:
            return None
        expected = _payload_checksum(
            entry["task"], entry["code_version"], entry["result"]
        )
        if entry["checksum"] != expected:
            return None
        return entry

    # -- write ----------------------------------------------------------
    def put(self, key: str, task: SimTask, version: str, result: dict) -> Path:
        """Store ``result`` for ``key``; atomic, returns the entry path."""
        task_dict = task.to_dict()
        entry = {
            "key": key,
            "task": task_dict,
            "code_version": version,
            "result": result,
            "checksum": _payload_checksum(task_dict, version, result),
        }
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(canonical_json(entry), encoding="utf-8")
        os.replace(tmp, path)
        self.stats.writes += 1
        return path

    # -- inspection / maintenance ---------------------------------------
    def entries(self) -> Iterator[CacheEntry]:
        """Iterate stored entries (validating each; corrupt ones skipped)."""
        if not self.root.is_dir():
            return
        for path in sorted(self.root.glob(f"??/*{_ENTRY_SUFFIX}")):
            key = path.stem
            try:
                raw = path.read_text(encoding="utf-8")
            except OSError:
                continue
            entry = self._validate(key, raw)
            if entry is None:
                continue
            task = entry.get("task", {})
            yield CacheEntry(
                key=key,
                kind=str(task.get("kind", "?")),
                label=str(task.get("label", "")),
                code_version=str(entry.get("code_version", "")),
                size_bytes=len(raw),
                path=str(path),
            )

    def purge(self) -> int:
        """Remove every entry (and profile dump); returns entries removed."""
        removed = 0
        if not self.root.is_dir():
            return removed
        for path in sorted(self.root.glob("??/*")):
            if path.suffix in (_ENTRY_SUFFIX, ".prof", ".tmp", ".txt", ".jsonl"):
                try:
                    path.unlink()
                except OSError:
                    continue
                if path.suffix == _ENTRY_SUFFIX:
                    removed += 1
        for sub in sorted(self.root.glob("??")):
            try:
                sub.rmdir()
            except OSError:
                pass
        return removed

    # -- manifest -------------------------------------------------------
    def write_manifest(self, manifest: dict) -> Path:
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = self.manifest_path.with_suffix(".tmp")
        tmp.write_text(json.dumps(manifest, indent=2, sort_keys=True), encoding="utf-8")
        os.replace(tmp, self.manifest_path)
        return self.manifest_path

    def read_manifest(self) -> Optional[dict]:
        try:
            return json.loads(self.manifest_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
