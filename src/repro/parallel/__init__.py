"""Deterministic parallel sweep orchestration (docs/parallel.md).

The paper's evaluation method (§4.3) — the same workload rerun under
every policy with multiple seeds and averaged — is embarrassingly
parallel, and every surface in this repo that exploits it (multi-seed
policy comparisons, fault campaigns, the per-figure benchmarks) was
strictly serial.  This package supplies the missing execution backend:

* :mod:`repro.parallel.tasks` — declarative, JSON-serializable sweep
  cells (:class:`SimTask`) and content-addressed cache keys over
  ``(task spec, code version)``;
* :mod:`repro.parallel.worker` — hermetic task execution (own Simulator,
  own seeded RandomStreams per cell) so parallel results are
  bit-identical to serial ones;
* :mod:`repro.parallel.cache` — on-disk result cache with checksum
  verification and corruption eviction;
* :mod:`repro.parallel.orchestrator` — spawn-context process pool with
  per-task timeouts, capped-backoff retries, crash isolation and a
  structured failure ledger;
* ``python -m repro.parallel`` — run / verify / status / cache CLI.

Set ``REPRO_PARALLEL_WORKERS=4`` (and optionally ``REPRO_CACHE_DIR``) to
switch the integrated surfaces from serial loops to this backend.
"""

from repro.parallel.cache import CacheEntry, CacheStats, ResultCache
from repro.parallel.orchestrator import (
    FailureRecord,
    SweepConfig,
    SweepExecutor,
    SweepReport,
    TaskOutcome,
    default_executor,
    run_sweep,
)
from repro.parallel.tasks import (
    SimTask,
    canonical_json,
    code_version,
    make_topology,
    task_key,
)
from repro.parallel.worker import TASK_KINDS, execute_task

__all__ = [
    "CacheEntry",
    "CacheStats",
    "FailureRecord",
    "ResultCache",
    "SimTask",
    "SweepConfig",
    "SweepExecutor",
    "SweepReport",
    "TASK_KINDS",
    "TaskOutcome",
    "canonical_json",
    "code_version",
    "default_executor",
    "execute_task",
    "make_topology",
    "run_sweep",
    "task_key",
]
