"""Shared cProfile plumbing for workers and ``scripts/profile_sim.py``.

The HPC discipline stays "no optimization without measuring": workers can
profile the task they execute (``--profile``) and drop the stats next to
the cached result, so a sweep doubles as a profiling campaign — per-cell
``<key>.prof`` dumps (loadable with :mod:`pstats` or snakeviz) plus a
human-readable ``<key>.prof.txt`` top-N rendering.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from typing import Any, Callable, Tuple

__all__ = ["profile_call", "stats_text", "write_profile"]


def profile_call(fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Tuple[Any, cProfile.Profile]:
    """Run ``fn`` under cProfile; return ``(result, profile)``."""
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = fn(*args, **kwargs)
    finally:
        profiler.disable()
    return result, profiler


def stats_text(
    profiler: cProfile.Profile, sort: str = "tottime", top: int = 20
) -> str:
    """Top-``top`` functions of a finished profile as text."""
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.strip_dirs().sort_stats(sort).print_stats(top)
    return stream.getvalue()


def write_profile(profiler: cProfile.Profile, path: str, top: int = 25) -> None:
    """Dump raw stats to ``path`` and a text summary to ``path + '.txt'``."""
    profiler.dump_stats(path)
    with open(f"{path}.txt", "w", encoding="utf-8") as handle:
        handle.write(stats_text(profiler, top=top))
