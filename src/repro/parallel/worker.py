"""Worker-side task execution: deterministic, hermetic, picklable.

Every registered task kind builds a *fresh* simulation from its params —
its own :class:`~repro.sim.engine.Simulator`, its own
:class:`~repro.sim.rng.RandomStreams` from the task's seed — and returns
a JSON-serializable result dict.  Nothing in this module reads the wall
clock or ambient RNG: a task executed in a spawn-context worker process
is bit-identical to the same task executed inline in the parent (the
``repro.analysis`` lints and the parallel-equivalence CI smoke both
enforce this).

Task kinds
----------
``replay``
    One seeded small-mesh hot-spot run through
    :func:`repro.analysis.replay.run_scenario`; result carries the
    event-trace and metrics SHA-256 digests.
``hotspot`` / ``pattern``
    One (policy, seed) cell of
    :func:`repro.experiments.runner.run_hotspot_workload` /
    :func:`~repro.experiments.runner.run_pattern_workload` on a
    declarative topology spec; result is a lossless
    :meth:`~repro.experiments.runner.PolicyRun.to_dict`.
``fault``
    One policy's seeded fault scenario through
    :func:`repro.faults.campaign.run_fault_scenario`.
``selftest``
    Orchestrator test double: succeeds, raises, crashes the worker
    process, or spins — used by the supervision tests and CI only.

Crash-safe execution (docs/checkpoint.md)
-----------------------------------------
When the orchestrator hands a cell a ``checkpoint_path``, the ``replay``
and ``fault`` kinds run through :mod:`repro.checkpoint` instead of the
one-shot runners: a checkpoint is written every
``REPRO_CHECKPOINT_EVERY`` executed events (SIGKILL recovery), SIGTERM
triggers a final snapshot at the next event boundary followed by
``os._exit(CHECKPOINTED_EXIT)``, and a valid checkpoint already on disk
is resumed instead of starting over.  Determinism makes the spliced run
bit-identical to an uninterrupted one, so cached results never fork.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Callable, Optional

from repro.parallel.tasks import SimTask, json_safe

__all__ = [
    "CHECKPOINTED_EXIT",
    "RESUMABLE_KINDS",
    "TASK_KINDS",
    "execute_task",
    "pool_worker",
]

#: exit status of a worker that parked a final checkpoint on SIGTERM
#: (BSD ``EX_TEMPFAIL``: try again — here, resume from the checkpoint).
CHECKPOINTED_EXIT = 75

#: task kinds the checkpoint runner can build and resume.
RESUMABLE_KINDS = ("replay", "fault")

#: one snapshot of a sweep-sized cell costs ~25 ms against ~120k
#: simulated events/s, so a 200k cadence keeps the measured throughput
#: cost near 2% — under the 5% budget bench_checkpoint.py asserts.
_DEFAULT_CHECKPOINT_EVERY = 200_000


def _checkpoint_every() -> int:
    """Events between periodic checkpoints (``REPRO_CHECKPOINT_EVERY``).

    The default keeps the cadence overhead well under the 5 % budget
    asserted by ``benchmarks/bench_checkpoint.py``; tests and the CI
    kill-and-resume smoke shrink it to force mid-run snapshots.
    """
    raw = os.environ.get("REPRO_CHECKPOINT_EVERY", "")
    try:
        value = int(raw)
    except ValueError:
        return _DEFAULT_CHECKPOINT_EVERY
    return max(1, value) if value else _DEFAULT_CHECKPOINT_EVERY


# ----------------------------------------------------------------------
# Kind implementations
# ----------------------------------------------------------------------
def _run_replay(params: dict, tracer=None, metrics=None, metrics_cadence_s=None) -> dict:
    from repro.analysis.replay import run_scenario

    digest = run_scenario(
        seed=int(params.get("seed", 0)),
        policy=str(params.get("policy", "pr-drb")),
        mesh_side=int(params.get("mesh_side", 4)),
        repetitions=int(params.get("repetitions", 3)),
        tracer=tracer,
        metrics=metrics,
        metrics_cadence_s=metrics_cadence_s,
    )
    return digest.to_dict()


def _run_fault(params: dict, tracer=None, metrics=None, metrics_cadence_s=None) -> dict:
    from repro.faults.campaign import FaultCampaignSpec, run_fault_scenario
    from repro.network.config import ReliabilityConfig

    spec_params = dict(params.get("spec", {}))
    reliability = spec_params.pop("reliability", None)
    if reliability is not None:
        spec_params["reliability"] = ReliabilityConfig(**reliability)
    result = run_fault_scenario(
        policy=str(params.get("policy", "pr-drb")),
        spec=FaultCampaignSpec(**spec_params),
    )
    return result.to_dict()


def _build_schedule(params: Optional[dict]):
    from repro.traffic.bursty import BurstSchedule

    if params is None:
        return None
    return BurstSchedule(
        on_s=float(params["on_s"]),
        off_s=float(params["off_s"]),
        start_s=float(params.get("start_s", 0.0)),
        repetitions=(
            None if params.get("repetitions") is None
            else int(params["repetitions"])
        ),
    )


def _build_config(params: Optional[dict]):
    from repro.network.config import NetworkConfig

    return None if params is None else NetworkConfig(**params)


def _run_hotspot(params: dict, tracer=None, metrics=None, metrics_cadence_s=None) -> dict:
    from repro.experiments.runner import run_hotspot_workload

    runs = run_hotspot_workload(
        params["topology"],
        [params["policy"]],
        [tuple(flow) for flow in params["flows"]],
        rate_mbps=float(params["rate_mbps"]),
        schedule=_build_schedule(params["schedule"]),
        noise_rate_mbps=float(params.get("noise_rate_mbps", 0.0)),
        idle_rate_mbps=float(params.get("idle_rate_mbps", 0.0)),
        drain_s=float(params.get("drain_s", 1e-3)),
        seeds=(int(params.get("seed", 0)),),
        config=_build_config(params.get("config")),
        notification=str(params.get("notification", "destination")),
        window_s=float(params.get("window_s", 50e-6)),
        track_routers=bool(params.get("track_routers", False)),
        policy_kwargs=params.get("policy_kwargs"),
        tracer=tracer,
        metrics=metrics,
        metrics_cadence_s=metrics_cadence_s,
    )
    return runs[params["policy"]].to_dict()


def _run_pattern(params: dict, tracer=None, metrics=None, metrics_cadence_s=None) -> dict:
    from repro.experiments.runner import run_pattern_workload

    hosts = params.get("hosts")
    runs = run_pattern_workload(
        params["topology"],
        [params["policy"]],
        params["pattern"],
        rate_mbps=float(params["rate_mbps"]),
        hosts=None if hosts is None else [int(h) for h in hosts],
        schedule=_build_schedule(params.get("schedule")),
        duration_s=float(params.get("duration_s", 1e-3)),
        drain_s=float(params.get("drain_s", 1e-3)),
        seeds=(int(params.get("seed", 0)),),
        config=_build_config(params.get("config")),
        notification=str(params.get("notification", "destination")),
        window_s=float(params.get("window_s", 50e-6)),
        track_routers=bool(params.get("track_routers", False)),
        idle_rate_mbps=float(params.get("idle_rate_mbps", 0.0)),
        policy_kwargs=params.get("policy_kwargs"),
        tracer=tracer,
        metrics=metrics,
        metrics_cadence_s=metrics_cadence_s,
    )
    return runs[params["policy"]].to_dict()


def _run_selftest(params: dict, tracer=None, metrics=None, metrics_cadence_s=None) -> dict:
    """Supervision test double — never used by real sweeps."""
    mode = params.get("mode", "ok")
    if mode == "ok":
        return {"value": params.get("value", 0)}
    if mode == "fail":
        raise ValueError(params.get("message", "selftest failure"))
    if mode == "crash-once":
        # Crash the worker process hard on the first attempt; succeed on
        # the retry.  Cross-attempt state lives in a caller-named flag
        # file because the crashed process's memory is gone.
        flag = params["flag_path"]
        if not os.path.exists(flag):
            with open(flag, "w", encoding="utf-8") as handle:
                handle.write("crashed")
            os._exit(13)
        return {"value": "recovered"}
    if mode == "crash":
        os._exit(13)
    if mode == "spin":
        # Burn CPU without reading the wall clock; long enough that the
        # orchestrator's timeout fires first, bounded so a missed kill
        # cannot hang a test run forever.
        total = 0
        for i in range(int(params.get("iterations", 2 * 10**8))):
            total += i & 7
        return {"value": total}
    raise ValueError(f"unknown selftest mode {mode!r}")


TASK_KINDS: dict[str, Callable[[dict], dict]] = {
    "replay": _run_replay,
    "fault": _run_fault,
    "hotspot": _run_hotspot,
    "pattern": _run_pattern,
    "selftest": _run_selftest,
}


# ----------------------------------------------------------------------
# Crash-safe execution
# ----------------------------------------------------------------------
_HANDLER_UNSET = object()


def _run_resumable(task: SimTask, checkpoint_path: str) -> dict:
    """Run a resumable cell with periodic checkpoints and SIGTERM hand-off.

    The SIGTERM handler only sets a flag — a snapshot taken *inside* a
    signal handler could land mid-event and capture a torn state.  The
    engine's cadence hook (which always runs at an event boundary) writes
    the snapshot and, when the flag is up, exits with
    :data:`CHECKPOINTED_EXIT` so the orchestrator can ledger the cell as
    ``checkpointed`` rather than crashed.
    """
    import signal

    from repro.checkpoint import (
        build_context,
        finish_context,
        load_scenario_checkpoint,
        save_scenario_checkpoint,
    )

    path = Path(checkpoint_path)
    context = None
    if path.exists():
        try:
            _, context = load_scenario_checkpoint(path)
        except Exception:  # noqa: BLE001 - corrupt/stale/foreign checkpoint
            # Any unreadable checkpoint is discarded and the cell simply
            # recomputes from scratch — determinism makes that safe.
            context = None
            try:
                path.unlink()
            except OSError:
                pass
    if context is None:
        context = build_context(task.kind, task.params)

    interrupted = {"seen": False}

    def _on_sigterm(signum, frame):
        interrupted["seen"] = True

    meta = {"task": task.to_dict(), "label": task.display()}

    def _cadence_hook() -> None:
        save_scenario_checkpoint(context, path, meta=meta)
        if interrupted["seen"]:
            # The snapshot just written is the final word for this
            # process; exit hard so no further events run here.
            os._exit(CHECKPOINTED_EXIT)

    restore = _HANDLER_UNSET
    try:
        restore = signal.signal(signal.SIGTERM, _on_sigterm)
    except ValueError:  # pragma: no cover - not the main thread
        pass
    context.sim.set_checkpoint_cadence(_checkpoint_every(), _cadence_hook)
    try:
        context.sim.run(until=context.until)
        result = json_safe(finish_context(context))
    finally:
        context.sim.set_checkpoint_cadence(None)
        if restore is not _HANDLER_UNSET and restore is not None:
            signal.signal(signal.SIGTERM, restore)
    try:
        path.unlink()  # cell completed: the checkpoint is now stale
    except OSError:
        pass
    return result


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def execute_task(
    task: SimTask,
    profile_path: Optional[str] = None,
    trace_path: Optional[str] = None,
    checkpoint_path: Optional[str] = None,
    metrics_hook: Optional[Callable[[dict], None]] = None,
    metrics_cadence_s: Optional[float] = None,
) -> dict:
    """Run one task; optionally cProfile it (``<key>.prof`` + a
    ``<key>.prof.txt`` rendering) and/or trace it through
    :mod:`repro.obs` (``<key>.trace.jsonl``), dumping both next to the
    cache entry.  Tracing never perturbs the result — the cell stays
    bit-identical to an untraced run.

    ``metrics_hook`` attaches a :class:`~repro.obs.metrics.MetricsRegistry`
    whose cadence snapshots are handed to the hook as they are taken —
    the live-telemetry egress ``repro.serve`` streams over SSE.  The
    registry rides the simulator observer list, so the cell's digests
    stay bit-identical with or without it.  Hooks are callables, so they
    only exist on the inline backend (the pool cannot pickle them).

    ``checkpoint_path`` opts a :data:`RESUMABLE_KINDS` cell into
    crash-safe execution (see the module docstring).  Profiling, tracing
    and metrics hooks take precedence when combined: their sinks hold
    live handles no snapshot could carry, so such cells run one-shot."""
    runner = TASK_KINDS.get(task.kind)
    if runner is None:
        raise ValueError(
            f"unknown task kind {task.kind!r}; registered: {sorted(TASK_KINDS)}"
        )
    if (
        checkpoint_path is not None
        and task.kind in RESUMABLE_KINDS
        and profile_path is None
        and trace_path is None
        and metrics_hook is None
    ):
        return _run_resumable(task, checkpoint_path)
    tracer = None
    if trace_path is not None:
        from repro.obs import JsonlSink, Tracer

        tracer = Tracer(sinks=[JsonlSink(trace_path, label=task.display())])
    metrics = None
    if metrics_hook is not None:
        from repro.obs import MetricsRegistry

        metrics = MetricsRegistry()
        metrics.on_snapshot = metrics_hook
    kwargs = {"tracer": tracer}
    if metrics is not None:
        kwargs["metrics"] = metrics
        kwargs["metrics_cadence_s"] = metrics_cadence_s
    try:
        if profile_path is None:
            return json_safe(runner(task.params, **kwargs))
        from repro.parallel.profiling import profile_call, write_profile

        result, profile = profile_call(runner, task.params, **kwargs)
        write_profile(profile, profile_path)
        return json_safe(result)
    finally:
        if tracer is not None:
            tracer.close()


def pool_worker(
    task_dict: dict,
    profile_path: Optional[str] = None,
    trace_path: Optional[str] = None,
    checkpoint_path: Optional[str] = None,
) -> dict:
    """Top-level (picklable) adapter used by the process pool."""
    return execute_task(
        SimTask.from_dict(task_dict),
        profile_path=profile_path,
        trace_path=trace_path,
        checkpoint_path=checkpoint_path,
    )
