"""Worker-side task execution: deterministic, hermetic, picklable.

Every registered task kind builds a *fresh* simulation from its params —
its own :class:`~repro.sim.engine.Simulator`, its own
:class:`~repro.sim.rng.RandomStreams` from the task's seed — and returns
a JSON-serializable result dict.  Nothing in this module reads the wall
clock or ambient RNG: a task executed in a spawn-context worker process
is bit-identical to the same task executed inline in the parent (the
``repro.analysis`` lints and the parallel-equivalence CI smoke both
enforce this).

Task kinds
----------
``replay``
    One seeded small-mesh hot-spot run through
    :func:`repro.analysis.replay.run_scenario`; result carries the
    event-trace and metrics SHA-256 digests.
``hotspot`` / ``pattern``
    One (policy, seed) cell of
    :func:`repro.experiments.runner.run_hotspot_workload` /
    :func:`~repro.experiments.runner.run_pattern_workload` on a
    declarative topology spec; result is a lossless
    :meth:`~repro.experiments.runner.PolicyRun.to_dict`.
``fault``
    One policy's seeded fault scenario through
    :func:`repro.faults.campaign.run_fault_scenario`.
``selftest``
    Orchestrator test double: succeeds, raises, crashes the worker
    process, or spins — used by the supervision tests and CI only.
"""

from __future__ import annotations

import os
from typing import Callable, Optional

from repro.parallel.tasks import SimTask, json_safe

__all__ = ["TASK_KINDS", "execute_task", "pool_worker"]


# ----------------------------------------------------------------------
# Kind implementations
# ----------------------------------------------------------------------
def _run_replay(params: dict, tracer=None) -> dict:
    from repro.analysis.replay import run_scenario

    digest = run_scenario(
        seed=int(params.get("seed", 0)),
        policy=str(params.get("policy", "pr-drb")),
        mesh_side=int(params.get("mesh_side", 4)),
        repetitions=int(params.get("repetitions", 3)),
        tracer=tracer,
    )
    return digest.to_dict()


def _run_fault(params: dict, tracer=None) -> dict:
    from repro.faults.campaign import FaultCampaignSpec, run_fault_scenario
    from repro.network.config import ReliabilityConfig

    spec_params = dict(params.get("spec", {}))
    reliability = spec_params.pop("reliability", None)
    if reliability is not None:
        spec_params["reliability"] = ReliabilityConfig(**reliability)
    result = run_fault_scenario(
        policy=str(params.get("policy", "pr-drb")),
        spec=FaultCampaignSpec(**spec_params),
    )
    return result.to_dict()


def _build_schedule(params: Optional[dict]):
    from repro.traffic.bursty import BurstSchedule

    if params is None:
        return None
    return BurstSchedule(
        on_s=float(params["on_s"]),
        off_s=float(params["off_s"]),
        start_s=float(params.get("start_s", 0.0)),
        repetitions=(
            None if params.get("repetitions") is None
            else int(params["repetitions"])
        ),
    )


def _build_config(params: Optional[dict]):
    from repro.network.config import NetworkConfig

    return None if params is None else NetworkConfig(**params)


def _run_hotspot(params: dict, tracer=None) -> dict:
    from repro.experiments.runner import run_hotspot_workload

    runs = run_hotspot_workload(
        params["topology"],
        [params["policy"]],
        [tuple(flow) for flow in params["flows"]],
        rate_mbps=float(params["rate_mbps"]),
        schedule=_build_schedule(params["schedule"]),
        noise_rate_mbps=float(params.get("noise_rate_mbps", 0.0)),
        idle_rate_mbps=float(params.get("idle_rate_mbps", 0.0)),
        drain_s=float(params.get("drain_s", 1e-3)),
        seeds=(int(params.get("seed", 0)),),
        config=_build_config(params.get("config")),
        notification=str(params.get("notification", "destination")),
        window_s=float(params.get("window_s", 50e-6)),
        track_routers=bool(params.get("track_routers", False)),
        policy_kwargs=params.get("policy_kwargs"),
        tracer=tracer,
    )
    return runs[params["policy"]].to_dict()


def _run_pattern(params: dict, tracer=None) -> dict:
    from repro.experiments.runner import run_pattern_workload

    hosts = params.get("hosts")
    runs = run_pattern_workload(
        params["topology"],
        [params["policy"]],
        params["pattern"],
        rate_mbps=float(params["rate_mbps"]),
        hosts=None if hosts is None else [int(h) for h in hosts],
        schedule=_build_schedule(params.get("schedule")),
        duration_s=float(params.get("duration_s", 1e-3)),
        drain_s=float(params.get("drain_s", 1e-3)),
        seeds=(int(params.get("seed", 0)),),
        config=_build_config(params.get("config")),
        notification=str(params.get("notification", "destination")),
        window_s=float(params.get("window_s", 50e-6)),
        track_routers=bool(params.get("track_routers", False)),
        idle_rate_mbps=float(params.get("idle_rate_mbps", 0.0)),
        policy_kwargs=params.get("policy_kwargs"),
        tracer=tracer,
    )
    return runs[params["policy"]].to_dict()


def _run_selftest(params: dict, tracer=None) -> dict:
    """Supervision test double — never used by real sweeps."""
    mode = params.get("mode", "ok")
    if mode == "ok":
        return {"value": params.get("value", 0)}
    if mode == "fail":
        raise ValueError(params.get("message", "selftest failure"))
    if mode == "crash-once":
        # Crash the worker process hard on the first attempt; succeed on
        # the retry.  Cross-attempt state lives in a caller-named flag
        # file because the crashed process's memory is gone.
        flag = params["flag_path"]
        if not os.path.exists(flag):
            with open(flag, "w", encoding="utf-8") as handle:
                handle.write("crashed")
            os._exit(13)
        return {"value": "recovered"}
    if mode == "crash":
        os._exit(13)
    if mode == "spin":
        # Burn CPU without reading the wall clock; long enough that the
        # orchestrator's timeout fires first, bounded so a missed kill
        # cannot hang a test run forever.
        total = 0
        for i in range(int(params.get("iterations", 2 * 10**8))):
            total += i & 7
        return {"value": total}
    raise ValueError(f"unknown selftest mode {mode!r}")


TASK_KINDS: dict[str, Callable[[dict], dict]] = {
    "replay": _run_replay,
    "fault": _run_fault,
    "hotspot": _run_hotspot,
    "pattern": _run_pattern,
    "selftest": _run_selftest,
}


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def execute_task(
    task: SimTask,
    profile_path: Optional[str] = None,
    trace_path: Optional[str] = None,
) -> dict:
    """Run one task; optionally cProfile it (``<key>.prof`` + a
    ``<key>.prof.txt`` rendering) and/or trace it through
    :mod:`repro.obs` (``<key>.trace.jsonl``), dumping both next to the
    cache entry.  Tracing never perturbs the result — the cell stays
    bit-identical to an untraced run."""
    runner = TASK_KINDS.get(task.kind)
    if runner is None:
        raise ValueError(
            f"unknown task kind {task.kind!r}; registered: {sorted(TASK_KINDS)}"
        )
    tracer = None
    if trace_path is not None:
        from repro.obs import JsonlSink, Tracer

        tracer = Tracer(sinks=[JsonlSink(trace_path, label=task.display())])
    try:
        if profile_path is None:
            return json_safe(runner(task.params, tracer=tracer))
        from repro.parallel.profiling import profile_call, write_profile

        result, profile = profile_call(runner, task.params, tracer=tracer)
        write_profile(profile, profile_path)
        return json_safe(result)
    finally:
        if tracer is not None:
            tracer.close()


def pool_worker(
    task_dict: dict,
    profile_path: Optional[str] = None,
    trace_path: Optional[str] = None,
) -> dict:
    """Top-level (picklable) adapter used by the process pool."""
    return execute_task(
        SimTask.from_dict(task_dict),
        profile_path=profile_path,
        trace_path=trace_path,
    )
