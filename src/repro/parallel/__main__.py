"""CLI: ``python -m repro.parallel`` — run, verify, inspect sweeps.

Subcommands
-----------
``run``
    Fan a policy x seed sweep (replay digests or fault scenarios) out to
    N workers, against the content-addressed result cache.
``verify``
    Parallel-equivalence smoke: run the same small sweep serially and
    with N workers (both uncached) and fail unless every cell's result —
    including the replay event/metric digests — is bit-identical.
    Exit 0 iff equivalent; used directly as a CI step.
``status``
    Print the last sweep's manifest from the cache directory: counts,
    wall-clock, throughput, and the failure ledger.
``cache``
    ``inspect`` lists validated entries; ``purge`` removes everything.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
from typing import Optional, Sequence

from repro.parallel.cache import ResultCache
from repro.parallel.orchestrator import SweepConfig, run_sweep
from repro.parallel.tasks import SimTask, canonical_json

DEFAULT_POLICIES = ("deterministic", "drb", "pr-drb", "fr-drb")
_DEFAULT_CACHE = ".repro_cache"


def _cache_dir(args) -> str:
    return args.cache_dir or os.environ.get("REPRO_CACHE_DIR", _DEFAULT_CACHE)


def _parse_seeds(text: str) -> list[int]:
    """``"8"`` -> seeds 0..7; ``"0,3,5"`` -> exactly those."""
    if "," in text:
        return [int(part) for part in text.split(",") if part.strip()]
    return list(range(int(text)))


def _build_tasks(args) -> list[SimTask]:
    tasks: list[SimTask] = []
    for policy in args.policies:
        for seed in _parse_seeds(args.seeds):
            if args.kind == "replay":
                params = {
                    "policy": policy,
                    "seed": seed,
                    "mesh_side": args.mesh_side,
                    "repetitions": args.repetitions,
                }
            else:  # fault
                params = {
                    "policy": policy,
                    "spec": {
                        "seed": seed,
                        "mesh_side": args.mesh_side,
                        "repetitions": args.repetitions,
                        "ack_loss": args.ack_loss,
                    },
                }
            tasks.append(
                SimTask(
                    kind=args.kind,
                    params=params,
                    label=f"{args.kind}:{policy}/seed{seed}",
                )
            )
    return tasks


def _progress_printer(event: dict) -> None:
    kind = event["event"]
    label = event.get("label", "")
    done = event.get("completed", 0)
    total = event.get("total", 0)
    if kind in ("done", "cached"):
        rate = event.get("rate")
        rate_text = f" {rate:.2f} task/s" if rate else ""
        print(f"[{done}/{total}] {kind:6s} {label}{rate_text}", file=sys.stderr)
    else:
        print(
            f"[{done}/{total}] {kind:6s} {label} "
            f"(attempt {event.get('attempt')}, {event.get('reason')})",
            file=sys.stderr,
        )


def _sweep_config(args, cache_dir: Optional[str]) -> SweepConfig:
    return SweepConfig(
        workers=args.workers,
        timeout_s=args.timeout,
        max_retries=args.retries,
        cache_dir=cache_dir,
        profile=getattr(args, "profile", False),
        trace=getattr(args, "trace", False),
        resume=getattr(args, "resume", False),
    )


def _cmd_run(args) -> int:
    cache_dir = None if args.no_cache else _cache_dir(args)
    tasks = _build_tasks(args)
    report = run_sweep(
        tasks,
        _sweep_config(args, cache_dir),
        progress=None if args.json else _progress_printer,
    )
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        for outcome, result in zip(report.outcomes, report.results):
            if outcome.status == "failed":
                print(f"{outcome.task.display():32s} FAILED: {outcome.error}")
            elif args.kind == "replay":
                print(
                    f"{outcome.task.display():32s} {outcome.status:6s} "
                    f"events={result['events'][:16]}… "
                    f"metrics={result['metrics'][:16]}…"
                )
            else:
                ratio = result.get("report", {}).get("delivered_ratio", 0.0)
                print(
                    f"{outcome.task.display():32s} {outcome.status:6s} "
                    f"delivered_ratio={ratio:.3f}"
                )
        rate = len(report.outcomes) / report.wall_s if report.wall_s > 0 else 0.0
        print(
            f"{len(report.outcomes)} cells in {report.wall_s:.2f}s "
            f"({rate:.2f} cells/s): {report.executed} executed, "
            f"{report.cache_hits} from cache, {len(report.failed)} failed; "
            f"workers={report.workers} code_version={report.code_version}"
        )
    return 0 if report.all_ok else 1


def _cmd_verify(args) -> int:
    tasks = _build_tasks(args)
    parallel_config = _sweep_config(args, None)
    serial = run_sweep(tasks, dataclasses.replace(parallel_config, workers=1))
    parallel = run_sweep(tasks, parallel_config)
    if not serial.all_ok or not parallel.all_ok:
        print("FAIL: sweep cells failed", file=sys.stderr)
        for report in (serial, parallel):
            for outcome in report.failed:
                print(f"  {outcome.task.display()}: {outcome.error}", file=sys.stderr)
        return 1
    mismatches = []
    for task, left, right in zip(tasks, serial.results, parallel.results):
        if canonical_json(left) != canonical_json(right):
            mismatches.append(task.display())
    if mismatches:
        print(
            f"NON-DETERMINISTIC: {len(mismatches)} cell(s) differ between "
            f"serial and {args.workers}-worker execution:", file=sys.stderr,
        )
        for label in mismatches:
            print(f"  {label}", file=sys.stderr)
        return 1
    print(
        f"DETERMINISTIC: {len(tasks)} cells bit-identical between serial and "
        f"{args.workers}-worker execution "
        f"(serial {serial.wall_s:.2f}s, parallel {parallel.wall_s:.2f}s)"
    )
    return 0


def _cmd_status(args) -> int:
    cache = ResultCache(_cache_dir(args))
    manifest = cache.read_manifest()
    if manifest is None:
        print(f"no sweep manifest under {cache.root}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(manifest, indent=2, sort_keys=True))
        return 0
    print(
        f"last sweep: {len(manifest.get('outcomes', []))} cells, "
        f"{manifest.get('executed', 0)} executed, "
        f"{manifest.get('cache_hits', 0)} cached, "
        f"{manifest.get('resumed', 0)} resumed, "
        f"{manifest.get('wall_s', 0.0):.2f}s wall, "
        f"workers={manifest.get('workers')}, "
        f"code_version={manifest.get('code_version')}"
    )
    failures = manifest.get("failures", [])
    if failures:
        print(f"failure ledger ({len(failures)} events):")
        for failure in failures:
            final = "FINAL" if failure.get("final") else "retried"
            print(
                f"  {failure.get('label'):32s} attempt {failure.get('attempt')} "
                f"{failure.get('reason')}: {failure.get('error')} [{final}]"
            )
    else:
        print("failure ledger: empty")
    return 0


def _cmd_cache(args) -> int:
    cache = ResultCache(_cache_dir(args))
    if args.cache_command == "purge":
        removed = cache.purge()
        print(f"purged {removed} entries from {cache.root}")
        return 0
    entries = list(cache.entries())
    if args.json:
        print(json.dumps([e.to_dict() for e in entries], indent=2, sort_keys=True))
        return 0
    for entry in entries:
        label = entry.label or entry.kind
        print(
            f"{entry.key[:16]}… {label:32s} code={entry.code_version} "
            f"{entry.size_bytes}B"
        )
    print(f"{len(entries)} entries under {cache.root}")
    return 0


def _add_sweep_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--kind", choices=["replay", "fault"], default="replay")
    parser.add_argument(
        "--policies", nargs="+", default=list(DEFAULT_POLICIES),
        help="routing policies to sweep (default: %(default)s)",
    )
    parser.add_argument(
        "--seeds", default="4",
        help="seed count (N -> 0..N-1) or explicit comma list (default: 4)",
    )
    parser.add_argument("--mesh-side", type=int, default=4)
    parser.add_argument("--repetitions", type=int, default=3)
    parser.add_argument("--ack-loss", type=float, default=0.1,
                        help="fault sweeps: ACK loss probability")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--timeout", type=float, default=None,
                        help="per-task wall-clock budget, seconds")
    parser.add_argument("--retries", type=int, default=3)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.parallel",
        description="Deterministic parallel sweeps with a content-addressed "
        "result cache (docs/parallel.md).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="execute a policy x seed sweep")
    _add_sweep_arguments(run_parser)
    run_parser.add_argument("--cache-dir", default=None,
                            help=f"result cache (default: {_DEFAULT_CACHE})")
    run_parser.add_argument("--no-cache", action="store_true")
    run_parser.add_argument("--profile", action="store_true",
                            help="cProfile each executed cell into the cache dir")
    run_parser.add_argument("--trace", action="store_true",
                            help="repro.obs-trace each executed cell into the "
                            "cache dir (<key>.trace.jsonl)")
    run_parser.add_argument("--resume", action="store_true",
                            help="crash-safe cells: write periodic checkpoints "
                            "to the cache dir and resume any left by an "
                            "interrupted sweep (docs/checkpoint.md)")
    run_parser.add_argument("--json", action="store_true")

    verify_parser = sub.add_parser(
        "verify", help="serial vs parallel bit-equivalence smoke (CI gate)"
    )
    _add_sweep_arguments(verify_parser)

    status_parser = sub.add_parser("status", help="print the last sweep manifest")
    status_parser.add_argument("--cache-dir", default=None)
    status_parser.add_argument("--json", action="store_true")

    cache_parser = sub.add_parser("cache", help="inspect or purge the cache")
    cache_parser.add_argument("cache_command", choices=["inspect", "purge"])
    cache_parser.add_argument("--cache-dir", default=None)
    cache_parser.add_argument("--json", action="store_true")
    return parser


_COMMANDS = {
    "run": _cmd_run,
    "verify": _cmd_verify,
    "status": _cmd_status,
    "cache": _cmd_cache,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
