"""Declarative simulation tasks and content-addressed task keys.

A sweep cell — one (policy, seed, scenario) simulation — is described by
a :class:`SimTask`: a registered *kind* plus a JSON-serializable params
dict.  Declarative specs (not callables) are what lets the orchestrator
ship tasks to spawn-context worker processes and key the on-disk result
cache: the cache key is a SHA-256 over the canonical JSON of
``(kind, params, code_version)``, so *any* field change (threshold,
topology size, fault schedule, seed) produces a different key, and any
change to the simulator's source invalidates every cached cell.

The code-version token is itself content-addressed: a SHA-256 over the
sorted source bytes of the ``repro`` package (overridable through the
``REPRO_CODE_VERSION`` environment variable or per-sweep config, which
is how tests pin it).
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping, Optional

__all__ = [
    "SimTask",
    "canonical_json",
    "code_version",
    "json_safe",
    "make_topology",
    "task_key",
]


# ----------------------------------------------------------------------
# Canonical serialization
# ----------------------------------------------------------------------
def json_safe(value: Any) -> Any:
    """Coerce numpy scalars/arrays and tuples into plain JSON types."""
    import numpy as np

    if isinstance(value, dict):
        return {str(k): json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_safe(v) for v in value]
    if isinstance(value, np.ndarray):
        return [json_safe(v) for v in value.tolist()]
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.bool_):
        return bool(value)
    return value


def canonical_json(obj: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace, exact floats."""
    return json.dumps(json_safe(obj), sort_keys=True, separators=(",", ":"))


# ----------------------------------------------------------------------
# Code-version token
# ----------------------------------------------------------------------
_code_version_cache: Optional[str] = None


def code_version() -> str:
    """Content hash of the ``repro`` package's source (16 hex chars).

    Cached per process; honours ``REPRO_CODE_VERSION`` so CI and tests
    can pin or bump the token without touching source files.
    """
    global _code_version_cache
    override = os.environ.get("REPRO_CODE_VERSION")
    if override:
        return override
    if _code_version_cache is None:
        import repro

        root = Path(repro.__file__).parent
        sha = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            if "__pycache__" in path.parts:
                continue
            sha.update(str(path.relative_to(root)).encode("utf-8"))
            sha.update(b"\0")
            sha.update(path.read_bytes())
        _code_version_cache = sha.hexdigest()[:16]
    return _code_version_cache


# ----------------------------------------------------------------------
# Tasks
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SimTask:
    """One sweep cell: a registered task kind plus its parameters.

    ``params`` must contain only JSON-basic values (numbers, strings,
    bools, None, lists, dicts) — that is what makes tasks shippable to
    spawn-context workers and hashable into cache keys.
    """

    kind: str
    params: dict = field(default_factory=dict)
    #: display label for progress lines and the failure ledger.
    label: str = ""

    def __post_init__(self) -> None:
        # Fail fast on non-serializable params: a spec that cannot round-
        # trip through JSON cannot be cached or sent to a worker.
        canonical_json(self.params)

    def display(self) -> str:
        return self.label or f"{self.kind}:{canonical_json(self.params)[:60]}"

    def to_dict(self) -> dict:
        return {"kind": self.kind, "params": json_safe(self.params), "label": self.label}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SimTask":
        return cls(
            kind=str(data["kind"]),
            params=dict(data.get("params", {})),
            label=str(data.get("label", "")),
        )


def task_key(task: SimTask, version: Optional[str] = None) -> str:
    """Content-addressed cache key of ``task`` under a code version."""
    payload = canonical_json(
        {
            "kind": task.kind,
            "params": task.params,
            "code_version": version if version is not None else code_version(),
        }
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Topology specs
# ----------------------------------------------------------------------
def _mesh(args: list):
    from repro.topology.mesh import Mesh2D

    return Mesh2D(int(args[0]))


def _torus(args: list):
    from repro.topology.mesh import Torus2D

    return Torus2D(int(args[0]))


def _fattree(args: list):
    from repro.topology.fattree import KaryNTree

    return KaryNTree(int(args[0]), int(args[1]))


def _slimtree(args: list):
    from repro.topology.slimtree import SlimmedKaryNTree

    return SlimmedKaryNTree(int(args[0]), int(args[1]), float(args[2]))


def _hypercube(args: list):
    from repro.topology.hypercube import Hypercube

    return Hypercube(int(args[0]))


def _dragonfly(args: list):
    from repro.topology.dragonfly import Dragonfly

    if len(args) != 3:
        raise ValueError(
            f"dragonfly takes exactly 3 arguments a,p,h (got {len(args)})"
        )
    a, p, h = args
    if not all(isinstance(v, int) for v in (a, p, h)):
        raise ValueError(f"dragonfly arguments must be integers (got {args!r})")
    return Dragonfly(a, p, h)


_TOPOLOGY_BUILDERS: dict[str, Callable[[list], Any]] = {
    "mesh": _mesh,
    "torus": _torus,
    "fattree": _fattree,
    "slimtree": _slimtree,
    "hypercube": _hypercube,
    "dragonfly": _dragonfly,
}


def _coerce_arg(text: str):
    """``"4"`` -> int 4, ``"0.5"`` -> float 0.5.

    Spec arguments used to be coerced through ``float`` wholesale, which
    silently turned integer builder params (k, n, dims) into floats;
    builders that validate types (dragonfly) need the distinction kept.
    """
    try:
        return int(text)
    except ValueError:
        return float(text)


def make_topology(spec: str):
    """Build a topology from a declarative spec string.

    Specs: ``mesh:8``, ``torus:8``, ``fattree:4,3``, ``slimtree:4,3,0.5``,
    ``hypercube:6``, ``dragonfly:4,2,2``.  Each call returns a fresh
    instance (factory semantics), so a spec can replace the
    ``topology_factory`` callables used throughout
    :mod:`repro.experiments`.  The instance comes with its route cache
    pre-enabled (see ``Topology.enable_route_cache``): workers answer the
    same minimal-route queries for every packet of a cell.
    """
    name, _, arg_text = spec.partition(":")
    builder = _TOPOLOGY_BUILDERS.get(name.strip())
    if builder is None:
        raise ValueError(
            f"unknown topology spec {spec!r}; expected one of "
            f"{sorted(_TOPOLOGY_BUILDERS)} with ':'-separated arguments"
        )
    try:
        args = [_coerce_arg(part.strip()) for part in arg_text.split(",") if part.strip()]
        topology = builder(args)
    except (ValueError, IndexError, TypeError) as exc:
        raise ValueError(f"bad topology spec {spec!r}: {exc}") from exc
    topology.enable_route_cache()
    return topology
