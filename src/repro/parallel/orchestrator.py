"""Process-pool sweep orchestrator with supervision and result caching.

Fans independent :class:`~repro.parallel.tasks.SimTask` cells out to a
``spawn``-context :class:`~concurrent.futures.ProcessPoolExecutor`.
Because every task kind is hermetic (own Simulator, own seeded
RandomStreams — see :mod:`repro.parallel.worker`), a parallel sweep's
per-cell results are bit-identical to the serial ones; scheduling order
across workers cannot leak into any cell.

Supervision (vocabulary follows :mod:`repro.faults`): per-task timeout,
bounded retry with capped exponential backoff, crash isolation (a worker
dying with ``os._exit`` / a signal breaks the pool; the pool is rebuilt
and unfinished cells are requeued), and a structured *failure ledger*
recording every failure event — transient or final — with its reason.

Wall-clock readings in this module are confined to the supervision layer
(timeouts, backoff, throughput reporting); they never feed a simulation,
which is why the explicit ``# repro: allow(no-wall-clock)`` suppressions
below are sound.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.parallel.cache import ResultCache
from repro.parallel.tasks import SimTask, code_version, task_key
from repro.parallel.worker import execute_task, pool_worker

__all__ = [
    "FailureRecord",
    "SweepConfig",
    "SweepExecutor",
    "SweepReport",
    "TaskOutcome",
    "default_executor",
    "run_sweep",
]

ProgressHook = Callable[[dict], None]


@dataclass(frozen=True)
class SweepConfig:
    """Everything that governs one sweep's execution (not its results)."""

    #: worker processes; <= 1 executes inline (no pool, no crash isolation).
    workers: int = 1
    #: per-task wall-clock budget; None disables (inline mode ignores it).
    timeout_s: Optional[float] = None
    #: retry budget per cell *beyond* the first attempt.
    max_retries: int = 3
    #: first retry delay; doubles per attempt, capped below.
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    #: cache directory; None disables caching entirely.
    cache_dir: Optional[str] = None
    #: cProfile each executed cell into the cache directory.
    profile: bool = False
    #: repro.obs-trace each executed cell into the cache directory
    #: (``<key>.trace.jsonl`` next to the entry); needs ``cache_dir``.
    trace: bool = False
    #: crash-safe cells (docs/checkpoint.md): replay/fault cells write
    #: periodic checkpoints to ``<key>.ckpt`` in the cache directory and
    #: resume from any valid checkpoint left by an interrupted sweep.
    #: Needs ``cache_dir``; profiling/tracing cells stay one-shot.
    resume: bool = False
    #: pin the code-version token (None = content hash of the package).
    code_version: Optional[str] = None

    def resolved_version(self) -> str:
        return self.code_version if self.code_version is not None else code_version()


@dataclass(frozen=True)
class FailureRecord:
    """One failure event (a cell may produce several before succeeding)."""

    key: str
    kind: str
    label: str
    attempt: int
    reason: str  # "error" | "worker-crash" | "timeout" | "checkpointed"
    error: str
    final: bool

    def to_dict(self) -> dict:
        return {
            "key": self.key,
            "kind": self.kind,
            "label": self.label,
            "attempt": self.attempt,
            "reason": self.reason,
            "error": self.error,
            "final": self.final,
        }


@dataclass
class TaskOutcome:
    """Terminal state of one unique cell."""

    task: SimTask
    key: str
    status: str  # "ok" | "cached" | "failed"
    attempts: int
    result: Optional[dict]
    error: Optional[str] = None
    wall_s: float = 0.0

    def to_dict(self) -> dict:
        return {
            "task": self.task.to_dict(),
            "key": self.key,
            "status": self.status,
            "attempts": self.attempts,
            "error": self.error,
            "wall_s": self.wall_s,
        }


@dataclass
class SweepReport:
    """Everything a sweep produced, in submission order."""

    outcomes: list[TaskOutcome]
    #: input-task index -> outcome index (duplicate specs share a cell).
    index_of: list[int]
    failures: list[FailureRecord]
    wall_s: float
    executed: int
    cache_hits: int
    workers: int
    code_version: str
    #: cells that picked up a checkpoint left by an interrupted run.
    resumed: int = 0

    @property
    def results(self) -> list[Optional[dict]]:
        """Per input task (submission order); None for failed cells."""
        return [self.outcomes[i].result for i in self.index_of]

    @property
    def all_ok(self) -> bool:
        return all(o.status != "failed" for o in self.outcomes)

    @property
    def failed(self) -> list[TaskOutcome]:
        return [o for o in self.outcomes if o.status == "failed"]

    def to_dict(self) -> dict:
        return {
            "outcomes": [o.to_dict() for o in self.outcomes],
            "index_of": list(self.index_of),
            "failures": [f.to_dict() for f in self.failures],
            "wall_s": self.wall_s,
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "workers": self.workers,
            "code_version": self.code_version,
            "resumed": self.resumed,
            "all_ok": self.all_ok,
        }


@dataclass
class _Cell:
    """Book-keeping for one unique task while the sweep runs."""

    task: SimTask
    key: str
    attempts: int = 0
    not_before: float = 0.0
    started: float = 0.0


def _emit(progress: Optional[ProgressHook], payload: dict) -> None:
    if progress is not None:
        progress(payload)


def _backoff(config: SweepConfig, attempt: int) -> float:
    return min(config.backoff_base_s * (2 ** max(attempt - 1, 0)), config.backoff_cap_s)


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Hard-stop a pool: terminate workers, drop queued work."""
    processes = list(getattr(pool, "_processes", {}).values())
    for proc in processes:
        try:
            proc.terminate()
        except (OSError, ValueError):  # pragma: no cover - already dead
            pass
    pool.shutdown(wait=False, cancel_futures=True)


def run_sweep(
    tasks: Sequence[SimTask],
    config: Optional[SweepConfig] = None,
    progress: Optional[ProgressHook] = None,
    metrics_hook: Optional[Callable[[dict], None]] = None,
    metrics_cadence_s: Optional[float] = None,
) -> SweepReport:
    """Execute ``tasks``, deduplicated by cache key, with supervision.

    Returns a :class:`SweepReport`; never raises for task failures — they
    land in ``report.failures`` / ``report.failed`` so one poisoned cell
    cannot take down the rest of the sweep.

    ``metrics_hook`` receives live per-cell telemetry: each cadence
    snapshot a cell's :class:`~repro.obs.metrics.MetricsRegistry` takes
    is wrapped as ``{"key", "label", "snapshot"}`` and handed to the hook
    as it happens (``repro.serve`` streams these over SSE).  Hooks are
    callables and cannot cross the pickle boundary, so only the inline
    backend (``workers <= 1``) publishes them; pooled sweeps stream
    progress events only.  Attaching a hook never changes cell results —
    the registry rides the simulator observer list.
    """
    config = config or SweepConfig()
    version = config.resolved_version()
    cache = ResultCache(config.cache_dir) if config.cache_dir else None

    # Deduplicate by content-addressed key, preserving first appearance.
    cells: list[_Cell] = []
    index_of: list[int] = []
    by_key: dict[str, int] = {}
    for task in tasks:
        key = task_key(task, version)
        if key not in by_key:
            by_key[key] = len(cells)
            cells.append(_Cell(task=task, key=key))
        index_of.append(by_key[key])

    outcomes: dict[str, TaskOutcome] = {}
    failures: list[FailureRecord] = []
    start = time.monotonic()  # repro: allow(no-wall-clock)

    # Cache pass: anything already computed under this code version is
    # answered without running a single simulation.
    pending: list[_Cell] = []
    for cell in cells:
        cached = cache.get(cell.key) if cache is not None else None
        if cached is not None:
            outcomes[cell.key] = TaskOutcome(
                task=cell.task, key=cell.key, status="cached",
                attempts=0, result=cached,
            )
            _emit(progress, {
                "event": "cached", "key": cell.key, "label": cell.task.display(),
                "completed": len(outcomes), "total": len(cells),
            })
        else:
            pending.append(cell)

    def profile_path(cell: _Cell) -> Optional[str]:
        if not config.profile or cache is None:
            return None
        path = cache.profile_path_for(cell.key)
        path.parent.mkdir(parents=True, exist_ok=True)
        return str(path)

    def trace_path(cell: _Cell) -> Optional[str]:
        if not config.trace or cache is None:
            return None
        path = cache.trace_path_for(cell.key)
        path.parent.mkdir(parents=True, exist_ok=True)
        return str(path)

    resumed_keys: set[str] = set()

    def checkpoint_path(cell: _Cell) -> Optional[str]:
        if not config.resume or cache is None:
            return None
        path = cache.checkpoint_path_for(cell.key)
        path.parent.mkdir(parents=True, exist_ok=True)
        if path.exists():
            # An interrupted sweep parked progress here; the worker will
            # splice onto it instead of starting over.
            resumed_keys.add(cell.key)
        return str(path)

    def has_checkpoint(cell: _Cell) -> bool:
        """True when a crashed/killed cell left progress worth resuming."""
        return (
            config.resume
            and cache is not None
            and cache.checkpoint_path_for(cell.key).exists()
        )

    def record_success(cell: _Cell, result: dict, wall_s: float) -> None:
        if cache is not None:
            cache.put(cell.key, cell.task, version, result)
        outcomes[cell.key] = TaskOutcome(
            task=cell.task, key=cell.key, status="ok",
            attempts=cell.attempts, result=result, wall_s=wall_s,
        )
        elapsed = time.monotonic() - start  # repro: allow(no-wall-clock)
        _emit(progress, {
            "event": "done", "key": cell.key, "label": cell.task.display(),
            "completed": len(outcomes), "total": len(cells),
            "wall_s": wall_s, "elapsed_s": elapsed,
            "rate": len(outcomes) / elapsed if elapsed > 0 else 0.0,
        })

    def record_failure(cell: _Cell, reason: str, error: str) -> bool:
        """Ledger the failure; True when the cell may still retry."""
        retriable = cell.attempts <= config.max_retries
        failures.append(FailureRecord(
            key=cell.key, kind=cell.task.kind, label=cell.task.display(),
            attempt=cell.attempts, reason=reason, error=error,
            final=not retriable,
        ))
        if not retriable:
            outcomes[cell.key] = TaskOutcome(
                task=cell.task, key=cell.key, status="failed",
                attempts=cell.attempts, result=None, error=error,
            )
        _emit(progress, {
            "event": "retry" if retriable else "failed",
            "key": cell.key, "label": cell.task.display(), "reason": reason,
            "attempt": cell.attempts, "completed": len(outcomes),
            "total": len(cells),
        })
        return retriable

    if config.workers <= 1:
        _run_inline(
            pending, config, profile_path, trace_path, checkpoint_path,
            record_success, record_failure,
            metrics_hook=metrics_hook, metrics_cadence_s=metrics_cadence_s,
        )
    else:
        _run_pooled(
            pending, config, profile_path, trace_path, checkpoint_path,
            record_success, record_failure, has_checkpoint,
        )

    wall_s = time.monotonic() - start  # repro: allow(no-wall-clock)
    report = SweepReport(
        outcomes=[outcomes[cell.key] for cell in cells],
        index_of=index_of,
        failures=failures,
        wall_s=wall_s,
        executed=sum(1 for o in outcomes.values() if o.status == "ok"),
        cache_hits=sum(1 for o in outcomes.values() if o.status == "cached"),
        workers=config.workers,
        code_version=version,
        resumed=len(resumed_keys),
    )
    if cache is not None:
        manifest = report.to_dict()
        manifest["cache_stats"] = cache.stats.to_dict()
        # Results live in the per-key entries; the manifest is the sweep's
        # status ledger, so keep it light.
        for outcome in manifest["outcomes"]:
            outcome.pop("result", None)
        cache.write_manifest(manifest)
    return report


def _run_inline(
    pending, config, profile_path, trace_path, checkpoint_path,
    record_success, record_failure,
    metrics_hook=None, metrics_cadence_s=None,
) -> None:
    """Serial backend: same semantics minus crash isolation/timeouts."""

    def cell_hook(cell):
        if metrics_hook is None:
            return None
        key, label = cell.key, cell.task.display()

        def on_snapshot(snap: dict) -> None:
            metrics_hook({"key": key, "label": label, "snapshot": snap})

        return on_snapshot

    queue = list(pending)
    while queue:
        cell = queue.pop(0)
        cell.attempts += 1
        t0 = time.monotonic()  # repro: allow(no-wall-clock)
        try:
            result = execute_task(
                cell.task,
                profile_path=profile_path(cell),
                trace_path=trace_path(cell),
                checkpoint_path=checkpoint_path(cell),
                metrics_hook=cell_hook(cell),
                metrics_cadence_s=metrics_cadence_s,
            )
        except Exception as exc:  # noqa: BLE001 - ledgered, not swallowed
            if record_failure(cell, "error", f"{type(exc).__name__}: {exc}"):
                queue.append(cell)
            continue
        wall = time.monotonic() - t0  # repro: allow(no-wall-clock)
        record_success(cell, result, wall)


def _run_pooled(
    pending, config, profile_path, trace_path, checkpoint_path,
    record_success, record_failure, has_checkpoint,
) -> None:
    """Process-pool backend with timeout / crash supervision."""
    import multiprocessing

    ctx = multiprocessing.get_context("spawn")

    def new_pool() -> ProcessPoolExecutor:
        return ProcessPoolExecutor(max_workers=config.workers, mp_context=ctx)

    pool = new_pool()
    queue: list[_Cell] = list(pending)
    in_flight: dict[Future, _Cell] = {}
    try:
        while queue or in_flight:
            now = time.monotonic()  # repro: allow(no-wall-clock)
            # Submit every ready cell; the pool queues beyond #workers.
            still_waiting: list[_Cell] = []
            for cell in queue:
                if cell.not_before <= now:
                    cell.attempts += 1
                    cell.started = now
                    future = pool.submit(
                        pool_worker, cell.task.to_dict(),
                        profile_path(cell), trace_path(cell),
                        checkpoint_path(cell),
                    )
                    in_flight[future] = cell
                else:
                    still_waiting.append(cell)
            queue = still_waiting

            if not in_flight:
                # Only backed-off retries remain; sleep until the nearest.
                delay = max(min(c.not_before for c in queue) - now, 0.0)
                time.sleep(min(delay + 1e-3, 0.25))
                continue

            done, _ = wait(set(in_flight), timeout=0.05, return_when=FIRST_COMPLETED)

            broken = False
            for future in done:
                cell = in_flight.pop(future)
                try:
                    result = future.result()
                except BrokenProcessPool:
                    broken = True
                    # A SIGTERM'd resumable worker parks a final snapshot
                    # before exiting; a checkpoint on disk turns the crash
                    # into a "checkpointed" disposition — the retry splices
                    # onto the saved progress instead of starting over.
                    if has_checkpoint(cell):
                        reason = "checkpointed"
                        detail = "worker exited leaving a resumable checkpoint"
                    else:
                        reason = "worker-crash"
                        detail = "worker process died"
                    if record_failure(cell, reason, detail):
                        cell.not_before = 0.0
                        queue.append(cell)
                except Exception as exc:  # noqa: BLE001 - ledgered
                    if record_failure(cell, "error", f"{type(exc).__name__}: {exc}"):
                        now = time.monotonic()  # repro: allow(no-wall-clock)
                        cell.not_before = now + _backoff(config, cell.attempts)
                        queue.append(cell)
                else:
                    wall = time.monotonic() - cell.started  # repro: allow(no-wall-clock)
                    record_success(cell, result, wall)

            # Per-task timeout: kill the pool (there is no per-future
            # cancel for a running worker) and requeue the survivors.
            timed_out: list[_Cell] = []
            if config.timeout_s is not None and in_flight and not broken:
                now = time.monotonic()  # repro: allow(no-wall-clock)
                timed_out = [
                    cell for cell in in_flight.values()
                    if now - cell.started > config.timeout_s
                ]
            if broken or timed_out:
                timed_out_ids = [id(cell) for cell in timed_out]
                survivors = [
                    cell for cell in in_flight.values()
                    if id(cell) not in timed_out_ids
                ]
                in_flight.clear()
                _kill_pool(pool)
                pool = new_pool()
                for cell in timed_out:
                    if record_failure(
                        cell, "timeout",
                        f"exceeded {config.timeout_s}s wall-clock budget",
                    ):
                        cell.not_before = 0.0
                        queue.append(cell)
                for cell in survivors:
                    # Collateral of the recycle (crash or timeout kill):
                    # their attempt is charged (we cannot prove innocence
                    # after a crash), but they requeue immediately.  A
                    # periodic checkpoint, if one landed, downgrades the
                    # restart to a resume.
                    if has_checkpoint(cell):
                        reason = "checkpointed"
                        detail = "pool recycled mid-task; checkpoint on disk"
                    else:
                        reason = "worker-crash"
                        detail = "pool recycled mid-task"
                    if record_failure(cell, reason, detail):
                        cell.not_before = 0.0
                        queue.append(cell)
    finally:
        pool.shutdown(wait=False, cancel_futures=True)


# ----------------------------------------------------------------------
# Executor facade (what experiments/faults integrate against)
# ----------------------------------------------------------------------
@dataclass
class SweepExecutor:
    """A reusable sweep runner bound to one :class:`SweepConfig`."""

    config: SweepConfig = field(default_factory=SweepConfig)
    progress: Optional[ProgressHook] = None

    def run(self, tasks: Sequence[SimTask]) -> SweepReport:
        return run_sweep(tasks, self.config, progress=self.progress)

    def run_strict(self, tasks: Sequence[SimTask]) -> list[dict]:
        """Results in task order; raises if any cell finally failed."""
        report = self.run(tasks)
        if not report.all_ok:
            summary = "; ".join(
                f"{o.task.display()}: {o.error}" for o in report.failed[:5]
            )
            raise RuntimeError(
                f"{len(report.failed)} sweep cell(s) failed after retries: {summary}"
            )
        return [r for r in report.results if r is not None]


def default_executor() -> Optional[SweepExecutor]:
    """Executor configured from the environment, or None (serial).

    ``REPRO_PARALLEL_WORKERS`` (int >= 2) turns on process-pool execution
    for every integrated surface (experiment scenarios, fault campaigns,
    benchmarks); ``REPRO_CACHE_DIR`` adds the on-disk result cache.  The
    worker count is clamped to ``os.cpu_count()``: oversubscribing a small
    box only adds scheduler churn to CPU-bound simulation cells.
    """
    try:
        workers = int(os.environ.get("REPRO_PARALLEL_WORKERS", "0"))
    except ValueError:
        return None
    if workers < 2:
        return None
    cpu_count = os.cpu_count()
    if cpu_count is not None and workers > cpu_count:
        workers = max(2, cpu_count)
    return SweepExecutor(
        config=SweepConfig(
            workers=workers, cache_dir=os.environ.get("REPRO_CACHE_DIR")
        )
    )
