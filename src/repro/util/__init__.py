"""Shared low-level utilities (no simulation semantics).

:mod:`repro.util.io` — crash-safe file I/O: atomic replace writes,
checksum helpers, and an advisory file lock.  Used by the result cache,
the checkpoint format, and every manifest/baseline writer so that a
mid-write kill can never leave a loadable-but-corrupt artifact behind.
"""
