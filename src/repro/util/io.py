"""Crash-safe file I/O primitives shared across the repo.

Three concerns, one module:

* **Atomic writes** — :func:`atomic_write_bytes` / :func:`atomic_write_text`
  write to a same-directory temporary file and ``os.replace`` it into
  place.  On POSIX the rename is atomic, so readers observe either the
  old content or the complete new content — never a torn write.  A
  process killed mid-write leaves at most a stale ``*.tmp`` file.
* **Checksums** — :func:`sha256_hex` over bytes/str, used by the result
  cache's payload checksums and the checkpoint envelope.
* **Advisory locking** — :class:`FileLock`, a blocking ``fcntl.flock``
  wrapper guarding read-modify-write cycles on shared files (two sweep
  orchestrators sharing one ``REPRO_CACHE_DIR`` race on the manifest
  without it).  Advisory only: every writer must take the lock; readers
  that skip it still see a consistent file thanks to the atomic replace.
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path
from typing import Union

__all__ = [
    "FileLock",
    "atomic_write_bytes",
    "atomic_write_text",
    "sha256_hex",
]

try:  # pragma: no cover - always present on the POSIX targets we support
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback (locking off)
    fcntl = None  # type: ignore[assignment]


def sha256_hex(payload: Union[bytes, str]) -> str:
    """Hex SHA-256 of ``payload`` (str is encoded as UTF-8)."""
    if isinstance(payload, str):
        payload = payload.encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


def atomic_write_bytes(path: Union[str, Path], payload: bytes) -> None:
    """Write ``payload`` to ``path`` atomically (tmp file + ``os.replace``).

    The temporary file lives next to the target so the replace never
    crosses filesystems.  Parent directories are created as needed.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    tmp = target.with_name(target.name + f".tmp.{os.getpid()}")
    try:
        with open(tmp, "wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, target)
    finally:
        if tmp.exists():  # replace failed or write raised
            try:
                tmp.unlink()
            except OSError:  # pragma: no cover - best-effort cleanup
                pass


def atomic_write_text(
    path: Union[str, Path], text: str, encoding: str = "utf-8"
) -> None:
    """Atomic text variant of :func:`atomic_write_bytes`."""
    atomic_write_bytes(path, text.encode(encoding))


class FileLock:
    """Blocking advisory lock on ``path`` (``with FileLock(p): ...``).

    Implemented with ``fcntl.flock`` on a sibling ``<name>.lock`` file so
    the guarded file itself can be atomically replaced while the lock is
    held.  Re-entrant use within one process is not supported (and not
    needed here).  On platforms without ``fcntl`` the lock degrades to a
    no-op — single-writer behavior is unchanged, concurrent writers are
    unprotected there.
    """

    def __init__(self, path: Union[str, Path]):
        target = Path(path)
        self.lock_path = target.with_name(target.name + ".lock")
        self._handle = None

    def acquire(self) -> "FileLock":
        if fcntl is None:  # pragma: no cover - non-POSIX
            return self
        self.lock_path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.lock_path, "a+")
        fcntl.flock(self._handle.fileno(), fcntl.LOCK_EX)
        return self

    def release(self) -> None:
        if self._handle is None:
            return
        try:
            if fcntl is not None:
                fcntl.flock(self._handle.fileno(), fcntl.LOCK_UN)
        finally:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "FileLock":
        return self.acquire()

    def __exit__(self, *exc_info) -> None:
        self.release()
