"""Simulation parameter sets (Tables 4.2 and 4.3).

:class:`NetworkConfig` carries every tunable the paper reports: link
bandwidth 2 Gbps, 2 MB router buffers, 1024-byte packets, virtual
cut-through flow control, plus engine-level delays that OPNET models
implicitly (routing decision time, link propagation).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class NetworkConfig:
    """All physical/protocol parameters of a simulated network."""

    #: link bandwidth in bits per second (paper: 2 Gbps).
    link_bandwidth_bps: float = 2e9
    #: data packet payload+header size in bytes (paper: 1024 B).
    packet_size_bytes: int = 1024
    #: router buffer capacity per output port in bytes (paper: 2 MB).
    buffer_size_bytes: int = 2 * 1024 * 1024
    #: ACK / notification packet size in bytes (small control packet).
    ack_size_bytes: int = 64
    #: fixed routing-decision delay per router, seconds.
    routing_delay_s: float = 50e-9
    #: link propagation delay, seconds.
    link_delay_s: float = 20e-9
    #: NIC injection bandwidth (defaults to link bandwidth).
    injection_bandwidth_bps: float | None = None
    #: queue-latency threshold above which a router's CFD module records
    #: contending flows (§3.3.2); seconds.
    router_threshold_s: float = 4e-6
    #: maximum number of contending flows carried by a predictive header.
    max_contending_flows: int = 8
    #: minimum fraction of queued bytes a flow must hold to be reported as
    #: contending (§3.2.7: only the flows "which contribute most to
    #: congestion" are notified; background noise stays out of signatures).
    cfd_min_share: float = 0.12
    #: generate an ACK per received data packet (needed by DRB family).
    send_acks: bool = True
    #: buffer flow control (§2.1.3): "none" accepts everything and only
    #: counts logical overflows; "onoff" stalls a packet upstream until
    #: the full output buffer drains (On/Off backpressure).
    flow_control: str = "none"
    #: switching pipeline (§2.1.2): False = store-and-forward timing (a
    #: packet fully serializes at every hop — the conservative model all
    #: paper experiments use); True = virtual cut-through (the header is
    #: handed to the next hop after ``cut_through_header_bytes`` while the
    #: body still occupies the link, so uncongested hops pipeline).
    cut_through: bool = False
    #: header size driving the cut-through handoff delay.
    cut_through_header_bytes: int = 16
    #: virtual channels per output port (§2.1.2, §3.2.8).  1 = plain FIFO
    #: link service (default, used by all paper experiments); >= 2 turns
    #: on round-robin VC arbitration so flows sharing a port cannot
    #: head-of-line-block each other.
    virtual_channels: int = 1

    _FLOW_CONTROLS = ("none", "onoff")

    def __post_init__(self) -> None:
        if self.injection_bandwidth_bps is None:
            self.injection_bandwidth_bps = self.link_bandwidth_bps
        if self.link_bandwidth_bps <= 0:
            raise ValueError("link bandwidth must be positive")
        if self.packet_size_bytes <= 0:
            raise ValueError("packet size must be positive")
        if self.flow_control not in self._FLOW_CONTROLS:
            raise ValueError(
                f"flow_control must be one of {self._FLOW_CONTROLS}, "
                f"got {self.flow_control!r}"
            )
        if self.virtual_channels < 1:
            raise ValueError("virtual_channels must be >= 1")
        # Serialization-time memo: the hot path asks for the same handful
        # of sizes (packet, ACK, final fragment) millions of times.  Each
        # cached value is computed by the exact ``size * 8 / bandwidth``
        # expression below, so memoization cannot shift float rounding.
        # Non-field attributes: invisible to dataclass eq/repr.
        self._tx_cache: dict[int, float] = {}
        self._packet_tx_s: float = (
            self.packet_size_bytes * 8 / self.link_bandwidth_bps
        )
        self._ack_tx_s: float = self.ack_size_bytes * 8 / self.link_bandwidth_bps

    # ------------------------------------------------------------------
    @property
    def packet_tx_time_s(self) -> float:
        """Serialization time of a data packet on one link."""
        return self._packet_tx_s

    @property
    def ack_tx_time_s(self) -> float:
        """Serialization time of an ACK packet on one link."""
        return self._ack_tx_s

    def tx_time_s(self, size_bytes: int) -> float:
        """Serialization time of ``size_bytes`` on one link (memoized)."""
        cached = self._tx_cache.get(size_bytes)
        if cached is None:
            cached = self._tx_cache[size_bytes] = (
                size_bytes * 8 / self.link_bandwidth_bps
            )
        return cached


@dataclass
class ReliabilityConfig:
    """End-to-end recovery parameters (NIC retransmission protocol).

    The paper's fabric is lossless under congestion but loses packets to
    link faults (§3.3.2); this protocol restores delivery: per-flow
    sequence numbers, a retransmission timer with capped exponential
    backoff, and destination-side duplicate suppression.
    """

    #: base retransmission timeout, seconds.  Should exceed one data
    #: round-trip (path serialization + ACK return) on the target network.
    retx_timeout_s: float = 60e-6
    #: multiplicative backoff applied per retry.
    backoff_factor: float = 2.0
    #: ceiling on the (backed-off) retransmission timeout, seconds.
    max_backoff_s: float = 1e-3
    #: retransmission attempts before the transport gives up on a packet.
    max_retries: int = 4

    def __post_init__(self) -> None:
        if self.retx_timeout_s <= 0:
            raise ValueError("retx_timeout_s must be positive")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.max_backoff_s < self.retx_timeout_s:
            raise ValueError("max_backoff_s must be >= retx_timeout_s")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")

    def timeout_for(self, retries: int) -> float:
        """Backed-off timeout for a packet already retried ``retries`` times."""
        return min(
            self.retx_timeout_s * self.backoff_factor**retries,
            self.max_backoff_s,
        )


def paper_mesh_config() -> NetworkConfig:
    """Table 4.2 parameters (hot-spot experiments on the 8x8 mesh)."""
    return NetworkConfig()


def paper_fattree_config() -> NetworkConfig:
    """Table 4.3 parameters (permutation traffic on the 4-ary tree)."""
    return NetworkConfig()
