"""Network component models (§3.3, §4.1).

Packet formats (data / ACK / predictive header), the PR-DRB router with its
LU / HDP / CFD / GPA modules, processing-node endpoints, and the
:class:`~repro.network.fabric.Fabric` that wires a topology, routers and
nodes into a runnable simulation.
"""

from repro.network.config import NetworkConfig
from repro.network.packet import (
    ACK,
    DATA,
    PREDICTIVE_ACK,
    ContendingFlow,
    Packet,
)
from repro.network.router import Router, OutputPort
from repro.network.nic import ProcessingNode
from repro.network.fabric import Fabric

__all__ = [
    "NetworkConfig",
    "Packet",
    "ContendingFlow",
    "DATA",
    "ACK",
    "PREDICTIVE_ACK",
    "Router",
    "OutputPort",
    "ProcessingNode",
    "Fabric",
]
