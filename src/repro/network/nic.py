"""Processing-node (terminal) model (§4.1.1, Figs 4.1-4.4).

A :class:`ProcessingNode` is the source/sink endpoint attached to a router:

* the *source* side serializes packets onto its injection link (the
  source-node FSM: generate -> enqueue -> transmit when the link frees);
* the *sink* side receives packets, reassembles fragmented messages by
  ``(src, mpi_seq)`` and hands completed messages to a consumer callback
  (the destination FSM's analyze/consume states).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, ClassVar, Optional

from repro.checkpoint.state import Snapshottable
from repro.network.config import NetworkConfig
from repro.network.packet import DATA, Packet


@dataclass(slots=True)
class _Reassembly(Snapshottable):
    _snapshot_fields_: ClassVar[tuple[str, ...]] = (
        "received",
        "expected",
        "bytes",
        "first_created_at",
    )

    received: int = 0
    expected: int = -1  # unknown until the final packet arrives
    bytes: int = 0
    first_created_at: float = float("inf")


class ProcessingNode(Snapshottable):
    """Host endpoint: injection link + message reassembly."""

    _snapshot_fields_: ClassVar[tuple[str, ...]] = (
        "host_id",
        "config",
        "injection_busy_until",
        "packets_injected",
        "bytes_injected",
        "packets_received",
        "bytes_received",
        "message_handler",
        "_assembly",
        "_accepted_seqs",
        "_inj_tx_cache",
    )
    _snapshot_exclude_: ClassVar[tuple[str, ...]] = ("tracer",)

    def __init__(self, host_id: int, config: NetworkConfig) -> None:
        self.host_id = host_id
        self.config = config
        #: absolute time at which the injection link becomes free.
        self.injection_busy_until: float = 0.0
        #: packets/bytes offered to the network by this host.
        self.packets_injected = 0
        self.bytes_injected = 0
        #: packets/bytes received by this host (data only).
        self.packets_received = 0
        self.bytes_received = 0
        #: message consumer: fn(src, mpi_type, mpi_seq, size_bytes, now).
        self.message_handler: Optional[Callable[[int, int, int, int, float], None]] = None
        self._assembly: dict[tuple[int, int], _Reassembly] = {}
        #: per-source reliable-transport sequence numbers already accepted
        #: (duplicate suppression for retransmitted packets).
        self._accepted_seqs: dict[int, set[int]] = {}
        #: injection serialization-time memo keyed by packet size; each
        #: entry is computed by the exact expression in :meth:`serialize`,
        #: so the cache cannot shift float rounding.
        self._inj_tx_cache: dict[int, float] = {}
        #: optional :class:`repro.obs.tracer.Tracer` (message completions).
        self.tracer = None

    # ------------------------------------------------------------------
    # Reliable-transport duplicate suppression
    # ------------------------------------------------------------------
    def first_delivery(self, src: int, retx_seq: int) -> bool:
        """Record a transport-tracked arrival; False for duplicate copies.

        Only meaningful for packets carrying a sequence number
        (``retx_seq >= 0``); untracked best-effort traffic always counts
        as a first delivery.
        """
        if retx_seq < 0:
            return True
        seen = self._accepted_seqs.setdefault(src, set())
        if retx_seq in seen:
            return False
        seen.add(retx_seq)
        return True

    # ------------------------------------------------------------------
    # Source side
    # ------------------------------------------------------------------
    def serialize(self, packet: Packet, now: float) -> float:
        """Occupy the injection link; return the packet's wire-exit time."""
        size = packet.size_bytes
        tx = self._inj_tx_cache.get(size)
        if tx is None:
            tx = self._inj_tx_cache[size] = (
                size * 8 / self.config.injection_bandwidth_bps
            )
        busy = self.injection_busy_until
        start = busy if busy > now else now
        exit_time = start + tx
        self.injection_busy_until = exit_time
        self.packets_injected += 1
        self.bytes_injected += size
        return exit_time

    # ------------------------------------------------------------------
    # Sink side
    # ------------------------------------------------------------------
    def receive(self, packet: Packet, now: float) -> None:
        """Account a delivered packet; fire the handler on full messages."""
        if packet.kind != DATA:
            return
        self.packets_received += 1
        self.bytes_received += packet.size_bytes
        if packet.mpi_seq < 0:
            # Raw (synthetic) traffic: every packet is its own message.
            if self.message_handler is not None:
                self.message_handler(
                    packet.src, packet.mpi_type, packet.mpi_seq, packet.size_bytes, now
                )
            return
        key = (packet.src, packet.mpi_seq)
        state = self._assembly.setdefault(key, _Reassembly())
        state.received += 1
        state.bytes += packet.size_bytes
        state.first_created_at = min(state.first_created_at, packet.created_at)
        state.expected = packet.fragments
        if state.received >= state.expected:
            del self._assembly[key]
            if self.tracer is not None:
                self.tracer.emit(
                    now,
                    "msg.complete",
                    ("nic", self.host_id),
                    args={
                        "src": packet.src,
                        "mpi_seq": packet.mpi_seq,
                        "bytes": state.bytes,
                        "fragments": state.expected,
                        "latency_s": now - state.first_created_at,
                    },
                )
            if self.message_handler is not None:
                self.message_handler(
                    packet.src, packet.mpi_type, packet.mpi_seq, state.bytes, now
                )

    @property
    def pending_messages(self) -> int:
        """Messages currently mid-reassembly."""
        return len(self._assembly)
