"""The fabric: topology + routers + processing nodes + routing policy.

:class:`Fabric` is the top-level simulation object.  It owns one
:class:`~repro.network.router.Router` per topology router, one
:class:`~repro.network.nic.ProcessingNode` per host, and a routing policy.
Its event chain implements the paper's standard packet-delivery process
(Fig. 3.3): source injection -> per-router forwarding (Fig. 3.5 monitoring)
-> destination delivery -> ACK notification back to the source -> policy
learning (metapath configuration, Fig. 3.10).

Notification mode selects between the two design alternatives:
``"destination"`` (§3.2.2: contending flows ride the data packet and come
back in the destination ACK) and ``"router"`` (§3.4.1: the congested router
injects predictive ACKs straight to the dominant sources; the destination
then returns a latency-only ACK).
"""

from __future__ import annotations

import math
from typing import ClassVar

from repro.checkpoint.state import Snapshottable
from repro.network.config import NetworkConfig
from repro.network.nic import ProcessingNode
from repro.network.packet import (
    ACK,
    DATA,
    PREDICTIVE_ACK,
    ContendingFlow,
    Packet,
    make_ack,
    make_predictive_ack,
)
from repro.network.router import OutputPort, Router
from repro.routing.base import RoutingPolicy
from repro.sim.engine import Simulator
from repro.topology.base import Topology

DESTINATION_BASED = "destination"
ROUTER_BASED = "router"

#: drop-accounting reasons (``Fabric.dropped_by_reason`` keys).
DROP_LINK_DOWN = "link_down"
DROP_NO_ROUTE = "no_route"
DROP_ACK_LOSS = "ack_loss"
DROP_DUPLICATE = "duplicate"


class QuiesceTimeout(RuntimeError):
    """`Fabric.quiesce` deadline passed with traffic still in flight."""


class _IdlePort:
    """Sentinel for ports that have never been used (always free)."""

    busy_until = 0.0


_IDLE = _IdlePort()


class Fabric(Snapshottable):
    """A complete simulated interconnection network."""

    #: checkpoint coverage (docs/checkpoint.md).  Everything here is
    #: either plain data, a Snapshottable, or a bound method of one
    #: (``_schedule_at``/``fault_filter``), so the whole fabric graph
    #: pickles through the protocol; the tracer is observation-only and
    #: is dropped on restore.
    _snapshot_fields_: ClassVar[tuple[str, ...]] = (
        "topology", "config", "policy", "sim", "recorder", "notification",
        "_link_delay_s", "_packet_size", "_onoff", "_per_hop",
        "_schedule_at", "routers", "_vc", "nodes",
        "data_packets_injected", "data_packets_delivered",
        "data_bytes_delivered", "acks_delivered", "predictive_acks_delivered",
        "failed_links", "degraded_links", "dropped_by_reason",
        "fault_filter", "transport",
    )
    _snapshot_exclude_: ClassVar[tuple[str, ...]] = ("tracer",)

    def __init__(
        self,
        topology: Topology,
        config: NetworkConfig,
        policy: RoutingPolicy,
        sim: Simulator,
        recorder=None,
        notification: str = DESTINATION_BASED,
    ) -> None:
        if notification not in (DESTINATION_BASED, ROUTER_BASED):
            raise ValueError(f"unknown notification mode {notification!r}")
        self.topology = topology
        topology.enable_route_cache()
        self.config = config
        self.policy = policy
        self.sim = sim
        self.recorder = recorder
        self.notification = notification
        #: optional :class:`repro.obs.tracer.Tracer` (installed by
        #: :func:`repro.obs.instrument`); every emit below guards on it.
        self.tracer = None
        # Hot-path constants (fixed after construction; see
        # docs/performance.md).  flow_control and the policy's per_hop
        # flag never change once the fabric exists.
        self._link_delay_s = config.link_delay_s
        self._packet_size = config.packet_size_bytes
        self._onoff = config.flow_control == "onoff"
        self._per_hop = bool(getattr(policy, "per_hop", False))
        self._schedule_at = sim.schedule_at
        handler = self._router_congestion if notification == ROUTER_BASED else None
        self.routers = [
            Router(r, config, congestion_handler=handler)
            for r in range(topology.num_routers)
        ]
        # Optional virtual-channel arbitration (§3.2.8).
        self._vc = None
        if config.virtual_channels > 1:
            from repro.network.vc import VCDispatcher

            self._vc = VCDispatcher(self)
        self.nodes = [ProcessingNode(h, config) for h in range(topology.num_hosts)]
        # Aggregate accounting (offered vs accepted load, §4.2 throughput).
        self.data_packets_injected = 0
        self.data_packets_delivered = 0
        self.data_bytes_delivered = 0
        self.acks_delivered = 0
        self.predictive_acks_delivered = 0
        # Fault injection (the FT-DRB capability the router design shares,
        # §3.3.2): failed router-to-router links, degraded links with
        # elevated propagation delay, and reasoned drop accounting.
        self.failed_links: set[frozenset] = set()
        self.degraded_links: dict[frozenset, float] = {}
        self.dropped_by_reason: dict[str, int] = {}
        #: optional hook consulted before any packet enters the network:
        #: ``fn(packet, now) -> None | ("drop", reason) | ("delay", s)``.
        #: Installed by :class:`repro.faults.injector.FaultInjector` to
        #: model ACK/notification loss and delay.
        self.fault_filter = None
        #: optional end-to-end recovery protocol
        #: (:class:`repro.faults.recovery.ReliableTransport`).
        self.transport = None
        policy.attach(self)
        if recorder is not None:
            recorder.attach(self)

    # ------------------------------------------------------------------
    # Message / packet injection
    # ------------------------------------------------------------------
    def send(
        self,
        src: int,
        dst: int,
        size_bytes: int,
        mpi_type: int = -1,
        mpi_seq: int = -1,
    ) -> int:
        """Inject a message; returns the number of packets created.

        Messages larger than a packet are fragmented; one metapath
        selection is made per message so fragments share a route and
        arrive in order (the paper's ``MPI_sequence`` ordering).
        """
        if src == dst:
            # Loopback: deliver immediately without touching the network.
            node = self.nodes[dst]
            packet = Packet(
                src=src, dst=dst, size_bytes=size_bytes,
                created_at=self.sim.now, mpi_type=mpi_type, mpi_seq=mpi_seq,
            )
            node.receive(packet, self.sim.now)
            return 0
        now = self.sim.now
        path, msp_index = self.policy.select_path(src, dst, size_bytes, now)
        packet_size = self._packet_size
        fragments = max(1, math.ceil(size_bytes / packet_size))
        remaining = size_bytes
        for i in range(fragments):
            chunk = min(packet_size, remaining)
            remaining -= chunk
            packet = Packet(
                src=src,
                dst=dst,
                size_bytes=chunk,
                kind=DATA,
                path=path,
                created_at=now,
                msp_index=msp_index,
                mpi_type=mpi_type,
                mpi_seq=mpi_seq,
                final=(i == fragments - 1),
                fragments=fragments,
            )
            self.inject(packet)
        return fragments

    def inject(self, packet: Packet) -> None:
        """Serialize ``packet`` out of its source host onto the first router.

        The fault filter (when installed) may drop or delay the packet at
        the injection point — this is how ACK/notification loss and delay
        faults are modelled without touching the event chain itself.
        """
        if self.fault_filter is not None:
            action = self.fault_filter(packet, self.sim.now)
            if action is not None:
                kind, value = action
                if kind == "drop":
                    self._drop(packet, value)
                    return
                self.sim.schedule(value, self._inject, packet)
                return
        self._inject(packet)

    def _inject(self, packet: Packet) -> None:
        node = self.nodes[packet.src]
        exit_time = node.serialize(packet, self.sim.now)
        if packet.kind == DATA:
            self.data_packets_injected += 1
            if self.recorder is not None:
                self.recorder.on_data_injected(packet, self.sim.now)
            if self.transport is not None:
                self.transport.on_inject(packet, self.sim.now)
            if self.tracer is not None:
                self.tracer.emit(
                    self.sim.now,
                    "packet.inject",
                    ("flow", f"{packet.src}-{packet.dst}"),
                    args={"size_bytes": packet.size_bytes, "msp": packet.msp_index},
                )
        self._schedule_at(
            exit_time + self._link_delay_s, self._arrive, packet
        )

    # ------------------------------------------------------------------
    # Drop accounting
    # ------------------------------------------------------------------
    @property
    def packets_dropped(self) -> int:
        """Total drops of any packet kind (sum over ``dropped_by_reason``)."""
        return sum(self.dropped_by_reason.values())

    def _drop(self, packet: Packet, reason: str, notify: bool = True) -> None:
        """Account a dropped packet and fan the NACK out to the learning
        layers: the routing policy prunes dead paths first, then the
        reliable transport (when installed) schedules a retransmission
        over the pruned metapath."""
        self.dropped_by_reason[reason] = self.dropped_by_reason.get(reason, 0) + 1
        if self.tracer is not None:
            self.tracer.emit(
                self.sim.now,
                "packet.drop",
                ("flow", f"{packet.src}-{packet.dst}"),
                args={"reason": reason, "kind": packet.kind},
            )
        if self.recorder is not None and packet.kind == DATA:
            on_dropped = getattr(self.recorder, "on_data_dropped", None)
            if on_dropped is not None:
                on_dropped(packet, reason, self.sim.now)
        if not notify:
            return
        self.policy.on_drop(packet, reason, self.sim.now)
        if self.transport is not None and packet.kind == DATA:
            self.transport.on_nack(packet, self.sim.now)

    # ------------------------------------------------------------------
    # Per-router forwarding
    # ------------------------------------------------------------------
    def _arrive(self, packet: Packet) -> None:
        now = self.sim.now
        if self.failed_links and not self._crossed_link_alive(packet):
            # The link died while the packet was on the wire: a fault is
            # not a routing decision, so packets already committed to the
            # link are lost too (satellite of §3.3.2's dynamic fault model).
            self._drop(packet, DROP_LINK_DOWN)
            return
        if self._per_hop and packet.kind == DATA:
            self._arrive_adaptive(packet, now)
            return
        if self._vc is not None:
            self._arrive_vc(packet, now)
            return
        path = packet.path
        hop = packet.hop
        router = self.routers[path[hop]]
        if hop == len(path) - 1:
            port = router.host_ports.get(packet.dst)
            if port is None:
                port = router.port_to("host", packet.dst)
            depart = router.forward(packet, port, now)
            self._schedule_at(
                depart + self._link_delay_s, self._deliver, packet
            )
        else:
            next_router = path[hop + 1]
            if self.failed_links and not self.link_alive(path[hop], next_router):
                # A failed link drops the packet: recovery is the routing
                # policy's job (alternative paths avoid the fault; FR-DRB's
                # watchdog notices the missing ACK) plus, when installed,
                # the reliable transport's (retransmission).
                self._drop(packet, DROP_LINK_DOWN)
                return
            port = router.router_ports.get(next_router)
            if port is None:
                port = router.port_to("router", next_router)
            if self._onoff and self._stalled(router, port, packet, now):
                return
            depart = router.forward(packet, port, now)
            packet.hop = hop + 1
            delay = (
                self._link_delay_s
                if not self.degraded_links
                else self.link_delay(path[hop], next_router)
            )
            self._schedule_hop(depart + delay, packet)

    def _schedule_hop(self, time: float, packet: Packet) -> None:
        """Schedule ``packet``'s arrival at its next router.

        The single seam between serial and sharded execution:
        ``repro.shard.ShardFabric`` overrides this to divert arrivals
        whose next router lives on another shard into the cross-process
        handoff outbox (docs/sharding.md).  ``packet.hop`` already
        indexes the next router when this is called.
        """
        self._schedule_at(time, self._arrive, packet)

    def _crossed_link_alive(self, packet: Packet) -> bool:
        """Is the link this packet just traversed still up on arrival?"""
        if packet.hop == 0 or packet.hop >= len(packet.path):
            return True  # host injection link; faults model router links
        return self.link_alive(packet.path[packet.hop - 1], packet.path[packet.hop])

    def _stalled(self, router: Router, port: OutputPort, packet: Packet, now: float) -> bool:
        """On/Off flow control: hold the packet upstream until the full
        output buffer drains (§2.1.3).  Returns True when a retry was
        scheduled.  Callers gate on ``self._onoff``; the check is repeated
        here so direct calls stay correct."""
        if not self._onoff:
            return False
        if router.buffer_available(port, packet.size_bytes, now):
            return False
        port.stalls += 1
        retry = router.next_drain_time(port, now)
        self.sim.schedule_at(retry, self._arrive, packet)
        return True

    def _vc_served_host(self, pkt: Packet, depart: float) -> None:
        """VC service completion for a final-hop packet: deliver it.

        A bound method (not a closure) because queued VC entries carry
        their completion callback and must survive checkpoint pickling.
        """
        self.sim.schedule_at(
            depart + self.config.link_delay_s, self._deliver, pkt
        )

    def _vc_served_router(self, pkt: Packet, depart: float) -> None:
        """VC service completion for a transit packet: next router hop."""
        pkt.hop += 1
        self.sim.schedule_at(
            depart + self.link_delay(pkt.path[pkt.hop - 1], pkt.path[pkt.hop]),
            self._arrive,
            pkt,
        )

    def _arrive_vc(self, packet: Packet, now: float) -> None:
        """Forward through the round-robin VC arbiter instead of the
        immediate FIFO model (NetworkConfig.virtual_channels >= 2)."""
        router = self.routers[packet.current_router]
        if packet.at_last_router:
            port = router.port_to("host", packet.dst)
            self._vc.submit(router, port, packet, now, self._vc_served_host)
            return
        next_router = packet.path[packet.hop + 1]
        if self.failed_links and not self.link_alive(
            packet.current_router, next_router
        ):
            self._drop(packet, DROP_LINK_DOWN)
            return
        port = router.port_to("router", next_router)
        self._vc.submit(router, port, packet, now, self._vc_served_router)

    def _arrive_adaptive(self, packet: Packet, now: float) -> None:
        """Per-hop adaptive forwarding (Fig. 2.5's in-network adaptivity).

        The packet's route grows as routers choose among the minimal next
        hops; the accumulated ``path`` stays valid for diagnostics and
        ACK reverse-routing.
        """
        current = packet.current_router
        router = self.routers[current]
        dst_router = self.topology.host_router(packet.dst)
        if current == dst_router:
            port = router.port_to("host", packet.dst)
            depart = router.forward(packet, port, now)
            self.sim.schedule_at(
                depart + self.config.link_delay_s, self._deliver, packet
            )
            return
        choices = self.topology.minimal_next_hops(current, dst_router)
        if self.failed_links:
            choices = [nb for nb in choices if self.link_alive(current, nb)]
        if not choices:  # disconnected: no live minimal next hop remains
            self._drop(packet, DROP_NO_ROUTE)
            return
        next_router = min(
            choices,
            key=lambda nb: (router.ports.get(("router", nb)) or _IDLE).busy_until,
        )
        port = router.port_to("router", next_router)
        depart = router.forward(packet, port, now)
        packet.path = packet.path + (next_router,)
        packet.hop += 1
        self.sim.schedule_at(
            depart + self.link_delay(current, next_router), self._arrive, packet
        )

    # ------------------------------------------------------------------
    # Delivery and notification
    # ------------------------------------------------------------------
    def _deliver(self, packet: Packet) -> None:
        now = self.sim.now
        if packet.kind == DATA:
            if not self.nodes[packet.dst].first_delivery(packet.src, packet.retx_seq):
                # A duplicate copy (original + retransmit both survived).
                # Suppress it, but re-ACK so the source stops retrying —
                # the first copy's ACK may have been the casualty.
                self._drop(packet, DROP_DUPLICATE, notify=False)
                if self._acks_enabled():
                    self._send_ack(packet, now)
                return
            self.data_packets_delivered += 1
            self.data_bytes_delivered += packet.size_bytes
            latency = now - packet.created_at
            if self.recorder is not None:
                self.recorder.on_data_delivered(packet, latency, now)
            if self.tracer is not None:
                self.tracer.emit(
                    now,
                    "packet.deliver",
                    ("flow", f"{packet.src}-{packet.dst}"),
                    args={"latency_s": latency, "size_bytes": packet.size_bytes},
                )
            self.nodes[packet.dst].receive(packet, now)
            if self._acks_enabled():
                self._send_ack(packet, now)
        elif packet.kind == ACK:
            self.acks_delivered += 1
            if self.tracer is not None and packet.contending:
                self.tracer.emit(
                    now,
                    "notify.recv",
                    ("flow", f"{packet.dst}-{packet.src}"),
                    args={"mode": "ack", "flows": len(packet.contending)},
                )
            self.policy.on_ack(packet, now)
            if self.transport is not None:
                self.transport.on_ack(packet, now)
        elif packet.kind == PREDICTIVE_ACK:
            self.predictive_acks_delivered += 1
            if self.tracer is not None:
                self.tracer.emit(
                    now,
                    "notify.recv",
                    ("nic", packet.dst),
                    args={
                        "mode": "predictive",
                        "flows": len(packet.contending),
                        "router": packet.reporting_router,
                    },
                )
            self.policy.on_predictive_ack(packet, now)

    def _acks_enabled(self) -> bool:
        # The reliable transport needs ACKs even under policies that do
        # not learn from them (e.g. deterministic routing).
        return self.config.send_acks and (
            self.policy.wants_acks or self.transport is not None
        )

    def _send_ack(self, data: Packet, now: float) -> None:
        reverse = tuple(reversed(data.path))
        ack = make_ack(
            data,
            reverse_path=reverse,
            size_bytes=self.config.ack_size_bytes,
            now=now,
            carry_contending=True,
        )
        if self.tracer is not None and ack.contending:
            # Destination-based notification: contending flows ride home.
            self.tracer.emit(
                now,
                "notify.send",
                ("flow", f"{data.src}-{data.dst}"),
                args={
                    "mode": "ack",
                    "flows": len(ack.contending),
                    "router": ack.reporting_router,
                },
            )
        self.inject(ack)

    # ------------------------------------------------------------------
    # Router-based notification (GPA module, §3.4.1)
    # ------------------------------------------------------------------
    def _router_congestion(
        self,
        router: Router,
        port: OutputPort,
        packet: Packet,
        wait_s: float,
        flows: list[ContendingFlow],
        now: float,
    ) -> bool:
        if not self.policy.wants_acks:
            return False
        # Notify each distinct source among the dominant contending flows.
        notified: set[int] = set()
        for flow in flows:
            if flow.src in notified:
                continue
            notified.add(flow.src)
            src_router = self.topology.host_router(flow.src)
            path = self.topology.minimal_route(router.router_id, src_router)
            pack = make_predictive_ack(
                router=router.router_id,
                target_src=flow.src,
                path=path,
                contending=flows,
                queue_latency=wait_s,
                size_bytes=self.config.ack_size_bytes,
                now=now,
            )
            if self.tracer is not None:
                self.tracer.emit(
                    now,
                    "notify.send",
                    ("router", router.router_id),
                    args={
                        "mode": "predictive",
                        "target": flow.src,
                        "flows": len(flows),
                        "queue_latency_s": wait_s,
                    },
                )
            # Routers inject in place: the packet starts at this router.
            # Notification faults apply here too (a predictive ACK is a
            # notification packet, even though it skips host injection).
            if self.fault_filter is not None:
                action = self.fault_filter(pack, now)
                if action is not None:
                    kind, value = action
                    if kind == "drop":
                        self._drop(pack, value)
                    else:
                        self.sim.schedule(value, self._arrive, pack)
                    continue
            self.sim.schedule_at(now, self._arrive, pack)
        return True

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def fail_link(self, a: int, b: int) -> None:
        """Take the (bidirectional) router link a<->b out of service."""
        if b not in self.topology.router_neighbors(a):
            raise ValueError(f"routers {a} and {b} are not adjacent")
        self.failed_links.add(frozenset((a, b)))

    def restore_link(self, a: int, b: int) -> None:
        """Bring a failed link back."""
        self.failed_links.discard(frozenset((a, b)))

    def link_alive(self, a: int, b: int) -> bool:
        return frozenset((a, b)) not in self.failed_links

    def degrade_link(self, a: int, b: int, extra_delay_s: float) -> None:
        """Add ``extra_delay_s`` of propagation delay to router link a<->b
        (a degraded-but-alive link: flaky optics, retraining lanes)."""
        if b not in self.topology.router_neighbors(a):
            raise ValueError(f"routers {a} and {b} are not adjacent")
        if extra_delay_s < 0:
            raise ValueError("extra_delay_s must be >= 0")
        self.degraded_links[frozenset((a, b))] = extra_delay_s

    def restore_link_quality(self, a: int, b: int) -> None:
        """Clear a degradation set by :meth:`degrade_link`."""
        self.degraded_links.pop(frozenset((a, b)), None)

    def link_delay(self, a: int, b: int) -> float:
        """Propagation delay of router link a<->b, degradation included."""
        if not self.degraded_links:
            return self.config.link_delay_s
        return self.config.link_delay_s + self.degraded_links.get(
            frozenset((a, b)), 0.0
        )

    def path_alive(self, path) -> bool:
        """True when no hop of ``path`` crosses a failed link."""
        if not self.failed_links:
            return True
        return all(self.link_alive(x, y) for x, y in zip(path, path[1:]))

    # ------------------------------------------------------------------
    # Inspection helpers
    # ------------------------------------------------------------------
    def contention_map(self) -> dict[int, float]:
        """Per-router mean contention latency (the latency surface map z)."""
        return {
            r.router_id: r.mean_contention_latency_s
            for r in self.routers
            if r.packets_forwarded
        }

    def accepted_ratio(self) -> float:
        """Delivered / injected data packets (§4.2 offered-vs-accepted)."""
        if not self.data_packets_injected:
            return 1.0
        return self.data_packets_delivered / self.data_packets_injected

    def quiesce(self, timeout: float = 1.0) -> None:
        """Run the simulator until all in-flight packets drain.

        Raises :class:`QuiesceTimeout` when the deadline passes with
        packets still in flight (or retransmissions still pending), with a
        diagnostic listing the stuck packets and per-flow outstanding
        counts — a silent return here hides livelocks and leaks.
        """
        deadline = self.sim.now + timeout
        self.sim.run(until=deadline)
        in_flight = self._in_flight_packets()
        pending_retx = (
            self.transport.pending_by_flow() if self.transport is not None else {}
        )
        if not in_flight and not pending_retx:
            return
        lines = [
            f"network failed to quiesce within {timeout:.3e}s "
            f"(now={self.sim.now:.6e}s): {len(in_flight)} packets in "
            f"flight, {sum(pending_retx.values())} retransmissions pending"
        ]
        for packet in in_flight[:10]:
            lines.append(f"  in flight: {packet!r}")
        if len(in_flight) > 10:
            lines.append(f"  ... and {len(in_flight) - 10} more")
        outstanding = {
            key: fs.outstanding
            for key, fs in getattr(self.policy, "flows", {}).items()
            if fs.outstanding > 0
        }
        for (src, dst), count in sorted(outstanding.items()):
            lines.append(f"  flow {src}->{dst}: {count} outstanding (policy)")
        for (src, dst), count in sorted(pending_retx.items()):
            lines.append(f"  flow {src}->{dst}: {count} pending retransmission")
        raise QuiesceTimeout("\n".join(lines))

    def _in_flight_packets(self) -> list[Packet]:
        """Packets with a live arrival/delivery/injection event queued."""
        hops = (self._arrive, self._deliver, self._inject)
        found = []
        for event in self.sim._queue:
            if event.cancelled or event.fn not in hops:
                continue
            found.extend(arg for arg in event.args if isinstance(arg, Packet))
        if self._vc is not None:
            for state in self._vc._states.values():
                for queue in state.queues:
                    found.extend(packet for packet, _, _ in queue)
        return found
