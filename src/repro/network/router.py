"""PR-DRB router model (§3.3.2, Fig. 3.19; node model §4.1.2).

Each router owns one :class:`OutputPort` per outgoing link.  A port is a
FIFO server: a packet arriving at time ``t`` waits ``max(0, busy_until -
t)`` (the paper's *contention latency*, accumulated into the packet by the
Latency Update module), then holds the link for its serialization time.

The router integrates the paper's four modules:

* **LU** (Latency Update) — per-packet queue-wait accumulation;
* **HDP** (Header Detection & Processing) — advancing ``Packet.hop``
  through the source route (the multi-header ``Header_id`` mechanism);
* **CFD** (Contending Flows Detection) — when a packet's wait exceeds the
  router threshold, snapshot the flows sharing the congested queue and
  attach the dominant ones to the packet's predictive header;
* **GPA** (Generation of Predictive ACK) — under router-based notification
  (§3.4.1) the CFD result is instead handed to a fabric callback that
  injects predictive ACKs straight to the contending sources.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.network.config import NetworkConfig
from repro.network.packet import DATA, ContendingFlow, Packet

#: seconds a port's CFD stays quiet after recording a congestion episode
#: ("notification is performed only once per buffer's access", §3.2.7).
CFD_COOLDOWN_S = 20e-6


@dataclass
class OutputPort:
    """FIFO link server plus the statistics the evaluation plots.

    ``queue`` holds ``(depart_time, flow, size_bytes)`` tuples for packets
    that have been accepted but not yet fully transmitted; the CFD module
    inspects it to identify contending flows.
    """

    router: int
    target_kind: str  # "router" or "host"
    target: int
    #: absolute time at which the link becomes free.
    busy_until: float = 0.0
    #: in-flight/queued packets, for CFD inspection.
    queue: deque = field(default_factory=deque)
    #: bytes currently queued (buffer-occupancy bookkeeping).
    occupancy_bytes: int = 0
    #: cumulative contention statistics.
    total_wait_s: float = 0.0
    packets: int = 0
    bytes: int = 0
    #: count of packets that found the buffer logically full.
    overflows: int = 0
    #: count of On/Off flow-control stalls (packets made to wait upstream).
    stalls: int = 0
    #: CFD quiet-period end.
    cfd_quiet_until: float = 0.0

    @property
    def mean_wait_s(self) -> float:
        """Average contention latency seen by packets through this port."""
        return self.total_wait_s / self.packets if self.packets else 0.0


class Router:
    """A network node executing the PR-DRB forwarding pipeline."""

    def __init__(
        self,
        router_id: int,
        config: NetworkConfig,
        congestion_handler: Optional[Callable] = None,
    ) -> None:
        self.router_id = router_id
        self.config = config
        #: fabric-installed hook: fn(router, port, packet, wait_s, flows, now)
        #: -> bool, returning True when it handled notification itself
        #: (router-based GPA); False leaves the destination-based path.
        self.congestion_handler = congestion_handler
        self.ports: dict[tuple[str, int], OutputPort] = {}
        # Aggregate, per-router contention statistics (latency maps).
        self.total_wait_s = 0.0
        self.packets_forwarded = 0
        self.bytes_forwarded = 0
        #: optional metrics hook: fn(router_id, now, wait_s)
        self.wait_observer: Optional[Callable[[int, float, float], None]] = None

    # ------------------------------------------------------------------
    def port_to(self, kind: str, target: int) -> OutputPort:
        """Get or create the output port toward ``(kind, target)``."""
        key = (kind, target)
        port = self.ports.get(key)
        if port is None:
            port = OutputPort(self.router_id, kind, target)
            self.ports[key] = port
        return port

    # ------------------------------------------------------------------
    def forward(self, packet: Packet, port: OutputPort, now: float) -> float:
        """Serve ``packet`` through ``port``; return its hand-off time.

        Applies LU (latency accumulation), CFD (contending-flow capture)
        and the buffer occupancy check.  The caller (fabric) schedules the
        next-hop arrival at the returned time plus the link delay.  Under
        store-and-forward timing the hand-off is the packet tail's
        departure; under virtual cut-through it is the header's, so
        uncongested hops pipeline while the link still serializes the
        whole body (``busy_until`` always advances by the full
        transmission time).
        """
        cfg = self.config
        ready = now + cfg.routing_delay_s
        depart_start = max(ready, port.busy_until)
        wait = depart_start - ready
        tx = cfg.tx_time_s(packet.size_bytes)
        depart = depart_start + tx

        self.occupy(packet, port, depart, now)
        self.account(packet, port, wait, now)
        if cfg.cut_through and port.target_kind == "router":
            # Hand the header to the next router early; final delivery to
            # a host is still timed at the packet tail, so end-to-end
            # latency counts one full serialization.
            header_tx = cfg.tx_time_s(
                min(cfg.cut_through_header_bytes, packet.size_bytes)
            )
            return depart_start + header_tx
        return depart

    # ------------------------------------------------------------------
    def occupy(self, packet: Packet, port: OutputPort, depart: float, now: float) -> None:
        """Buffer/link occupancy bookkeeping for a packet departing at
        ``depart`` (virtual cut-through buffers whenever the link is
        busy, §2.1.2)."""
        self._purge(port, now)
        if port.occupancy_bytes + packet.size_bytes > self.config.buffer_size_bytes:
            port.overflows += 1
        port.queue.append((depart, packet.flow(), packet.size_bytes))
        port.occupancy_bytes += packet.size_bytes
        port.busy_until = max(port.busy_until, depart)

    def account(self, packet: Packet, port: OutputPort, wait: float, now: float) -> None:
        """LU + CFD: record contention latency and detect congestion.

        Shared by the immediate (FIFO) forwarding path and the
        virtual-channel dispatcher.
        """
        cfg = self.config
        packet.path_latency += wait
        port.total_wait_s += wait
        port.packets += 1
        port.bytes += packet.size_bytes
        self.total_wait_s += wait
        self.packets_forwarded += 1
        self.bytes_forwarded += packet.size_bytes
        if self.wait_observer is not None:
            self.wait_observer(self.router_id, now, wait)

        # CFD: only data packets participate in congestion detection.
        if (
            packet.kind == DATA
            and wait > cfg.router_threshold_s
            and now >= port.cfd_quiet_until
        ):
            flows = self._contending_flows(port, packet)
            port.cfd_quiet_until = now + CFD_COOLDOWN_S
            handled = False
            if self.congestion_handler is not None:
                handled = bool(
                    self.congestion_handler(self, port, packet, wait, flows, now)
                )
            if handled:
                # Router-based GPA already notified sources; flag the packet
                # so the destination sends a latency-only ACK (§3.4.2).
                packet.predictive_bit = True
            else:
                # Destination-based: ride the predictive header to the sink.
                packet.contending = flows
                packet.reporting_router = self.router_id

    # ------------------------------------------------------------------
    # On/Off flow control (§2.1.3)
    # ------------------------------------------------------------------
    def buffer_available(self, port: OutputPort, size_bytes: int, now: float) -> bool:
        """True when the output buffer can admit ``size_bytes`` now."""
        self._purge(port, now)
        return port.occupancy_bytes + size_bytes <= self.config.buffer_size_bytes

    def next_drain_time(self, port: OutputPort, now: float) -> float:
        """Earliest time at which buffer space frees (strictly > now)."""
        if port.queue:
            head = port.queue[0][0]
            if head > now:
                return head
        return now + self.config.packet_tx_time_s

    # ------------------------------------------------------------------
    def _purge(self, port: OutputPort, now: float) -> None:
        queue = port.queue
        while queue and queue[0][0] <= now:
            _, _, size = queue.popleft()
            port.occupancy_bytes -= size

    def _contending_flows(self, port: OutputPort, packet: Packet) -> list[ContendingFlow]:
        """Dominant flows currently sharing ``port``'s queue (§3.2.7).

        Flows are ranked by queued bytes (their contribution to the
        congestion); at most ``max_contending_flows`` unique pairs are
        reported, always including the suffering packet's own flow.
        """
        shares: dict[ContendingFlow, int] = {}
        for _, flow, size in port.queue:
            shares[flow] = shares.get(flow, 0) + size
        shares.setdefault(packet.flow(), packet.size_bytes)
        total = sum(shares.values())
        min_bytes = total * self.config.cfd_min_share
        ranked = sorted(
            ((f, b) for f, b in shares.items() if b >= min_bytes),
            key=lambda kv: (-kv[1], kv[0]),
        )
        limit = self.config.max_contending_flows
        flows = [flow for flow, _ in ranked[:limit]]
        if not flows:  # degenerate: everyone tiny — report the sufferer
            flows = [packet.flow()]
        return flows

    # ------------------------------------------------------------------
    @property
    def mean_contention_latency_s(self) -> float:
        """Average buffer wait across all forwarded packets (latency map z)."""
        if not self.packets_forwarded:
            return 0.0
        return self.total_wait_s / self.packets_forwarded
