"""PR-DRB router model (§3.3.2, Fig. 3.19; node model §4.1.2).

Each router owns one :class:`OutputPort` per outgoing link.  A port is a
FIFO server: a packet arriving at time ``t`` waits ``max(0, busy_until -
t)`` (the paper's *contention latency*, accumulated into the packet by the
Latency Update module), then holds the link for its serialization time.

The router integrates the paper's four modules:

* **LU** (Latency Update) — per-packet queue-wait accumulation;
* **HDP** (Header Detection & Processing) — advancing ``Packet.hop``
  through the source route (the multi-header ``Header_id`` mechanism);
* **CFD** (Contending Flows Detection) — when a packet's wait exceeds the
  router threshold, snapshot the flows sharing the congested queue and
  attach the dominant ones to the packet's predictive header;
* **GPA** (Generation of Predictive ACK) — under router-based notification
  (§3.4.1) the CFD result is instead handed to a fabric callback that
  injects predictive ACKs straight to the contending sources.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, ClassVar, Optional

from repro.checkpoint.state import Snapshottable
from repro.network.config import NetworkConfig
from repro.network.packet import DATA, ContendingFlow, Packet

#: seconds a port's CFD stays quiet after recording a congestion episode
#: ("notification is performed only once per buffer's access", §3.2.7).
CFD_COOLDOWN_S = 20e-6


@dataclass(slots=True)
class OutputPort(Snapshottable):
    """FIFO link server plus the statistics the evaluation plots.

    ``queue`` holds ``(depart_time, flow, size_bytes)`` tuples for packets
    that have been accepted but not yet fully transmitted; the CFD module
    inspects it to identify contending flows.
    """

    router: int
    target_kind: str  # "router" or "host"
    target: int
    #: absolute time at which the link becomes free.
    busy_until: float = 0.0
    #: in-flight/queued packets, for CFD inspection.
    queue: deque = field(default_factory=deque)
    #: bytes currently queued (buffer-occupancy bookkeeping).
    occupancy_bytes: int = 0
    #: per-flow queued bytes, maintained incrementally alongside ``queue``
    #: (add on occupy, subtract on purge, drop at zero) so the CFD module
    #: never rescans the queue.  Integer bytes, so the running sums are
    #: exact and identical to a from-scratch rebuild.
    flow_bytes: dict = field(default_factory=dict)
    #: cumulative contention statistics.
    total_wait_s: float = 0.0
    packets: int = 0
    bytes: int = 0
    #: count of packets that found the buffer logically full.
    overflows: int = 0
    #: count of On/Off flow-control stalls (packets made to wait upstream).
    stalls: int = 0
    #: CFD quiet-period end.
    cfd_quiet_until: float = 0.0

    _snapshot_fields_: ClassVar[tuple[str, ...]] = (
        "router", "target_kind", "target", "busy_until", "queue",
        "occupancy_bytes", "flow_bytes", "total_wait_s", "packets", "bytes",
        "overflows", "stalls", "cfd_quiet_until",
    )

    @property
    def mean_wait_s(self) -> float:
        """Average contention latency seen by packets through this port."""
        return self.total_wait_s / self.packets if self.packets else 0.0


class Router(Snapshottable):
    """A network node executing the PR-DRB forwarding pipeline."""

    #: checkpoint coverage.  ``_tx_time_s`` is a bound method of the
    #: config and ``_tx_cache`` the config's own memo dict — pickling
    #: both through the shared graph preserves the identity sharing.
    #: ``wait_observer`` is the recorder's bound hook; the tracer is
    #: observation-only and dropped.
    _snapshot_fields_: ClassVar[tuple[str, ...]] = (
        "router_id", "config", "congestion_handler", "ports",
        "router_ports", "host_ports", "_routing_delay_s", "_threshold_s",
        "_buffer_size", "_cut_through", "_ct_header_bytes", "_tx_time_s",
        "_tx_cache", "total_wait_s", "packets_forwarded", "bytes_forwarded",
        "wait_observer",
    )
    _snapshot_exclude_: ClassVar[tuple[str, ...]] = ("tracer",)

    def __init__(
        self,
        router_id: int,
        config: NetworkConfig,
        congestion_handler: Optional[Callable] = None,
    ) -> None:
        self.router_id = router_id
        self.config = config
        #: fabric-installed hook: fn(router, port, packet, wait_s, flows, now)
        #: -> bool, returning True when it handled notification itself
        #: (router-based GPA); False leaves the destination-based path.
        self.congestion_handler = congestion_handler
        self.ports: dict[tuple[str, int], OutputPort] = {}
        # Int-keyed views of ``ports`` (maintained by ``port_to``): the
        # per-hop path avoids building and hashing a ("router", id) tuple.
        self.router_ports: dict[int, OutputPort] = {}
        self.host_ports: dict[int, OutputPort] = {}
        # Hot-path constants hoisted from the config (all are fixed after
        # NetworkConfig.__post_init__; only max_contending_flows and
        # cfd_min_share are read live because tests tune them per-port).
        self._routing_delay_s = config.routing_delay_s
        self._threshold_s = config.router_threshold_s
        self._buffer_size = config.buffer_size_bytes
        self._cut_through = config.cut_through
        self._ct_header_bytes = config.cut_through_header_bytes
        self._tx_time_s = config.tx_time_s
        # Shared with the config's serialization memo: misses fall back to
        # config.tx_time_s, which fills this same dict.
        self._tx_cache = config._tx_cache
        # Aggregate, per-router contention statistics (latency maps).
        self.total_wait_s = 0.0
        self.packets_forwarded = 0
        self.bytes_forwarded = 0
        #: optional metrics hook: fn(router_id, now, wait_s)
        self.wait_observer: Optional[Callable[[int, float, float], None]] = None
        #: optional :class:`repro.obs.tracer.Tracer`; only the (rare) CFD
        #: path emits, so the per-hop inner loop stays untouched.
        self.tracer = None

    # ------------------------------------------------------------------
    def port_to(self, kind: str, target: int) -> OutputPort:
        """Get or create the output port toward ``(kind, target)``."""
        key = (kind, target)
        port = self.ports.get(key)
        if port is None:
            port = OutputPort(self.router_id, kind, target)
            self.ports[key] = port
            if kind == "router":
                self.router_ports[target] = port
            else:
                self.host_ports[target] = port
        return port

    # ------------------------------------------------------------------
    def forward(self, packet: Packet, port: OutputPort, now: float) -> float:
        """Serve ``packet`` through ``port``; return its hand-off time.

        Applies LU (latency accumulation), CFD (contending-flow capture)
        and the buffer occupancy check.  The caller (fabric) schedules the
        next-hop arrival at the returned time plus the link delay.  Under
        store-and-forward timing the hand-off is the packet tail's
        departure; under virtual cut-through it is the header's, so
        uncongested hops pipeline while the link still serializes the
        whole body (``busy_until`` always advances by the full
        transmission time).

        The bodies of :meth:`occupy` and :meth:`account` are inlined here
        (this is the per-packet-hop inner loop); the standalone methods
        remain the entry points for the VC dispatcher and must stay
        behaviorally identical to this sequence.
        """
        ready = now + self._routing_delay_s
        busy = port.busy_until
        depart_start = busy if busy > ready else ready
        wait = depart_start - ready
        size = packet.size_bytes
        tx = self._tx_cache.get(size)
        if tx is None:
            tx = self.config.tx_time_s(size)
        depart = depart_start + tx

        # --- occupy (inlined) ---
        queue = port.queue
        flow_bytes = port.flow_bytes
        if queue and queue[0][0] <= now:
            popleft = queue.popleft
            while queue and queue[0][0] <= now:
                _, f, s = popleft()
                port.occupancy_bytes -= s
                remaining = flow_bytes[f] - s
                if remaining:
                    flow_bytes[f] = remaining
                else:
                    del flow_bytes[f]
        if port.occupancy_bytes + size > self._buffer_size:
            port.overflows += 1
        flow = packet._flow
        if flow is None:
            flow = packet._flow = ContendingFlow(packet.src, packet.dst)
        queue.append((depart, flow, size))
        port.occupancy_bytes += size
        flow_bytes[flow] = flow_bytes.get(flow, 0) + size
        if depart > port.busy_until:
            port.busy_until = depart

        # --- account (inlined) ---
        packet.path_latency += wait
        port.total_wait_s += wait
        port.packets += 1
        port.bytes += size
        self.total_wait_s += wait
        self.packets_forwarded += 1
        self.bytes_forwarded += size
        if self.wait_observer is not None:
            self.wait_observer(self.router_id, now, wait)
        if (
            wait > self._threshold_s
            and packet.kind == DATA
            and now >= port.cfd_quiet_until
        ):
            self._cfd(packet, port, wait, now)

        if self._cut_through and port.target_kind == "router":
            # Hand the header to the next router early; final delivery to
            # a host is still timed at the packet tail, so end-to-end
            # latency counts one full serialization.
            header_tx = self._tx_time_s(
                min(self._ct_header_bytes, packet.size_bytes)
            )
            return depart_start + header_tx
        return depart

    # ------------------------------------------------------------------
    def occupy(self, packet: Packet, port: OutputPort, depart: float, now: float) -> None:
        """Buffer/link occupancy bookkeeping for a packet departing at
        ``depart`` (virtual cut-through buffers whenever the link is
        busy, §2.1.2)."""
        queue = port.queue
        if queue and queue[0][0] <= now:
            self._purge(port, now)
        size = packet.size_bytes
        if port.occupancy_bytes + size > self._buffer_size:
            port.overflows += 1
        flow = packet.flow()
        queue.append((depart, flow, size))
        port.occupancy_bytes += size
        flow_bytes = port.flow_bytes
        flow_bytes[flow] = flow_bytes.get(flow, 0) + size
        if depart > port.busy_until:
            port.busy_until = depart

    def account(self, packet: Packet, port: OutputPort, wait: float, now: float) -> None:
        """LU + CFD: record contention latency and detect congestion.

        Shared by the immediate (FIFO) forwarding path and the
        virtual-channel dispatcher.
        """
        size = packet.size_bytes
        packet.path_latency += wait
        port.total_wait_s += wait
        port.packets += 1
        port.bytes += size
        self.total_wait_s += wait
        self.packets_forwarded += 1
        self.bytes_forwarded += size
        if self.wait_observer is not None:
            self.wait_observer(self.router_id, now, wait)

        # CFD: only data packets participate in congestion detection.
        if (
            wait > self._threshold_s
            and packet.kind == DATA
            and now >= port.cfd_quiet_until
        ):
            self._cfd(packet, port, wait, now)

    def _cfd(self, packet: Packet, port: OutputPort, wait: float, now: float) -> None:
        """Record a congestion episode: snapshot contending flows and
        notify (router-based GPA or the packet's predictive header)."""
        flows = self._contending_flows(port, packet)
        port.cfd_quiet_until = now + CFD_COOLDOWN_S
        handled = False
        if self.congestion_handler is not None:
            handled = bool(
                self.congestion_handler(self, port, packet, wait, flows, now)
            )
        if handled:
            # Router-based GPA already notified sources; flag the packet
            # so the destination sends a latency-only ACK (§3.4.2).
            packet.predictive_bit = True
        else:
            # Destination-based: ride the predictive header to the sink.
            packet.contending = flows
            packet.reporting_router = self.router_id
        tracer = self.tracer
        if tracer is not None:
            track = ("router", self.router_id)
            tracer.emit(
                now,
                "router.contention",
                track,
                args={
                    "wait_s": wait,
                    "flows": len(flows),
                    "occupancy_bytes": port.occupancy_bytes,
                    "port": f"{port.target_kind}:{port.target}",
                    "handled": handled,
                },
            )
            tracer.emit(
                now,
                "router.queue_bytes",
                track,
                ph="C",
                args={"value": port.occupancy_bytes},
            )

    # ------------------------------------------------------------------
    # On/Off flow control (§2.1.3)
    # ------------------------------------------------------------------
    def buffer_available(self, port: OutputPort, size_bytes: int, now: float) -> bool:
        """True when the output buffer can admit ``size_bytes`` now."""
        self._purge(port, now)
        return port.occupancy_bytes + size_bytes <= self._buffer_size

    def next_drain_time(self, port: OutputPort, now: float) -> float:
        """Earliest time at which buffer space frees (strictly > now)."""
        if port.queue:
            head = port.queue[0][0]
            if head > now:
                return head
        return now + self.config.packet_tx_time_s

    # ------------------------------------------------------------------
    def _purge(self, port: OutputPort, now: float) -> None:
        queue = port.queue
        flow_bytes = port.flow_bytes
        while queue and queue[0][0] <= now:
            _, flow, size = queue.popleft()
            port.occupancy_bytes -= size
            remaining = flow_bytes[flow] - size
            if remaining:
                flow_bytes[flow] = remaining
            else:
                del flow_bytes[flow]

    def _contending_flows(self, port: OutputPort, packet: Packet) -> list[ContendingFlow]:
        """Dominant flows currently sharing ``port``'s queue (§3.2.7).

        Flows are ranked by queued bytes (their contribution to the
        congestion); at most ``max_contending_flows`` unique pairs are
        reported, always including the suffering packet's own flow.

        Reads the incrementally maintained ``port.flow_bytes`` map instead
        of rescanning the queue; the ranking key is a total order, so the
        result is independent of dict insertion order.
        """
        shares: dict[ContendingFlow, int] = port.flow_bytes
        if packet.flow() not in shares:
            # Rare: the sufferer already fully drained from the queue.
            # Work on a copy so the live accounting stays untouched.
            shares = dict(shares)
            shares[packet.flow()] = packet.size_bytes
        total = sum(shares.values())
        min_bytes = total * self.config.cfd_min_share
        ranked = sorted(
            ((f, b) for f, b in shares.items() if b >= min_bytes),
            key=lambda kv: (-kv[1], kv[0]),
        )
        limit = self.config.max_contending_flows
        flows = [flow for flow, _ in ranked[:limit]]
        if not flows:  # degenerate: everyone tiny — report the sufferer
            flows = [packet.flow()]
        return flows

    # ------------------------------------------------------------------
    @property
    def mean_contention_latency_s(self) -> float:
        """Average buffer wait across all forwarded packets (latency map z)."""
        if not self.packets_forwarded:
            return 0.0
        return self.total_wait_s / self.packets_forwarded
