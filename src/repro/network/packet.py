"""Packet formats (§3.3.1, Figs 3.16-3.18).

Three packet kinds model the paper's wire formats:

* ``DATA`` — Fig. 3.16: multi-header source route (the MSP's intermediate
  nodes become an explicit router path here), accumulated path latency,
  MPI type/sequence fields, and the optional predictive header (the
  recorded contending flows) when the destination-based scheme is active.
* ``ACK`` — Fig. 3.17: the notification returned to the source with the
  measured path latency (plus the predictive header contents under
  destination-based notification).
* ``PREDICTIVE_ACK`` — Fig. 3.18: the router-injected early notification of
  the router-based design alternative (§3.4.1).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import ClassVar, NamedTuple

from repro.checkpoint.state import Snapshottable

DATA = 0
ACK = 1
PREDICTIVE_ACK = 2

_KIND_NAMES = {DATA: "DATA", ACK: "ACK", PREDICTIVE_ACK: "PACK"}

_pid_counter = itertools.count()


def pid_counter_value() -> int:
    """Next pid the process-global counter will hand out, read without
    consuming it (``itertools.count`` exposes it only through ``repr``)."""
    text = repr(_pid_counter)  # "count(N)"
    return int(text[text.index("(") + 1 : text.rindex(")")])


def set_pid_counter(value: int) -> None:
    """Re-seed the process-global pid counter (checkpoint restore).

    The ``pid`` default factory reads the module global at call time, so
    reassigning it here takes effect for every packet created afterwards.
    """
    global _pid_counter
    _pid_counter = itertools.count(int(value))


class ContendingFlow(NamedTuple):
    """A source/destination pair observed in a congested output queue."""

    src: int
    dst: int


@dataclass(slots=True)
class Packet(Snapshottable):
    """A unit of transfer through the fabric.

    ``path`` is the full source route (router ids, inclusive); ``hop``
    indexes the router currently handling the packet — together they
    implement the multi-header + ``Header_id`` scheme of Fig. 3.16.

    Slotted (``slots=True``) because the simulator keeps thousands in
    flight and the per-event hot path reads their fields constantly; see
    docs/performance.md.
    """

    src: int
    dst: int
    size_bytes: int
    kind: int = DATA
    path: tuple[int, ...] = ()
    created_at: float = 0.0
    #: index of the MSP inside the source's metapath that this packet rode.
    msp_index: int = 0
    #: accumulated queueing (contention) latency along the path, seconds.
    path_latency: float = 0.0
    #: current position within ``path``.
    hop: int = 0
    #: MPI call type id (Fig. 3.16 ``MPI_type``); -1 for raw traffic.
    mpi_type: int = -1
    #: MPI sequence / message id (Fig. 3.16 ``MPI_sequence``).
    mpi_seq: int = -1
    #: marks the last packet of a fragmented message (Fig. 3.16 ``F`` bit).
    final: bool = True
    #: total fragment count of the message this packet belongs to.
    fragments: int = 1
    #: predictive bit (Fig. 3.16 ``P``): a router already injected a
    #: predictive ACK, so the destination sends a latency-only ACK (§3.4.2).
    predictive_bit: bool = False
    #: recorded contending flows (the predictive optional header).
    contending: list[ContendingFlow] = field(default_factory=list)
    #: router that recorded the contending flows (Fig. 3.18 ``Router id``;
    #: -1 under destination-based notification).
    reporting_router: int = -1
    #: reliable-transport sequence number within the (src, dst) flow;
    #: -1 when the packet is not tracked by a transport (best-effort).
    retx_seq: int = -1
    #: how many times this copy's logical packet has been retransmitted.
    retries: int = 0
    #: for ACK packets: the data packet fields they acknowledge.
    acked_msp_index: int = 0
    acked_created_at: float = 0.0
    acked_retx_seq: int = -1
    pid: int = field(default_factory=lambda: next(_pid_counter))
    #: lazily cached ``flow()`` result (src/dst never change post-init).
    _flow: ContendingFlow | None = field(default=None, repr=False, compare=False)

    _snapshot_fields_: ClassVar[tuple[str, ...]] = (
        "src", "dst", "size_bytes", "kind", "path", "created_at",
        "msp_index", "path_latency", "hop", "mpi_type", "mpi_seq", "final",
        "fragments", "predictive_bit", "contending", "reporting_router",
        "retx_seq", "retries", "acked_msp_index", "acked_created_at",
        "acked_retx_seq", "pid", "_flow",
    )

    @property
    def size_bits(self) -> int:
        return self.size_bytes * 8

    @property
    def current_router(self) -> int:
        return self.path[self.hop]

    @property
    def at_last_router(self) -> bool:
        return self.hop == len(self.path) - 1

    def kind_name(self) -> str:
        return _KIND_NAMES.get(self.kind, "?")

    def flow(self) -> ContendingFlow:
        """This packet's own (src, dst) pair, for CFD bookkeeping."""
        flow = self._flow
        if flow is None:
            flow = self._flow = ContendingFlow(self.src, self.dst)
        return flow

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<{self.kind_name()} pid={self.pid} {self.src}->{self.dst} "
            f"hop={self.hop}/{len(self.path) - 1} lat={self.path_latency:.3e}>"
        )


def make_ack(
    data: Packet,
    reverse_path: tuple[int, ...],
    size_bytes: int,
    now: float,
    carry_contending: bool = True,
) -> Packet:
    """Build the destination's ACK for ``data`` (Fig. 3.17).

    The ACK travels the reverse route and reports the measured path
    latency; under destination-based notification it also carries the
    predictive header copied from the data packet (§3.2.2), unless the
    predictive bit says a router already notified the source (§3.4.2).
    """
    ack = Packet(
        src=data.dst,
        dst=data.src,
        size_bytes=size_bytes,
        kind=ACK,
        path=reverse_path,
        created_at=now,
        mpi_type=data.mpi_type,
        mpi_seq=data.mpi_seq,
        acked_msp_index=data.msp_index,
        acked_created_at=data.created_at,
        acked_retx_seq=data.retx_seq,
    )
    ack.path_latency = data.path_latency
    if carry_contending and not data.predictive_bit:
        ack.contending = list(data.contending)
        ack.reporting_router = data.reporting_router
    return ack


def make_predictive_ack(
    router: int,
    target_src: int,
    path: tuple[int, ...],
    contending: list[ContendingFlow],
    queue_latency: float,
    size_bytes: int,
    now: float,
) -> Packet:
    """Build a router-injected predictive ACK (Fig. 3.18, §3.4.1)."""
    pack = Packet(
        src=-1,
        dst=target_src,
        size_bytes=size_bytes,
        kind=PREDICTIVE_ACK,
        path=path,
        created_at=now,
    )
    pack.contending = list(contending)
    pack.reporting_router = router
    pack.path_latency = queue_latency
    return pack
