"""Virtual-channel link arbitration (§2.1.2, §3.2.8).

The paper's deadlock-freedom argument assigns each MSP segment its own
*virtual network* sharing the physical links.  At packet level, the
observable effect of virtual channels is the link **service discipline**:
instead of one FIFO per output port, packets wait in per-VC queues and a
round-robin arbiter interleaves them onto the link — so a long burst on
one flow cannot head-of-line-block other flows sharing the port.

:class:`VCDispatcher` implements that discipline for a fabric when
``NetworkConfig.virtual_channels > 1``.  Packets hash to a VC by flow
(src + dst), approximating the per-virtual-network separation; the
arbiter serves non-empty VCs cyclically, one full packet at a time (VCT
granularity).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, ClassVar

from repro.checkpoint.state import Snapshottable
from repro.network.packet import Packet
from repro.network.router import OutputPort, Router


@dataclass(slots=True)
class _PortVCState(Snapshottable):
    """Arbitration state for one output port."""

    _snapshot_fields_: ClassVar[tuple[str, ...]] = (
        "queues",
        "rr_next",
        "link_free_at",
        "dispatch_scheduled",
    )

    queues: list[deque] = field(default_factory=list)
    rr_next: int = 0
    link_free_at: float = 0.0
    dispatch_scheduled: bool = False

    def pending(self) -> int:
        return sum(len(q) for q in self.queues)


class VCDispatcher(Snapshottable):
    """Round-robin virtual-channel arbiter for every port of a fabric."""

    _snapshot_fields_: ClassVar[tuple[str, ...]] = ("fabric", "num_vcs", "_states")

    def __init__(self, fabric) -> None:
        self.fabric = fabric
        self.num_vcs = fabric.config.virtual_channels
        if self.num_vcs < 2:
            raise ValueError("VCDispatcher needs virtual_channels >= 2")
        self._states: dict[tuple[int, str, int], _PortVCState] = {}

    # ------------------------------------------------------------------
    def _state(self, router: Router, port: OutputPort) -> _PortVCState:
        key = (router.router_id, port.target_kind, port.target)
        state = self._states.get(key)
        if state is None:
            state = _PortVCState(queues=[deque() for _ in range(self.num_vcs)])
            self._states[key] = state
        return state

    def vc_of(self, packet: Packet) -> int:
        """Flow-stable virtual-channel assignment."""
        return (packet.src * 31 + packet.dst) % self.num_vcs

    # ------------------------------------------------------------------
    def submit(
        self,
        router: Router,
        port: OutputPort,
        packet: Packet,
        now: float,
        on_serve: Callable[[Packet, float], None],
    ) -> None:
        """Queue ``packet`` on its VC; ``on_serve(packet, depart)`` fires
        when the arbiter has finished serializing it onto the link."""
        state = self._state(router, port)
        ready = now + self.fabric.config.routing_delay_s
        state.queues[self.vc_of(packet)].append((packet, ready, on_serve))
        self._kick(router, port, state, ready)

    def _kick(self, router: Router, port: OutputPort, state: _PortVCState, t: float) -> None:
        if state.dispatch_scheduled:
            return
        state.dispatch_scheduled = True
        when = max(t, state.link_free_at, self.fabric.sim.now)
        self.fabric.sim.schedule_at(when, self._dispatch, router, port, state)

    # ------------------------------------------------------------------
    def _dispatch(self, router: Router, port: OutputPort, state: _PortVCState) -> None:
        state.dispatch_scheduled = False
        now = self.fabric.sim.now
        if now < state.link_free_at:
            self._kick(router, port, state, state.link_free_at)
            return
        entry = self._next_ready(state, now)
        if entry is None:
            earliest = self._earliest_ready(state)
            if earliest is not None:
                self._kick(router, port, state, earliest)
            return
        packet, ready, on_serve = entry
        wait = now - ready
        tx = self.fabric.config.tx_time_s(packet.size_bytes)
        depart = now + tx
        state.link_free_at = depart
        router.occupy(packet, port, depart, now)
        router.account(packet, port, wait, now)
        on_serve(packet, depart)
        if state.pending():
            self._kick(router, port, state, depart)

    def _next_ready(self, state: _PortVCState, now: float):
        """Pop the next ready packet, scanning VCs round-robin."""
        n = self.num_vcs
        for offset in range(n):
            idx = (state.rr_next + offset) % n
            queue = state.queues[idx]
            if queue and queue[0][1] <= now:
                state.rr_next = (idx + 1) % n
                return queue.popleft()
        return None

    def _earliest_ready(self, state: _PortVCState):
        times = [q[0][1] for q in state.queues if q]
        return min(times) if times else None
