"""Seeded-replay determinism harness.

The predictive claim of the paper is only measurable if a scenario replayed
with the same seed is *bit-identical*: every figure averages repeated
bursts across seeds, and PR-DRB's solution reuse compares congestion
signatures across repetitions.  This module runs a small mesh PR-DRB
scenario N times with the same root seed and diffs two digests per run:

* the **event-trace digest** — a SHA-256 over every executed event's
  ``(time, priority, sequence, callback)`` tuple, captured through
  :attr:`Simulator.event_hook`.  Any divergence in scheduling order or
  timing shows up here first.
* the **metrics digest** — a SHA-256 over the recorder's per-packet
  latencies, windowed series, fabric counters and policy statistics (the
  quantities the evaluation chapter actually plots).

Used three ways: as a CLI (``python -m repro.analysis replay``), as a
tier-1 regression test (``tests/test_determinism_replay.py``), and as a
library (:func:`check_determinism`) for gating future refactors.
"""

from __future__ import annotations

import hashlib
import json
import struct
from dataclasses import dataclass
from typing import ClassVar, Optional, Sequence

from repro.checkpoint.state import Snapshottable

__all__ = [
    "RunDigest",
    "ReplayReport",
    "EventTraceDigest",
    "ScenarioContext",
    "build_scenario",
    "digest_metrics",
    "finish_scenario",
    "run_scenario",
    "check_determinism",
    "main",
]


@dataclass(frozen=True)
class RunDigest:
    """Fingerprint of one complete simulation run."""

    seed: int
    policy: str
    events: str
    metrics: str
    events_executed: int
    packets_delivered: int

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "policy": self.policy,
            "events": self.events,
            "metrics": self.metrics,
            "events_executed": self.events_executed,
            "packets_delivered": self.packets_delivered,
        }


@dataclass(frozen=True)
class ReplayReport:
    """Outcome of replaying one scenario ``runs`` times with one seed."""

    runs: tuple[RunDigest, ...]

    @property
    def deterministic(self) -> bool:
        first = self.runs[0]
        return all(
            r.events == first.events and r.metrics == first.metrics
            for r in self.runs[1:]
        )

    def to_dict(self) -> dict:
        return {
            "deterministic": self.deterministic,
            "runs": [r.to_dict() for r in self.runs],
        }


#: events per chain fold; boundaries depend only on the event *count*,
#: so an interrupted-and-resumed run folds at the same points as an
#: uninterrupted one and the digests stay bit-identical.
_DIGEST_BLOCK_EVENTS = 4096


class EventTraceDigest(Snapshottable):
    """Block-chained SHA-256 over the executed event sequence.

    Event records accumulate in a byte buffer; every
    :data:`_DIGEST_BLOCK_EVENTS` events the buffer is folded into a
    running 32-byte chain value (``chain = sha256(chain + block)``).  The
    final digest is ``sha256(chain + tail)``.  Unlike a streaming
    ``hashlib`` object, the ``(chain, buffer, events)`` triple is plain
    picklable state, so a checkpoint can carry the digest mid-run and a
    restored process continues it exactly (docs/checkpoint.md).
    """

    _snapshot_fields_: ClassVar[tuple[str, ...]] = ("events", "_chain", "_buffer")

    def __init__(self) -> None:
        self.events = 0
        self._chain = b""
        self._buffer = bytearray()

    def install(self, sim) -> "EventTraceDigest":
        sim.add_observer(self.update)
        return self

    def update(self, event) -> None:
        self.events += 1
        fn = event.fn
        label = getattr(fn, "__qualname__", repr(fn))
        buffer = self._buffer
        buffer += struct.pack("<dii", event.time, event.priority, event.sequence)
        buffer += label.encode("utf-8")
        if self.events % _DIGEST_BLOCK_EVENTS == 0:
            self._chain = hashlib.sha256(self._chain + buffer).digest()
            del buffer[:]

    def hexdigest(self) -> str:
        return hashlib.sha256(self._chain + bytes(self._buffer)).hexdigest()


def digest_metrics(fabric, recorder, policy) -> str:
    """Canonical SHA-256 over everything the evaluation would plot.

    Floats are hashed via their exact IEEE-754 bits (``struct.pack``):
    determinism here means *bit*-stability, not approximate equality.
    """
    sha = hashlib.sha256()

    def add_floats(values) -> None:
        for v in values:
            sha.update(struct.pack("<d", float(v)))

    def add_text(text: str) -> None:
        sha.update(text.encode("utf-8"))

    add_text(
        f"injected={fabric.data_packets_injected};"
        f"delivered={fabric.data_packets_delivered};"
        f"bytes={fabric.data_bytes_delivered};"
        f"acks={fabric.acks_delivered};"
        f"packs={fabric.predictive_acks_delivered};"
        f"dropped={fabric.packets_dropped};"
    )
    add_floats(recorder.latencies)
    times, values = recorder.latency_series.finalize()
    add_floats(times)
    add_floats(values)
    add_floats([recorder.global_average_latency_s])
    # Policy statistics: a plain dict of counters/floats; sort for a
    # canonical order and hash floats exactly.
    for key in sorted(policy.stats()):
        value = policy.stats()[key]
        add_text(f"{key}=")
        if isinstance(value, float):
            add_floats([value])
        else:
            add_text(repr(value))
    for router_id in sorted(fabric.contention_map()):
        add_text(f"router{router_id}=")
        add_floats([fabric.contention_map()[router_id]])
    return sha.hexdigest()


@dataclass
class ScenarioContext:
    """A fully built replay scenario: workload started, clock not yet run.

    ``run_scenario`` is ``build_scenario`` → ``sim.run(until)`` →
    ``finish_scenario``; the split exists so :mod:`repro.checkpoint` can
    stop anywhere in the middle, snapshot the live graph, and a restored
    process can finish the run and produce the same :class:`RunDigest`.
    """

    seed: int
    policy: str
    mesh_side: int
    repetitions: int
    until: float
    sim: object
    streams: object
    trace: EventTraceDigest
    recorder: object
    policy_obj: object
    fabric: object
    workload: object
    invariants: object = None

    def checkpoint_roots(self) -> dict:
        """The named object-graph roots a checkpoint payload carries."""
        return {
            "kind": "replay",
            "params": {
                "seed": self.seed,
                "policy": self.policy,
                "mesh_side": self.mesh_side,
                "repetitions": self.repetitions,
            },
            "until": self.until,
            "sim": self.sim,
            "streams": self.streams,
            "trace": self.trace,
            "recorder": self.recorder,
            "policy_obj": self.policy_obj,
            "fabric": self.fabric,
            "workload": self.workload,
        }

    @classmethod
    def from_checkpoint_roots(cls, roots: dict) -> "ScenarioContext":
        params = roots["params"]
        return cls(
            seed=int(params["seed"]),
            policy=str(params["policy"]),
            mesh_side=int(params["mesh_side"]),
            repetitions=int(params["repetitions"]),
            until=float(roots["until"]),
            sim=roots["sim"],
            streams=roots["streams"],
            trace=roots["trace"],
            recorder=roots["recorder"],
            policy_obj=roots["policy_obj"],
            fabric=roots["fabric"],
            workload=roots["workload"],
        )


def build_scenario(
    seed: int = 0,
    policy: str = "pr-drb",
    mesh_side: int = 4,
    repetitions: int = 3,
    with_invariants: bool = False,
    tracer=None,
    metrics=None,
    metrics_cadence_s: float | None = None,
) -> ScenarioContext:
    """Construct (but do not run) the seeded small-mesh hot-spot scenario.

    Construction order is load-bearing: the initial event schedule and
    RNG stream creation must match the historical ``run_scenario`` body
    exactly, or the event digests shift.
    """
    from repro.metrics.recorder import StatsRecorder
    from repro.network.config import NetworkConfig
    from repro.network.fabric import Fabric
    from repro.routing import make_policy
    from repro.sim.engine import Simulator
    from repro.sim.rng import RandomStreams
    from repro.topology.mesh import Mesh2D
    from repro.traffic.bursty import BurstSchedule
    from repro.traffic.generators import HotSpotFlow, HotSpotWorkload

    streams = RandomStreams(seed)
    sim = Simulator()
    trace = EventTraceDigest().install(sim)
    recorder = StatsRecorder(window_s=2.5e-5)
    try:
        policy_obj = make_policy(policy, rng=streams.stream("routing"))
    except TypeError:
        # Policies without a random component (e.g. deterministic).
        policy_obj = make_policy(policy)
    fabric = Fabric(
        Mesh2D(mesh_side),
        NetworkConfig(),
        policy_obj,
        sim,
        recorder=recorder,
        notification="router",
    )
    if tracer is not None or metrics is not None:
        from repro.obs import instrument

        instrument(fabric, tracer, metrics, cadence_s=metrics_cadence_s)
    invariants = None
    if with_invariants:
        from repro.analysis.invariants import DebugInvariants

        invariants = DebugInvariants(fabric).install()

    n = fabric.topology.num_hosts
    # Colliding flows: two columns funnel into the same destination column.
    flows = [
        HotSpotFlow(0, n - mesh_side + 1),
        HotSpotFlow(mesh_side, n - mesh_side + 1),
        HotSpotFlow(1, n - 1),
    ]
    schedule = BurstSchedule(on_s=1.5e-4, off_s=1.5e-4, repetitions=repetitions)
    stop = schedule.end_time()
    workload = HotSpotWorkload(
        fabric,
        flows,
        rate_bps=1.2e9,
        schedule=schedule,
        stop_s=stop,
        noise_hosts=range(n),
        noise_rate_bps=3e7,
        rng=streams.stream("noise"),
        idle_rate_bps=2e8,
    )
    workload.start()
    return ScenarioContext(
        seed=seed,
        policy=policy,
        mesh_side=mesh_side,
        repetitions=repetitions,
        until=stop + 4e-4,
        sim=sim,
        streams=streams,
        trace=trace,
        recorder=recorder,
        policy_obj=policy_obj,
        fabric=fabric,
        workload=workload,
        invariants=invariants,
    )


def finish_scenario(context: ScenarioContext) -> RunDigest:
    """Digest a scenario whose clock has reached ``context.until``."""
    if context.invariants is not None:
        context.invariants.check()
    return RunDigest(
        seed=context.seed,
        policy=context.policy,
        events=context.trace.hexdigest(),
        metrics=digest_metrics(context.fabric, context.recorder, context.policy_obj),
        events_executed=context.sim.events_executed,
        packets_delivered=context.fabric.data_packets_delivered,
    )


def run_scenario(
    seed: int = 0,
    policy: str = "pr-drb",
    mesh_side: int = 4,
    repetitions: int = 3,
    with_invariants: bool = False,
    tracer=None,
    metrics=None,
    metrics_cadence_s: float | None = None,
) -> RunDigest:
    """One complete small-mesh hot-spot run, fully seeded, digested.

    A ``mesh_side`` x ``mesh_side`` mesh carries three colliding flows plus
    uniform background noise through repeated bursts — small enough for a
    sub-second run, busy enough to exercise ACK notification, metapath
    expansion and (for ``pr-drb``) solution save/replay.

    ``tracer``/``metrics`` install :mod:`repro.obs` observation on the
    run.  Observation never perturbs behavior, so the returned digests
    are identical with or without it — ``repro.obs selftest`` checks
    exactly that through this entry point.
    """
    context = build_scenario(
        seed=seed,
        policy=policy,
        mesh_side=mesh_side,
        repetitions=repetitions,
        with_invariants=with_invariants,
        tracer=tracer,
        metrics=metrics,
        metrics_cadence_s=metrics_cadence_s,
    )
    context.sim.run(until=context.until)
    return finish_scenario(context)


def check_determinism(
    seed: int = 0,
    runs: int = 2,
    policy: str = "pr-drb",
    mesh_side: int = 4,
    repetitions: int = 3,
) -> ReplayReport:
    """Replay the scenario ``runs`` times with one seed; diff the digests."""
    if runs < 2:
        raise ValueError("need at least 2 runs to compare")
    digests = tuple(
        run_scenario(
            seed=seed, policy=policy, mesh_side=mesh_side, repetitions=repetitions
        )
        for _ in range(runs)
    )
    return ReplayReport(runs=digests)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI: ``python -m repro.analysis replay [--seed N] [--runs K]``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis replay",
        description="Seeded-replay determinism harness: run a small mesh "
        "PR-DRB scenario repeatedly and diff event/metric digests.",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--runs", type=int, default=2)
    parser.add_argument("--policy", default="pr-drb")
    parser.add_argument("--mesh-side", type=int, default=4)
    parser.add_argument("--json", action="store_true")
    args = parser.parse_args(argv)
    if args.runs < 2:
        parser.error("--runs must be at least 2 to compare digests")

    report = check_determinism(
        seed=args.seed, runs=args.runs, policy=args.policy, mesh_side=args.mesh_side
    )
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        for i, run in enumerate(report.runs):
            print(
                f"run {i}: events={run.events[:16]}… metrics={run.metrics[:16]}… "
                f"({run.events_executed} events, {run.packets_delivered} delivered)"
            )
        verdict = "DETERMINISTIC" if report.deterministic else "NON-DETERMINISTIC"
        print(f"{verdict}: seed={args.seed} policy={args.policy} runs={args.runs}")
    return 0 if report.deterministic else 1
