"""Determinism lints: AST rules tuned to this simulator.

Every rule guards a way simulations silently stop being reproducible:

``no-ambient-rng``
    Any ``np.random.*`` call or ``random`` import outside
    ``repro/sim/rng.py``.  All randomness must flow through
    :class:`~repro.sim.rng.RandomStreams` or
    :func:`~repro.sim.rng.seeded_generator` so each draw is traceable to
    an explicit root seed.
``no-wall-clock``
    ``time.time`` / ``perf_counter`` / ``datetime.now`` and friends in
    model code.  Simulated time is ``Simulator.now``; wall-clock readings
    differ per run and per host.
``no-salted-hash``
    The builtin ``hash()``.  Python salts string hashes per process
    (PYTHONHASHSEED), so hash-derived values change between runs; use
    :func:`~repro.sim.rng.stable_hash` (FNV-1a) instead.
``no-unordered-iteration``
    Iterating a ``set`` where the visit order can leak into behaviour
    (``for`` loops, ``list()``/``tuple()``/``join`` materialisation, list
    comprehensions), or iterating a dict view inside a loop body that
    schedules or injects work.  Wrap the set in ``sorted(...)``.
    Order-insensitive folds (``len``/``sum``/``min``/``max``/``any``/
    ``all``/membership) are fine and not flagged.
``no-float-eq``
    Direct ``==``/``!=`` against a non-integral float literal, or between
    two latency/threshold-named quantities.  Accumulated float state is
    not exactly comparable; use an ordering test or an explicit tolerance.
    Integral-valued literals (``0.0``, ``-1.0`` sentinels) are allowed.

A violation is suppressed by a trailing ``# repro: allow(<rule>)`` comment
on the statement's first line (several rules comma-separated).  See
``docs/invariants.md`` for the full catalogue and rationale.
"""

from __future__ import annotations

import ast
import json
import re
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional, Sequence

__all__ = [
    "ALL_RULES",
    "Violation",
    "allowed_rules",
    "lint_source",
    "lint_source_tracked",
    "lint_file",
    "lint_file_tracked",
    "lint_paths",
    "main",
]


@dataclass(frozen=True)
class Violation:
    """One rule hit at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"


_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\(([^)]*)\)")

#: wall-clock call sites, matched by dotted-name suffix.
_WALL_CLOCK_SUFFIXES = (
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "date.today",
)

#: names importable from ``time`` that read the wall clock.
_WALL_CLOCK_FROM_TIME = {
    "time",
    "time_ns",
    "monotonic",
    "monotonic_ns",
    "perf_counter",
    "perf_counter_ns",
    "process_time",
}

#: builtins that fold an iterable without exposing its order.
_ORDER_INSENSITIVE = {"len", "sum", "min", "max", "any", "all", "sorted", "frozenset", "set"}

#: set methods whose result is again a set.
_SET_PRODUCING_METHODS = {"union", "intersection", "difference", "symmetric_difference", "copy"}

#: callees whose result order follows the argument's iteration order.
_ORDER_MATERIALISING = {"list", "tuple"}

#: method calls inside a loop body that make iteration order behavioural.
_SCHEDULING_METHODS = {"schedule", "schedule_at", "send", "inject", "submit"}


def _dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for an Attribute/Name chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def allowed_rules(source: str) -> dict[int, set[str]]:
    """Map line number -> rule names suppressed on that line.

    Shared by the per-file lints, the contract passes
    (:mod:`repro.analysis.contracts`), and the unused-suppression audit
    (:func:`repro.analysis.reporting.audit_pragmas`) — one pragma syntax,
    one parser.  Only genuine ``#`` comment tokens count: a pragma-shaped
    string inside a docstring documents the syntax, it doesn't invoke it.
    """
    import io
    import tokenize

    allowed: dict[int, set[str]] = {}

    def add(lineno: int, text: str) -> None:
        match = _ALLOW_RE.search(text)
        if match:
            rules = {part.strip() for part in match.group(1).split(",") if part.strip()}
            if rules:
                allowed.setdefault(lineno, set()).update(rules)

    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                add(token.start[0], token.string)
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # Unparseable tail (rare; lint will surface the SyntaxError) —
        # fall back to the line-based scan so pragmas still work.
        allowed.clear()
        for lineno, line in enumerate(source.splitlines(), start=1):
            add(lineno, line)
    return allowed


#: backwards-compatible private alias (pre-contracts name).
_allowed_rules = allowed_rules


class _Rule:
    """Base class: one named check over a parsed module."""

    name = "rule"
    summary = ""

    def check(self, tree: ast.Module, path: str) -> list[Violation]:
        raise NotImplementedError

    def _violation(self, node: ast.AST, path: str, message: str) -> Violation:
        return Violation(
            rule=self.name,
            path=path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


class NoAmbientRng(_Rule):
    name = "no-ambient-rng"
    summary = "ambient numpy/stdlib RNG outside repro/sim/rng.py"

    _EXEMPT_SUFFIX = ("sim", "rng.py")

    def _exempt(self, path: str) -> bool:
        return Path(path).parts[-2:] == self._EXEMPT_SUFFIX

    def check(self, tree: ast.Module, path: str) -> list[Violation]:
        if self._exempt(path):
            return []
        out: list[Violation] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        out.append(
                            self._violation(
                                node,
                                path,
                                "import of the stdlib `random` module; route draws "
                                "through repro.sim.rng.RandomStreams",
                            )
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    out.append(
                        self._violation(
                            node,
                            path,
                            "import from the stdlib `random` module; route draws "
                            "through repro.sim.rng.RandomStreams",
                        )
                    )
            elif isinstance(node, ast.Call):
                dotted = _dotted_name(node.func)
                if dotted is None:
                    continue
                parts = dotted.split(".")
                if (
                    len(parts) >= 3
                    and parts[0] in ("np", "numpy")
                    and parts[1] == "random"
                ):
                    out.append(
                        self._violation(
                            node,
                            path,
                            f"ambient `{dotted}(...)`; inject a Generator from "
                            "RandomStreams.stream(...) or call "
                            "repro.sim.rng.seeded_generator(seed)",
                        )
                    )
                elif parts[0] == "random" and len(parts) == 2:
                    out.append(
                        self._violation(
                            node,
                            path,
                            f"stdlib `{dotted}(...)`; route draws through "
                            "repro.sim.rng.RandomStreams",
                        )
                    )
        return out


class NoWallClock(_Rule):
    name = "no-wall-clock"
    summary = "wall-clock reads in model code"

    def check(self, tree: ast.Module, path: str) -> list[Violation]:
        out: list[Violation] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                dotted = _dotted_name(node.func)
                if dotted is None:
                    continue
                for suffix in _WALL_CLOCK_SUFFIXES:
                    if dotted == suffix or dotted.endswith("." + suffix):
                        out.append(
                            self._violation(
                                node,
                                path,
                                f"wall-clock read `{dotted}()`; model code must use "
                                "the simulation clock (Simulator.now)",
                            )
                        )
                        break
            elif isinstance(node, ast.ImportFrom) and node.module == "time":
                bad = [a.name for a in node.names if a.name in _WALL_CLOCK_FROM_TIME]
                if bad:
                    out.append(
                        self._violation(
                            node,
                            path,
                            f"imports wall-clock reader(s) {bad} from `time`; model "
                            "code must use the simulation clock (Simulator.now)",
                        )
                    )
        return out


class NoSaltedHash(_Rule):
    name = "no-salted-hash"
    summary = "builtin hash() feeding simulation state"

    def check(self, tree: ast.Module, path: str) -> list[Violation]:
        out: list[Violation] = []
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "hash"
            ):
                out.append(
                    self._violation(
                        node,
                        path,
                        "builtin hash() is salted per process (PYTHONHASHSEED); "
                        "use repro.sim.rng.stable_hash for reproducible hashing",
                    )
                )
        return out


class NoUnorderedIteration(_Rule):
    name = "no-unordered-iteration"
    summary = "behaviour depending on set iteration order"

    def check(self, tree: ast.Module, path: str) -> list[Violation]:
        out: list[Violation] = []
        self._scan_scope(tree.body, set(), path, out)
        return out

    # -- scope walking --------------------------------------------------
    def _scan_scope(
        self,
        body: Sequence[ast.stmt],
        known_sets: set[str],
        path: str,
        out: list[Violation],
    ) -> None:
        """Walk one scope's statements in order, tracking set-typed names."""
        known = set(known_sets)
        for stmt in body:
            self._scan_stmt(stmt, known, path, out)

    def _scan_stmt(
        self, stmt: ast.stmt, known: set[str], path: str, out: list[Violation]
    ) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # New scope; parameters are unknown, module-level sets visible.
            self._scan_scope(stmt.body, known, path, out)
            return
        if isinstance(stmt, ast.ClassDef):
            self._scan_scope(stmt.body, known, path, out)
            return
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            self._track_binding(stmt, known)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            if self._is_set_expr(stmt.iter, known):
                out.append(
                    self._violation(
                        stmt,
                        path,
                        "for-loop over an unordered set; wrap the iterable in "
                        "sorted(...) so visit order is reproducible",
                    )
                )
            elif self._is_dict_view(stmt.iter) and self._body_schedules(stmt.body):
                out.append(
                    self._violation(
                        stmt,
                        path,
                        "loop over a dict view whose body schedules/injects work; "
                        "make the iteration order explicit (sorted(...) or a list)",
                    )
                )
        # Expressions belonging to *this* statement (nested statements are
        # visited by the recursion below, so don't walk into them here —
        # that would report the same violation once per ancestor).
        for node in self._own_expressions(stmt):
            if isinstance(node, (ast.ListComp, ast.GeneratorExp)):
                for gen in node.generators:
                    if self._is_set_expr(gen.iter, known):
                        out.append(
                            self._violation(
                                node,
                                path,
                                "comprehension over an unordered set produces an "
                                "ordered result; wrap the source in sorted(...)",
                            )
                        )
            elif isinstance(node, ast.Call):
                callee = node.func
                if (
                    isinstance(callee, ast.Name)
                    and callee.id in _ORDER_MATERIALISING
                    and len(node.args) == 1
                    and self._is_set_expr(node.args[0], known)
                ):
                    out.append(
                        self._violation(
                            node,
                            path,
                            f"{callee.id}(...) materialises a set in arbitrary "
                            "order; use sorted(...)",
                        )
                    )
                elif (
                    isinstance(callee, ast.Attribute)
                    and callee.attr == "join"
                    and len(node.args) == 1
                    and self._is_set_expr(node.args[0], known)
                ):
                    out.append(
                        self._violation(
                            node,
                            path,
                            "str.join over a set concatenates in arbitrary order; "
                            "use sorted(...)",
                        )
                    )
        # Recurse into nested blocks (conditionals/loops share the scope).
        for field in ("body", "orelse", "finalbody"):
            sub = getattr(stmt, field, None)
            if sub and not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                for inner in sub:
                    if isinstance(inner, ast.stmt):
                        self._scan_stmt(inner, known, path, out)
        for handler in getattr(stmt, "handlers", []) or []:
            for inner in handler.body:
                self._scan_stmt(inner, known, path, out)

    def _track_binding(self, stmt: ast.stmt, known: set[str]) -> None:
        if isinstance(stmt, ast.AugAssign):
            return  # |= etc. on a known set keeps it a set; nothing to do
        targets: list[ast.expr]
        value: Optional[ast.expr]
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        else:  # AnnAssign
            targets, value = [stmt.target], stmt.value
        if value is None:
            return
        is_set = self._is_set_expr(value, known)
        for target in targets:
            if isinstance(target, ast.Name):
                if is_set:
                    known.add(target.id)
                else:
                    known.discard(target.id)

    # -- expression classification --------------------------------------
    def _is_set_expr(self, node: ast.expr, known: set[str]) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in known
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and node.func.id in ("set", "frozenset"):
                return True
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _SET_PRODUCING_METHODS
                and self._is_set_expr(node.func.value, known)
            ):
                return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
        ):
            return self._is_set_expr(node.left, known) or self._is_set_expr(
                node.right, known
            )
        return False

    @staticmethod
    def _own_expressions(stmt: ast.stmt):
        """Expression nodes of ``stmt``, excluding nested statements."""
        stack = [c for c in ast.iter_child_nodes(stmt) if not isinstance(c, ast.stmt)]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(
                c for c in ast.iter_child_nodes(node) if not isinstance(c, ast.stmt)
            )

    @staticmethod
    def _is_dict_view(node: ast.expr) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("keys", "values", "items")
            and not node.args
            and not node.keywords
        )

    @staticmethod
    def _body_schedules(body: Sequence[ast.stmt]) -> bool:
        for stmt in body:
            for node in ast.walk(stmt):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _SCHEDULING_METHODS
                ):
                    return True
        return False


class NoFloatEq(_Rule):
    name = "no-float-eq"
    summary = "exact equality on accumulated floats"

    _NAME_HINT = re.compile(r"latency|threshold", re.IGNORECASE)

    def check(self, tree: ast.Module, path: str) -> list[Violation]:
        out: list[Violation] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for i, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left, right = operands[i], operands[i + 1]
                if self._non_integral_float(left) or self._non_integral_float(right):
                    out.append(
                        self._violation(
                            node,
                            path,
                            "exact ==/!= against a non-integral float literal; "
                            "use an ordering test or an explicit tolerance",
                        )
                    )
                elif self._latency_name(left) and self._latency_name(right):
                    out.append(
                        self._violation(
                            node,
                            path,
                            "exact ==/!= between latency/threshold quantities; "
                            "accumulated floats are not exactly comparable",
                        )
                    )
        return out

    @staticmethod
    def _non_integral_float(node: ast.expr) -> bool:
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
            node = node.operand
        return (
            isinstance(node, ast.Constant)
            and isinstance(node.value, float)
            and node.value != int(node.value)
        )

    @classmethod
    def _latency_name(cls, node: ast.expr) -> bool:
        if isinstance(node, ast.Call):
            node = node.func
        terminal: Optional[str] = None
        if isinstance(node, ast.Attribute):
            terminal = node.attr
        elif isinstance(node, ast.Name):
            terminal = node.id
        return terminal is not None and bool(cls._NAME_HINT.search(terminal))


ALL_RULES: dict[str, _Rule] = {
    rule.name: rule
    for rule in (
        NoAmbientRng(),
        NoWallClock(),
        NoSaltedHash(),
        NoUnorderedIteration(),
        NoFloatEq(),
    )
}


# ----------------------------------------------------------------------
# Drivers
# ----------------------------------------------------------------------
def lint_source_tracked(
    source: str,
    path: str = "<string>",
    rules: Optional[Iterable[str]] = None,
) -> tuple[list[Violation], list[Violation]]:
    """Lint one module; returns ``(unsuppressed, pragma-suppressed)``.

    The suppressed list is what the unused-suppression audit consumes: a
    pragma that appears in no suppressed violation is stale.
    """
    tree = ast.parse(source, filename=path)
    allowed = allowed_rules(source)
    selected = [ALL_RULES[name] for name in (rules or ALL_RULES)]
    violations: list[Violation] = []
    suppressed: list[Violation] = []
    for rule in selected:
        for violation in rule.check(tree, path):
            if violation.rule in allowed.get(violation.line, set()):
                suppressed.append(violation)
            else:
                violations.append(violation)
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    suppressed.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return violations, suppressed


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Iterable[str]] = None,
) -> list[Violation]:
    """Lint one module's source; returns unsuppressed violations."""
    return lint_source_tracked(source, path=path, rules=rules)[0]


def lint_file_tracked(
    path: str, rules: Optional[Iterable[str]] = None
) -> tuple[list[Violation], list[Violation]]:
    source = Path(path).read_text(encoding="utf-8")
    return lint_source_tracked(source, path=str(path), rules=rules)


def lint_file(path: str, rules: Optional[Iterable[str]] = None) -> list[Violation]:
    return lint_file_tracked(path, rules=rules)[0]


def _python_files(paths: Sequence[str]) -> list[Path]:
    files: list[Path] = []
    for entry in paths:
        p = Path(entry)
        if not p.exists():
            raise FileNotFoundError(f"no such file or directory: {entry}")
        if p.is_dir():
            files.extend(
                f
                for f in sorted(p.rglob("*.py"))
                if "__pycache__" not in f.parts
            )
        elif p.suffix == ".py":
            files.append(p)
    return files


def lint_paths(
    paths: Sequence[str], rules: Optional[Iterable[str]] = None
) -> list[Violation]:
    """Lint every ``.py`` file under ``paths`` (files or directories)."""
    violations: list[Violation] = []
    for file in _python_files(paths):
        violations.extend(lint_file(str(file), rules=rules))
    return violations


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI: ``python -m repro.analysis [paths...] [--format F] [--rule NAME]
    [--baseline FILE] [--prune-pragmas]``."""
    import argparse

    from repro.analysis.reporting import (
        Baseline,
        audit_pragmas,
        render_json,
        render_sarif,
        render_text,
    )

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Determinism lints for the PR-DRB simulator.",
    )
    parser.add_argument("paths", nargs="*", default=["src"], help="files or directories")
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default=None,
        help="output format (default: text)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="machine-readable output (alias for --format json)",
    )
    parser.add_argument("--out", help="write the report to this file instead of stdout")
    parser.add_argument(
        "--baseline",
        help="ratchet baseline JSON; findings it covers don't fail the run",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    parser.add_argument(
        "--prune-pragmas",
        action="store_true",
        help=(
            "audit `# repro: allow(...)` pragmas across lint AND contract "
            "rules; list the stale ones and exit 1 when any exist"
        ),
    )
    parser.add_argument(
        "--rule",
        action="append",
        dest="rule_names",
        choices=sorted(ALL_RULES),
        help="run only this rule (repeatable)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for name in sorted(ALL_RULES):
            print(f"{name}: {ALL_RULES[name].summary}")
        return 0

    if args.prune_pragmas:
        try:
            stale = audit_pragmas(args.paths or ["src"])
        except FileNotFoundError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        for pragma in stale:
            print(pragma.render())
        label = "stale pragma" if len(stale) == 1 else "stale pragmas"
        print(f"{len(stale)} {label}")
        return 1 if stale else 0

    try:
        files = _python_files(args.paths or ["src"])
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    violations = [v for file in files for v in lint_file(str(file), rules=args.rule_names)]
    files_checked = len(files)

    if args.update_baseline:
        if not args.baseline:
            print("error: --update-baseline requires --baseline FILE", file=sys.stderr)
            return 2
        Baseline.from_violations(violations).save(args.baseline)
        print(f"wrote {args.baseline} ({len(violations)} findings ratcheted)")
        return 0

    failing = violations
    absorbed = 0
    if args.baseline:
        try:
            delta = Baseline.load(args.baseline).compare(violations)
        except (OSError, ValueError, KeyError) as exc:
            print(f"error: bad baseline {args.baseline}: {exc}", file=sys.stderr)
            return 2
        failing = delta.new
        absorbed = delta.suppressed

    fmt = args.format or ("json" if args.json else "text")
    if fmt == "sarif":
        catalogue = {name: rule.summary for name, rule in ALL_RULES.items()}
        rendered = render_sarif(failing, catalogue)
    elif fmt == "json":
        rendered = render_json(failing, files_checked)
    else:
        rendered = render_text(failing, files_checked)
        if absorbed:
            rendered += f"\n{absorbed} finding(s) absorbed by baseline {args.baseline}"

    if args.out:
        Path(args.out).write_text(rendered + "\n", encoding="utf-8")
        print(f"wrote {args.out}")
    else:
        print(rendered)
    return 1 if failing else 0
