"""shard-safety: cross-shard handoff payloads use the snapshot protocol.

Sharded runs (docs/sharding.md) move events between worker processes at
window barriers; everything inside those messages must serialize through
the explicit Snapshottable protocol, never through ad-hoc pickling of
closures or open ``__dict__`` classes — a payload that pickles by
accident in one Python version is a silent wire-format hazard in the
next.  The runtime enforces this per message
(:func:`repro.shard.protocol.check_handoff_payload`); this pass
cross-checks the declarations statically:

* every entry of a ``HANDOFF_PAYLOAD_TYPES`` tuple resolves to a class
  that descends from ``Snapshottable`` (lambdas, calls, or unresolvable
  names are findings);
* ``Handoff(...)`` construction sites never pass a lambda — a closure
  cannot cross a spawn boundary;
* ``apply_arrival(...)`` / ``alloc_handoff_rank(...)`` call sites (the
  two places a callable is associated with a cross-shard operation)
  never pass a lambda either: the receiving shard rebinds the callable
  to its *own* fabric, so only named methods make sense there.

Suppress with ``# repro: allow(shard-safety)`` only for payload types
whose Snapshottable declaration lives outside the analyzed roots.
"""

from __future__ import annotations

import ast

from repro.analysis.contracts.graph import ModuleGraph, ModuleInfo
from repro.analysis.lint import Violation

__all__ = ["ShardSafetyPass"]

RULE = "shard-safety"

_REGISTRY = "HANDOFF_PAYLOAD_TYPES"
_SNAPSHOT_ROOT = "Snapshottable"
#: calls whose arguments associate callables/payloads with a handoff.
_HANDOFF_CALLS = {"Handoff", "apply_arrival", "alloc_handoff_rank"}


def _violation(path: str, node: ast.AST, message: str) -> Violation:
    return Violation(
        rule=RULE,
        path=path,
        line=getattr(node, "lineno", 0),
        col=getattr(node, "col_offset", 0),
        message=message,
    )


class ShardSafetyPass:
    name = RULE
    summary = "cross-shard handoff payloads outside the Snapshottable protocol"

    def check(self, graph: ModuleGraph) -> list[Violation]:
        out: list[Violation] = []
        for module in sorted(graph.modules.values(), key=lambda m: m.path):
            self._check_registry(module, graph, out)
            self._check_handoff_sites(module, out)
        return out

    # -- the declared payload whitelist ---------------------------------
    def _check_registry(
        self, module: ModuleInfo, graph: ModuleGraph, out: list[Violation]
    ) -> None:
        for stmt in module.tree.body:
            if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                continue
            targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            if not any(isinstance(t, ast.Name) and t.id == _REGISTRY for t in targets):
                continue
            value = stmt.value
            if not isinstance(value, (ast.Tuple, ast.List)):
                out.append(
                    _violation(
                        module.path,
                        stmt,
                        f"{_REGISTRY} must be a literal tuple of class names "
                        "so the payload whitelist is statically auditable",
                    )
                )
                continue
            for entry in value.elts:
                self._check_payload_type(module, graph, entry, out)

    def _check_payload_type(
        self,
        module: ModuleInfo,
        graph: ModuleGraph,
        entry: ast.expr,
        out: list[Violation],
    ) -> None:
        if not isinstance(entry, ast.Name):
            out.append(
                _violation(
                    module.path,
                    entry,
                    f"{_REGISTRY} entry is not a plain class name; only "
                    "Snapshottable-declared classes may cross a shard boundary",
                )
            )
            return
        cls = graph.resolve_class(entry.id, module)
        if cls is None:
            out.append(
                _violation(
                    module.path,
                    entry,
                    f"{_REGISTRY} entry `{entry.id}` does not resolve to a "
                    "class in the analyzed tree; its snapshot contract cannot "
                    "be verified",
                )
            )
            return
        if cls.name == _SNAPSHOT_ROOT:
            return
        bases, _unresolved = graph.base_classes(cls)
        if not any(base.name == _SNAPSHOT_ROOT for base in bases):
            out.append(
                _violation(
                    module.path,
                    entry,
                    f"{_REGISTRY} entry `{entry.id}` is not Snapshottable-"
                    "declared; handoff payloads must serialize through the "
                    "snapshot protocol (docs/sharding.md)",
                )
            )

    # -- construction / scheduling sites --------------------------------
    def _check_handoff_sites(self, module: ModuleInfo, out: list[Violation]) -> None:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            called = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr
                if isinstance(func, ast.Attribute)
                else None
            )
            if called not in _HANDOFF_CALLS:
                continue
            for arg in [*node.args, *[kw.value for kw in node.keywords]]:
                if isinstance(arg, ast.Lambda):
                    out.append(
                        _violation(
                            module.path,
                            arg,
                            f"lambda passed to {called}(); closures cannot "
                            "cross a shard process boundary — use a named "
                            "method the receiving shard can rebind",
                        )
                    )
