"""frozen-stats-keys: policy stats() key sets are append-only.

Replay metric digests (:mod:`repro.analysis.replay`) hash the metrics
dict of every run; ``PolicyRun.to_dict`` and the parallel result cache
serialize ``stats()`` verbatim.  Removing or renaming a ``stats()`` key
therefore breaks replay digests, invalidates every cached sweep cell's
comparability, and silently changes report columns.  The contract:
**key sets may grow, never shrink**, versus a committed manifest
(``stats_manifest.json``).

The pass evaluates each ``stats()`` method *symbolically* — dict
literals, ``out = super().stats()`` chains, ``out["k"] = v`` stores,
``out.update({...})`` and ``out.update(self.helper())`` merges — and
compares the resulting key set per class against the manifest:

* a manifest key the method no longer produces → violation (the freeze);
* a produced key missing from the manifest → violation prompting a
  deliberate, reviewed manifest append (``check --update-manifest``);
* a manifest class that disappeared → violation.

Methods using dynamic keys (f-strings, ``**expr`` of unknown shape) are
recorded as ``dynamic`` and exempted from key comparison.
"""

from __future__ import annotations

import ast
import json
from pathlib import Path
from typing import Optional

from repro.analysis.contracts.graph import ClassInfo, ModuleGraph
from repro.analysis.lint import Violation

__all__ = ["FrozenStatsKeysPass", "extract_stats_keys", "build_manifest"]

RULE = "frozen-stats-keys"
MANIFEST_VERSION = 1

#: method name whose return-dict keys are frozen.
_STATS_METHOD = "stats"


class _KeySet:
    """Key-set lattice element: a set of keys plus a dynamic flag."""

    def __init__(self) -> None:
        self.keys: set[str] = set()
        self.dynamic = False

    def merge(self, other: "_KeySet") -> None:
        self.keys |= other.keys
        self.dynamic = self.dynamic or other.dynamic


def _keys_of_dict_literal(node: ast.Dict, result: _KeySet) -> None:
    for key in node.keys:
        if key is None:
            # ``{**expr}`` — unknown shape.
            result.dynamic = True
        elif isinstance(key, ast.Constant) and isinstance(key.value, str):
            result.keys.add(key.value)
        else:
            result.dynamic = True


def _method_chain(cls: ClassInfo, graph: ModuleGraph) -> list[ClassInfo]:
    """cls plus its resolvable bases, nearest first."""
    chain = [cls]
    bases, _ = graph.base_classes(cls)
    chain.extend(bases)
    return chain


def extract_stats_keys(
    cls: ClassInfo, graph: ModuleGraph, method: str = _STATS_METHOD
) -> Optional[_KeySet]:
    """Symbolically evaluate ``cls.<method>()``'s returned dict keys.

    Returns None when the class (and its bases) do not define the method.
    """
    fn = graph.resolve_method(cls, method)
    if fn is None:
        return None
    result = _KeySet()
    #: local var name -> keys accumulated into it.
    vars_: dict[str, _KeySet] = {}

    def eval_expr(node: ast.expr) -> _KeySet:
        ks = _KeySet()
        if isinstance(node, ast.Dict):
            _keys_of_dict_literal(node, ks)
            return ks
        if isinstance(node, ast.Call):
            func = node.func
            # dict(a=1, b=2)
            if isinstance(func, ast.Name) and func.id == "dict":
                if node.args:
                    ks.dynamic = True
                for kw in node.keywords:
                    if kw.arg is None:
                        ks.dynamic = True
                    else:
                        ks.keys.add(kw.arg)
                return ks
            # super().stats() / super().m()
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Call)
                and isinstance(func.value.func, ast.Name)
                and func.value.func.id == "super"
            ):
                module = graph.modules.get(cls.module)
                parent: Optional[ClassInfo] = None
                if module is not None:
                    for base in cls.bases:
                        parent = graph.resolve_class(base, module)
                        if parent is not None:
                            break
                if parent is None:
                    ks.dynamic = True
                    return ks
                inner = extract_stats_keys(parent, graph, func.attr)
                if inner is None:
                    ks.dynamic = True
                    return ks
                return inner
            # self.helper()
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "self"
            ):
                inner = extract_stats_keys(cls, graph, func.attr)
                if inner is None:
                    ks.dynamic = True
                    return ks
                return inner
            ks.dynamic = True
            return ks
        if isinstance(node, ast.Name):
            known = vars_.get(node.id)
            if known is not None:
                out = _KeySet()
                out.merge(known)
                return out
            ks.dynamic = True
            return ks
        ks.dynamic = True
        return ks

    for node in ast.walk(fn.node):
        if isinstance(node, ast.Return) and node.value is not None:
            result.merge(eval_expr(node.value))
        elif isinstance(node, ast.Assign):
            value_keys = eval_expr(node.value)
            for target in node.targets:
                if isinstance(target, ast.Name):
                    fresh = _KeySet()
                    fresh.merge(value_keys)
                    vars_[target.id] = fresh
                elif (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in vars_
                ):
                    key = target.slice
                    if isinstance(key, ast.Constant) and isinstance(key.value, str):
                        vars_[target.value.id].keys.add(key.value)
                    else:
                        vars_[target.value.id].dynamic = True
        elif isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
            call = node.value
            func = call.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "update"
                and isinstance(func.value, ast.Name)
                and func.value.id in vars_
            ):
                if call.args:
                    vars_[func.value.id].merge(eval_expr(call.args[0]))
                for kw in call.keywords:
                    if kw.arg is None:
                        vars_[func.value.id].dynamic = True
                    else:
                        vars_[func.value.id].keys.add(kw.arg)
    return result


# ----------------------------------------------------------------------
# Manifest
# ----------------------------------------------------------------------
def _stats_classes(graph: ModuleGraph) -> dict[str, ClassInfo]:
    """Classes that *define* a stats() method directly (not inherited)."""
    return {
        cls.qualname: cls
        for cls in graph.classes.values()
        if _STATS_METHOD in cls.methods
    }


def build_manifest(graph: ModuleGraph) -> dict:
    """Manifest document for the current tree's stats() key sets."""
    classes: dict[str, dict] = {}
    for qualname, cls in sorted(_stats_classes(graph).items()):
        ks = extract_stats_keys(cls, graph)
        if ks is None:
            continue
        classes[qualname] = {
            "keys": sorted(ks.keys),
            "dynamic": ks.dynamic,
        }
    return {"version": MANIFEST_VERSION, "classes": classes}


class FrozenStatsKeysPass:
    name = RULE
    summary = "stats() keys removed or uncommitted versus the manifest"

    def __init__(self, manifest_path: Optional[str | Path] = None) -> None:
        self.manifest_path = manifest_path

    def check(self, graph: ModuleGraph) -> list[Violation]:
        if self.manifest_path is None or not Path(self.manifest_path).exists():
            return []  # no committed manifest: nothing is frozen yet
        manifest = json.loads(Path(self.manifest_path).read_text(encoding="utf-8"))
        if manifest.get("version") != MANIFEST_VERSION:
            raise ValueError(
                f"unsupported stats manifest version {manifest.get('version')!r}"
            )
        committed: dict[str, dict] = manifest.get("classes", {})
        out: list[Violation] = []
        current = _stats_classes(graph)

        for qualname, entry in sorted(committed.items()):
            cls = current.get(qualname)
            if cls is None:
                out.append(
                    Violation(
                        rule=RULE,
                        path=str(self.manifest_path),
                        line=1,
                        col=0,
                        message=(
                            f"manifest class {qualname} no longer defines "
                            "stats(); removing a stats surface breaks replay "
                            "digests and cached sweep comparability"
                        ),
                    )
                )
                continue
            ks = extract_stats_keys(cls, graph)
            if ks is None or ks.dynamic or entry.get("dynamic"):
                continue  # dynamic key sets are exempt from the freeze
            have = set(ks.keys)
            frozen = set(entry.get("keys", []))
            method = cls.methods[_STATS_METHOD]
            for missing in sorted(frozen - have):
                out.append(
                    Violation(
                        rule=RULE,
                        path=graph.modules[cls.module].path,
                        line=method.lineno,
                        col=0,
                        message=(
                            f"{cls.name}.stats() dropped committed key "
                            f"'{missing}'; stats key sets are append-only"
                        ),
                    )
                )
            for added in sorted(have - frozen):
                out.append(
                    Violation(
                        rule=RULE,
                        path=graph.modules[cls.module].path,
                        line=method.lineno,
                        col=0,
                        message=(
                            f"{cls.name}.stats() adds key '{added}' not in "
                            "the committed manifest; append it via "
                            "`python -m repro.analysis check --update-manifest`"
                        ),
                    )
                )

        for qualname, cls in sorted(current.items()):
            if qualname in committed:
                continue
            ks = extract_stats_keys(cls, graph)
            if ks is None:
                continue
            method = cls.methods[_STATS_METHOD]
            out.append(
                Violation(
                    rule=RULE,
                    path=graph.modules[cls.module].path,
                    line=method.lineno,
                    col=0,
                    message=(
                        f"{cls.name}.stats() is not in the committed manifest; "
                        "register it via `python -m repro.analysis check "
                        "--update-manifest`"
                    ),
                )
            )
        return out
