"""CLI driver for ``python -m repro.analysis check``.

Runs the contract passes over the analyzed roots, compares findings
against the ratchet baseline, and renders text/JSON/SARIF.  Exit codes:

* 0 — no findings beyond the baseline;
* 1 — new findings (or any findings when no baseline is given);
* 2 — usage/environment errors.

Typical invocations::

    python -m repro.analysis check                     # src/repro, text
    python -m repro.analysis check --format sarif --out contracts.sarif
    python -m repro.analysis check --baseline analysis_baseline.json
    python -m repro.analysis check --update-baseline   # re-ratchet
    python -m repro.analysis check --update-manifest   # commit new stats keys
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Optional, Sequence

#: conventional baseline location (repo root, committed).
DEFAULT_BASELINE = "analysis_baseline.json"


def main(argv: Optional[Sequence[str]] = None) -> int:
    import argparse
    import json

    from repro.analysis import contracts
    from repro.analysis.reporting import (
        Baseline,
        render_json,
        render_sarif,
        render_text,
    )

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis check",
        description="Cross-module contract analyzer for the PR-DRB simulator.",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"], help="files or directories"
    )
    parser.add_argument(
        "--pass",
        action="append",
        dest="pass_names",
        choices=sorted(contracts.PASS_CATALOGUE),
        help="run only this pass (repeatable)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--out", help="write the report to this file instead of stdout"
    )
    parser.add_argument(
        "--baseline",
        help=(
            "ratchet baseline JSON; findings it covers don't fail the run "
            f"(default: {DEFAULT_BASELINE} when present)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any default baseline file",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    parser.add_argument(
        "--manifest",
        help=(
            "frozen-stats-keys manifest "
            f"(default: {contracts.DEFAULT_MANIFEST} when present)"
        ),
    )
    parser.add_argument(
        "--update-manifest",
        action="store_true",
        help="rewrite the stats manifest from the current tree and exit 0",
    )
    parser.add_argument(
        "--list-passes", action="store_true", help="print the pass catalogue and exit"
    )
    args = parser.parse_args(argv)

    if args.list_passes:
        for name in sorted(contracts.PASS_CATALOGUE):
            print(f"{name}: {contracts.PASS_CATALOGUE[name]}")
        return 0

    # The cwd-default manifest only applies when analyzing this repo's
    # own tree (the default paths) — against an arbitrary fixture tree
    # it would report every manifest class as missing.
    analyzing_repo = all(
        Path(p).resolve() == Path("src/repro").resolve()
        or Path("src/repro").resolve() in Path(p).resolve().parents
        for p in (args.paths or ["src/repro"])
    )
    manifest_path = args.manifest
    if (
        manifest_path is None
        and analyzing_repo
        and Path(contracts.DEFAULT_MANIFEST).exists()
    ):
        manifest_path = contracts.DEFAULT_MANIFEST

    try:
        graph = contracts.ModuleGraph.from_paths(args.paths or ["src/repro"])
    except (FileNotFoundError, SyntaxError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.update_manifest:
        target = manifest_path or contracts.DEFAULT_MANIFEST
        document = contracts.build_manifest(graph)
        Path(target).write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        print(f"wrote {target} ({len(document['classes'])} stats classes)")
        return 0

    report = contracts.analyze_graph(
        graph, passes=args.pass_names, manifest_path=manifest_path
    )

    baseline_path = args.baseline
    if baseline_path is None and not args.no_baseline and Path(DEFAULT_BASELINE).exists():
        baseline_path = DEFAULT_BASELINE

    if args.update_baseline:
        target = baseline_path or DEFAULT_BASELINE
        Baseline.from_violations(report.findings).save(target)
        print(f"wrote {target} ({len(report.findings)} findings ratcheted)")
        return 0

    failing = report.findings
    absorbed = 0
    stale_entries: list[dict] = []
    if baseline_path is not None:
        try:
            delta = Baseline.load(baseline_path).compare(report.findings)
        except (OSError, ValueError, KeyError) as exc:
            print(f"error: bad baseline {baseline_path}: {exc}", file=sys.stderr)
            return 2
        failing = delta.new
        absorbed = delta.suppressed
        stale_entries = delta.stale

    if args.format == "sarif":
        rendered = render_sarif(failing, contracts.PASS_CATALOGUE)
    elif args.format == "json":
        rendered = render_json(failing, report.files_checked)
    else:
        rendered = render_text(failing, report.files_checked)
        extras = []
        if absorbed:
            extras.append(f"{absorbed} finding(s) absorbed by baseline {baseline_path}")
        if stale_entries:
            extras.append(
                f"{len(stale_entries)} stale baseline entr"
                f"{'y' if len(stale_entries) == 1 else 'ies'} (debt paid down) — "
                "run --update-baseline to ratchet"
            )
        if extras:
            rendered = rendered + "\n" + "\n".join(extras)

    if args.out:
        Path(args.out).write_text(rendered + "\n", encoding="utf-8")
        print(f"wrote {args.out}")
    else:
        print(rendered)
    return 1 if failing else 0
