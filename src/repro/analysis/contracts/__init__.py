"""Cross-module contract analyzer (``python -m repro.analysis check``).

Where :mod:`repro.analysis.lint` checks one file at a time, the contract
passes here reason over a shared :class:`~repro.analysis.contracts.graph.
ModuleGraph` — every module under the analyzed roots parsed once, with a
symbol table of classes (slots, fields, bases), functions (signatures),
and imports.  Seven passes enforce the contracts the reproduction's
bit-stability rests on:

``digest-purity``
    Tracer-guarded branches, ``repro.obs`` sinks, and metrics providers
    must never write simulation state (docs/observability.md).
``spawn-safety``
    Worker-dispatched task functions must be module-level and free of
    ambient module state (docs/parallel.md).
``slots-consistency``
    Attributes assigned on ``__slots__`` classes must be declared —
    across all modules, not just ``__init__``.
``scheduler-callback``
    ``schedule(...)`` call sites must pack an argument count the callee
    accepts (the Event freelist makes runtime arity errors hard to
    attribute).
``frozen-stats-keys``
    ``stats()`` key sets are append-only versus ``stats_manifest.json``.
``snapshot-coverage``
    Every attribute a ``Snapshottable`` class introduces is declared in
    ``_snapshot_fields_``/``_snapshot_exclude_`` (docs/checkpoint.md).
``shard-safety``
    Cross-shard handoff payload types must be Snapshottable-declared and
    no lambda may cross a shard process boundary (docs/sharding.md).

Findings share the lint reporting stack (:mod:`repro.analysis.reporting`):
``# repro: allow(<rule>)`` pragmas, ratchet baselines, text/JSON/SARIF.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.contracts.callbacks import SchedulerCallbackPass
from repro.analysis.contracts.graph import ModuleGraph
from repro.analysis.contracts.purity import DigestPurityPass
from repro.analysis.contracts.shardsafe import ShardSafetyPass
from repro.analysis.contracts.slots import SlotsConsistencyPass
from repro.analysis.contracts.snapshots import SnapshotCoveragePass
from repro.analysis.contracts.spawnsafe import SpawnSafetyPass
from repro.analysis.contracts.statskeys import (
    FrozenStatsKeysPass,
    build_manifest,
    extract_stats_keys,
)
from repro.analysis.lint import Violation, allowed_rules

__all__ = [
    "DEFAULT_MANIFEST",
    "PASS_CATALOGUE",
    "ContractReport",
    "ModuleGraph",
    "analyze_graph",
    "analyze_paths",
    "build_manifest",
    "extract_stats_keys",
    "main",
]

#: conventional manifest location (repo root, committed).
DEFAULT_MANIFEST = "stats_manifest.json"

#: rule id -> one-line summary, for --list-passes and the SARIF driver.
PASS_CATALOGUE: dict[str, str] = {
    DigestPurityPass.name: DigestPurityPass.summary,
    SpawnSafetyPass.name: SpawnSafetyPass.summary,
    SlotsConsistencyPass.name: SlotsConsistencyPass.summary,
    SchedulerCallbackPass.name: SchedulerCallbackPass.summary,
    FrozenStatsKeysPass.name: FrozenStatsKeysPass.summary,
    SnapshotCoveragePass.name: SnapshotCoveragePass.summary,
    ShardSafetyPass.name: ShardSafetyPass.summary,
}


@dataclass
class ContractReport:
    """Everything one analyzer run produced."""

    #: unsuppressed findings, sorted by (path, line, col, rule).
    findings: list[Violation] = field(default_factory=list)
    #: findings silenced by a ``repro: allow(<rule>)`` pragma comment.
    suppressed: list[Violation] = field(default_factory=list)
    files_checked: int = 0


def _build_passes(
    names: Optional[Sequence[str]], manifest_path: Optional[str | Path]
) -> list:
    registry = {
        DigestPurityPass.name: lambda: DigestPurityPass(),
        SpawnSafetyPass.name: lambda: SpawnSafetyPass(),
        SlotsConsistencyPass.name: lambda: SlotsConsistencyPass(),
        SchedulerCallbackPass.name: lambda: SchedulerCallbackPass(),
        FrozenStatsKeysPass.name: lambda: FrozenStatsKeysPass(manifest_path),
        SnapshotCoveragePass.name: lambda: SnapshotCoveragePass(),
        ShardSafetyPass.name: lambda: ShardSafetyPass(),
    }
    selected = list(names) if names else list(PASS_CATALOGUE)
    unknown = [n for n in selected if n not in registry]
    if unknown:
        raise ValueError(f"unknown contract pass(es) {unknown}; known: {sorted(registry)}")
    return [registry[name]() for name in selected]


def analyze_graph(
    graph: ModuleGraph,
    passes: Optional[Sequence[str]] = None,
    manifest_path: Optional[str | Path] = None,
) -> ContractReport:
    """Run the selected passes over an already-built graph.

    ``manifest_path`` is taken literally: ``None`` disables the
    frozen-stats-keys comparison.  Only the CLI (and the pragma audit)
    default it to :data:`DEFAULT_MANIFEST` in the working directory —
    a library caller analyzing an arbitrary tree must opt in, else a
    repo-root manifest would leak into unrelated graphs.
    """
    raw: list[Violation] = []
    for contract_pass in _build_passes(passes, manifest_path):
        raw.extend(contract_pass.check(graph))
    # Pragma filtering: line-level ``repro: allow(<rule>)`` comments,
    # same machinery and semantics as the per-file lints.
    allow_by_path: dict[str, dict[int, set[str]]] = {}
    for module in graph.modules.values():
        allow_by_path[module.path] = allowed_rules(module.source)
    report = ContractReport(files_checked=len(graph.modules))
    for violation in raw:
        allowed = allow_by_path.get(violation.path, {})
        if violation.rule in allowed.get(violation.line, set()):
            report.suppressed.append(violation)
        else:
            report.findings.append(violation)
    report.findings.sort(key=lambda v: (v.path, v.line, v.col, v.rule, v.message))
    report.suppressed.sort(key=lambda v: (v.path, v.line, v.col, v.rule, v.message))
    return report


def analyze_paths(
    paths: Sequence[str],
    passes: Optional[Sequence[str]] = None,
    manifest_path: Optional[str | Path] = None,
) -> ContractReport:
    """Build the module graph for ``paths`` and run the contract passes."""
    graph = ModuleGraph.from_paths(list(paths))
    return analyze_graph(graph, passes=passes, manifest_path=manifest_path)


from repro.analysis.contracts.cli import main  # noqa: E402  (CLI needs the API above)
