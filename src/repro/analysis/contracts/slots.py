"""slots-consistency: every attribute written on a slotted class exists.

``__slots__`` (and ``@dataclass(slots=True)``) is how the hot path keeps
Packet/Event/OutputPort/VC allocation lean (docs/performance.md), but it
turns a typo'd or undeclared attribute assignment into a *runtime*
``AttributeError`` — possibly deep inside a seeded campaign hours in.
This pass checks every assignment site statically, across all modules:

* ``self.x = ...`` inside methods of a slotted class must name a slot,
  a declared dataclass field, an inherited slot, or a class-level name
  (properties route through the class, e.g. ``Event.time``);
* ``obj.x = ...`` anywhere, when ``obj`` is bound to a slotted class by
  a parameter annotation (``packet: Packet``), a local annotation, or a
  direct constructor call (``ack = Packet(...)``), must do the same.

Classes with unresolvable or non-slotted bases are skipped (an open
``__dict__`` makes assignment legal).  Suppress deliberate dynamic
attributes with ``# repro: allow(slots-consistency)``.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.analysis.contracts.graph import ClassInfo, ModuleGraph, ModuleInfo
from repro.analysis.lint import Violation

__all__ = ["SlotsConsistencyPass"]

RULE = "slots-consistency"

#: dunders every object accepts regardless of slots.
_ALWAYS_OK = {"__doc__", "__module__", "__qualname__"}


def _violation(path: str, node: ast.AST, message: str) -> Violation:
    return Violation(
        rule=RULE,
        path=path,
        line=getattr(node, "lineno", 0),
        col=getattr(node, "col_offset", 0),
        message=message,
    )


def _annotation_class(annotation: ast.expr) -> Optional[str]:
    """Extract a class name from an annotation expression.

    Handles plain names, dotted names, string annotations, and
    ``Optional[X]`` / ``X | None`` / ``Union[X, None]`` wrappers.
    """
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        text = annotation.value.strip()
        return text if text.isidentifier() else None
    if isinstance(annotation, ast.Name):
        return annotation.id
    if isinstance(annotation, ast.Attribute):
        parts: list[str] = []
        node: ast.expr = annotation
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            parts.append(node.id)
            return ".".join(reversed(parts))
        return None
    if isinstance(annotation, ast.Subscript):
        base = _annotation_class(annotation.value)
        if base is not None and base.split(".")[-1] in ("Optional", "Union"):
            inner = annotation.slice
            candidates = inner.elts if isinstance(inner, ast.Tuple) else [inner]
            for candidate in candidates:
                name = _annotation_class(candidate)
                if name is not None and name != "None":
                    return name
        return None
    if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
        for side in (annotation.left, annotation.right):
            name = _annotation_class(side)
            if name is not None and name != "None":
                return name
    return None


class SlotsConsistencyPass:
    name = RULE
    summary = "attribute assignments outside a class's declared __slots__"

    def check(self, graph: ModuleGraph) -> list[Violation]:
        out: list[Violation] = []
        #: qualname -> (allowed attr set) for checkable slotted classes.
        checkable: dict[str, set[str]] = {}
        for cls in graph.classes.values():
            allowed, _reason = graph.allowed_attributes(cls)
            if allowed is not None:
                checkable[cls.qualname] = allowed | _ALWAYS_OK
        if not checkable:
            return out
        for module in sorted(graph.modules.values(), key=lambda m: m.path):
            self._check_module(module, graph, checkable, out)
        return out

    # ------------------------------------------------------------------
    def _check_module(
        self,
        module: ModuleInfo,
        graph: ModuleGraph,
        checkable: dict[str, set[str]],
        out: list[Violation],
    ) -> None:
        # Pass 1: self-assignments inside slotted classes' own methods.
        for cls in module.classes.values():
            allowed = checkable.get(cls.qualname)
            if allowed is None:
                continue
            for method in cls.methods.values():
                self._check_self_assignments(module, cls, method.node, allowed, out)
        # Pass 2: annotation/constructor-bound names in every function.
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._check_bound_names(module, graph, checkable, node, out)

    def _check_self_assignments(
        self,
        module: ModuleInfo,
        cls: ClassInfo,
        fn: ast.AST,
        allowed: set[str],
        out: list[Violation],
    ) -> None:
        for node in ast.walk(fn):
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                for attr_node in self._flatten_targets(target):
                    if (
                        isinstance(attr_node.value, ast.Name)
                        and attr_node.value.id == "self"
                        and attr_node.attr not in allowed
                    ):
                        out.append(
                            _violation(
                                module.path,
                                node,
                                f"`self.{attr_node.attr}` is not declared in "
                                f"{cls.name}'s __slots__/fields "
                                "(declared: "
                                f"{', '.join(sorted(a for a in allowed if not a.startswith('__'))) or 'none'})",
                            )
                        )

    def _check_bound_names(
        self,
        module: ModuleInfo,
        graph: ModuleGraph,
        checkable: dict[str, set[str]],
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        out: list[Violation],
    ) -> None:
        # A name is type-bound only when its binding is unambiguous over
        # the whole function: an annotated parameter that is never
        # reassigned, or a local with exactly one store whose value is a
        # direct constructor call / annotated assignment.  Names stored
        # more than once are never bound (no flow analysis needed).
        store_counts: dict[str, int] = {}
        for node in ast.walk(fn):
            if isinstance(node, ast.Name) and isinstance(node.ctx, (ast.Store, ast.Del)):
                store_counts[node.id] = store_counts.get(node.id, 0) + 1

        bindings: dict[str, ClassInfo] = {}
        for arg in [*fn.args.posonlyargs, *fn.args.args, *fn.args.kwonlyargs]:
            if arg.annotation is None or arg.arg in ("self", "cls"):
                continue
            if store_counts.get(arg.arg, 0) > 0:
                continue  # reassigned somewhere — type no longer certain
            name = _annotation_class(arg.annotation)
            if name is None:
                continue
            resolved = graph.resolve_class(name, module)
            if resolved is not None and resolved.qualname in checkable:
                bindings[arg.arg] = resolved

        # First sweep: collect local bindings.  Binding is unambiguous
        # (exactly one store), so traversal order doesn't matter.
        for stmt in self._walk_shallow(fn):
            if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                value = stmt.value
                targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
                bound: Optional[ClassInfo] = None
                if isinstance(stmt, ast.AnnAssign) and stmt.annotation is not None:
                    name = _annotation_class(stmt.annotation)
                    if name is not None:
                        resolved = graph.resolve_class(name, module)
                        if resolved is not None and resolved.qualname in checkable:
                            bound = resolved
                if bound is None and isinstance(value, ast.Call):
                    callee = value.func
                    callee_name = (
                        callee.id
                        if isinstance(callee, ast.Name)
                        else callee.attr
                        if isinstance(callee, ast.Attribute)
                        else None
                    )
                    if callee_name is not None:
                        resolved = graph.resolve_class(callee_name, module)
                        if resolved is not None and resolved.qualname in checkable:
                            bound = resolved
                if bound is not None:
                    for target in targets:
                        if (
                            isinstance(target, ast.Name)
                            and store_counts.get(target.id, 0) == 1
                        ):
                            bindings[target.id] = bound
        # Second sweep: check attribute writes against the bindings.
        for stmt in self._walk_shallow(fn):
            targets = []
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
                targets = [stmt.target]
            for target in targets:
                for attr_node in self._flatten_targets(target):
                    base = attr_node.value
                    if not isinstance(base, ast.Name) or base.id == "self":
                        continue
                    cls = bindings.get(base.id)
                    if cls is None:
                        continue
                    allowed = checkable[cls.qualname]
                    if attr_node.attr not in allowed:
                        out.append(
                            _violation(
                                module.path,
                                stmt,
                                f"`{base.id}.{attr_node.attr}` is not declared "
                                f"in {cls.name}'s __slots__/fields",
                            )
                        )

    @staticmethod
    def _walk_shallow(fn: ast.AST):
        """Walk ``fn``'s own body, not nested function/lambda bodies —
        those are visited as functions in their own right."""
        stack = list(ast.iter_child_nodes(fn))
        while stack:
            node = stack.pop()
            yield node
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                stack.extend(ast.iter_child_nodes(node))

    @staticmethod
    def _flatten_targets(target: ast.expr) -> list[ast.Attribute]:
        """Attribute nodes assigned by ``target`` (handles tuple unpack)."""
        if isinstance(target, ast.Attribute):
            return [target]
        if isinstance(target, (ast.Tuple, ast.List)):
            out: list[ast.Attribute] = []
            for element in target.elts:
                out.extend(SlotsConsistencyPass._flatten_targets(element))
            return out
        return []
