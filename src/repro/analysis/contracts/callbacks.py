"""scheduler-callback: schedule()/schedule_at() call sites match callees.

The engine dispatches ``fn(*args)`` with whatever arguments the call
site packed into the event (:meth:`repro.sim.engine.Simulator.schedule`).
An arity mismatch is invisible until the event *fires* — and with the
Event freelist recycling payloads, the traceback points at the dispatch
loop, not the buggy ``schedule`` call made milliseconds of sim-time
earlier.  This pass checks every call site statically:

* calls ``<...>.sim.schedule(delay, fn, *args)`` and
  ``schedule_at(time, fn, *args)`` (receiver terminal ``sim`` /
  ``simulator`` — the engine naming convention) are matched against the
  resolved callee's signature;
* ``fn`` resolves when it is ``self.<method>`` (looked up through the
  class and its graph-resolvable bases), a local or module-level
  function, or an imported module-level function;
* the packed argument count must fall inside the callee's accepted
  positional range, and the callee must not declare default-less
  keyword-only parameters (``fn(*args)`` can never supply them).

Starred arguments and unresolvable callables are skipped, not guessed.
Suppress with ``# repro: allow(scheduler-callback)``.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.analysis.contracts.graph import (
    ClassInfo,
    FunctionInfo,
    ModuleGraph,
    ModuleInfo,
    _function_info,
)
from repro.analysis.lint import Violation

__all__ = ["SchedulerCallbackPass"]

RULE = "scheduler-callback"

_SCHEDULE_METHODS = {"schedule", "schedule_at"}
_SIM_NAMES = {"sim", "simulator", "engine"}


def _terminal(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


class SchedulerCallbackPass:
    name = RULE
    summary = "schedule()/schedule_at() callbacks with mismatched arity"

    def check(self, graph: ModuleGraph) -> list[Violation]:
        out: list[Violation] = []
        for module in sorted(graph.modules.values(), key=lambda m: m.path):
            self._check_module(module, graph, out)
        return out

    # ------------------------------------------------------------------
    def _check_module(
        self, module: ModuleInfo, graph: ModuleGraph, out: list[Violation]
    ) -> None:
        # Visit functions with their enclosing class (for self.* lookup).
        for stmt in module.tree.body:
            if isinstance(stmt, ast.ClassDef):
                cls = module.classes.get(stmt.name)
                for inner in stmt.body:
                    if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self._check_function(module, graph, cls, inner, out)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._check_function(module, graph, None, stmt, out)

    def _check_function(
        self,
        module: ModuleInfo,
        graph: ModuleGraph,
        cls: Optional[ClassInfo],
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        out: list[Violation],
    ) -> None:
        local_defs: dict[str, FunctionInfo] = {}
        for node in ast.walk(fn):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node is not fn:
                local_defs[node.name] = _function_info(
                    node, module.name, f"{module.name}.<local>", is_method=False
                )
        for node in ast.walk(fn):
            if isinstance(node, ast.Call):
                self._check_call(module, graph, cls, local_defs, node, out)

    # ------------------------------------------------------------------
    def _check_call(
        self,
        module: ModuleInfo,
        graph: ModuleGraph,
        cls: Optional[ClassInfo],
        local_defs: dict[str, FunctionInfo],
        call: ast.Call,
        out: list[Violation],
    ) -> None:
        func = call.func
        if not (isinstance(func, ast.Attribute) and func.attr in _SCHEDULE_METHODS):
            return
        receiver = _terminal(func.value)
        if receiver is None or receiver.lstrip("_") not in _SIM_NAMES:
            return
        if len(call.args) < 2:
            return  # schedule(delay) alone fails at the engine, not here
        if any(isinstance(a, ast.Starred) for a in call.args):
            return
        callback = call.args[1]
        packed = len(call.args) - 2

        resolved = self._resolve_callback(module, graph, cls, local_defs, callback)
        if resolved is None:
            return
        info, bound = resolved
        minimum, maximum = self._arity(info, bound)
        label = ast.unparse(callback)
        if info.required_kwonly:
            out.append(
                self._violation(
                    module.path,
                    call,
                    f"callback `{label}` declares required keyword-only "
                    f"parameter(s) {list(info.required_kwonly)}; the engine "
                    "dispatches fn(*args) and can never supply them",
                )
            )
            return
        if packed < minimum or (maximum is not None and packed > maximum):
            accepted = (
                f"exactly {minimum}"
                if maximum == minimum
                else f"{minimum}..{'*' if maximum is None else maximum}"
            )
            out.append(
                self._violation(
                    module.path,
                    call,
                    f"{func.attr}(...) packs {packed} callback arg(s) but "
                    f"`{label}` accepts {accepted}",
                )
            )

    @staticmethod
    def _arity(info: FunctionInfo, bound: bool) -> tuple[int, Optional[int]]:
        n = len(info.positional)
        if bound and not info.is_static:
            n -= 1
        n = max(n, 0)
        maximum: Optional[int] = None if info.has_vararg else n
        minimum = max(n - info.defaults, 0)
        return minimum, maximum

    def _resolve_callback(
        self,
        module: ModuleInfo,
        graph: ModuleGraph,
        cls: Optional[ClassInfo],
        local_defs: dict[str, FunctionInfo],
        callback: ast.expr,
    ) -> Optional[tuple[FunctionInfo, bool]]:
        """(info, is_bound_reference) or None when unresolvable."""
        if isinstance(callback, ast.Attribute):
            base = callback.value
            if isinstance(base, ast.Name) and base.id == "self" and cls is not None:
                method = graph.resolve_method(cls, callback.attr)
                if method is not None:
                    return method, True
            return None
        if isinstance(callback, ast.Name):
            if callback.id in local_defs:
                return local_defs[callback.id], False
            fn = graph.resolve_function(callback.id, module)
            if fn is not None:
                return fn, False
            return None
        if isinstance(callback, ast.Lambda):
            args = callback.args
            info = FunctionInfo(
                name="<lambda>",
                qualname=f"{module.name}.<lambda>",
                module=module.name,
                node=None,  # type: ignore[arg-type]
                positional=tuple(a.arg for a in [*args.posonlyargs, *args.args]),
                defaults=len(args.defaults),
                has_vararg=args.vararg is not None,
                has_kwarg=args.kwarg is not None,
                required_kwonly=tuple(
                    a.arg
                    for a, d in zip(args.kwonlyargs, args.kw_defaults)
                    if d is None
                ),
                is_method=False,
                is_static=False,
                lineno=callback.lineno,
            )
            return info, False
        return None

    @staticmethod
    def _violation(path: str, node: ast.AST, message: str) -> Violation:
        return Violation(
            rule=RULE,
            path=path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            message=message,
        )
