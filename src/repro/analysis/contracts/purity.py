"""digest-purity: observation code must never write simulation state.

The whole observability contract (docs/observability.md) is one line:
*tracing on and tracing off execute the identical event stream*.  The
runtime half is enforced by ``repro.obs selftest`` digests; this pass is
the static half.  It checks three scopes:

1. **guarded branches** — the body of every ``if <x>.tracer is not None``
   conditional (the idiom all instrumented layers use) may only talk to
   observation objects.  Assigning a simulation attribute, or calling a
   scheduling/injection method, inside such a branch means behaviour
   differs with a tracer installed — exactly what the digests would
   catch hours later at replay time;
2. **obs modules** — functions in ``repro/obs/`` may install observation
   hooks (the ``tracer`` attribute, ``add_observer``) on model objects
   passed to them but must not mutate any other attribute;
3. **metrics providers** — callables registered through
   ``MetricsRegistry.gauge(...)`` / ``provider(...)`` are pulled at
   snapshot time; a mutating provider makes snapshot cadence behavioural.

Suppress a deliberate exception with ``# repro: allow(digest-purity)``
on the offending line.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.analysis.contracts.graph import ModuleGraph, ModuleInfo
from repro.analysis.lint import Violation

__all__ = ["DigestPurityPass"]

RULE = "digest-purity"

#: receiver names that are observation machinery — writes/calls are fine.
_OBS_NAMES = {
    "tracer",
    "metrics",
    "registry",
    "sink",
    "sinks",
    "record",
    "records",
    "snapshot",
    "snap",
    "histogram",
    "counter",
    "gauge",
    "trace",
    "out",
    "args",
}

#: attribute names observation code may install on model objects.
_ALLOWED_ATTRS = {"tracer"}

#: method calls that mutate simulation state or the event calendar.
_MUTATING_CALLS = {
    "schedule",
    "schedule_at",
    "inject",
    "send",
    "submit",
    "stop",
    "resume",
    "cancel",
    "append",
    "appendleft",
    "extend",
    "insert",
    "remove",
    "discard",
    "pop",
    "popleft",
    "clear",
    "update",
    "setdefault",
    "add",
    "prune",
    "invalidate",
}

#: calls that *register* observation and are therefore allowed even on
#: model receivers (they ride the observer list, not the event queue).
_OBS_REGISTRATION_CALLS = {
    "add_observer",
    "remove_observer",
    "add_sink",
    "emit",
    "observe",
    "inc",
    "attach",
    "bind_recorder",
    "write",
}


def _terminal_name(node: ast.expr) -> Optional[str]:
    while isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _base_name(node: ast.expr) -> Optional[str]:
    """Leftmost receiver of an attribute/subscript chain's *container*.

    For ``a.b.c = x`` the mutated object is ``a.b`` — return ``b``; for
    ``a.b[k] = x`` the mutated object is ``a.b`` — return ``b``; for
    ``a.b = x`` return... the attribute's owner ``a``.
    """
    if isinstance(node, ast.Attribute):
        return _terminal_name(node.value)
    if isinstance(node, ast.Subscript):
        return _terminal_name(node.value)
    return None


def _is_obs_name(name: Optional[str]) -> bool:
    if name is None:
        return False
    lowered = name.lower().lstrip("_")
    return lowered in _OBS_NAMES or "tracer" in lowered or "metric" in lowered


class _RegionChecker(ast.NodeVisitor):
    """Flags impure statements inside one observation region."""

    def __init__(self, path: str, out: list[Violation], context: str) -> None:
        self.path = path
        self.out = out
        self.context = context
        #: names bound inside the region — writes to those are local.
        self.local_names: set[str] = set()

    # -- helpers --------------------------------------------------------
    def _flag(self, node: ast.AST, message: str) -> None:
        self.out.append(
            Violation(
                rule=RULE,
                path=self.path,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0),
                message=f"{message} {self.context}",
            )
        )

    def _check_target(self, target: ast.expr, node: ast.AST) -> None:
        if isinstance(target, ast.Name):
            self.local_names.add(target.id)
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._check_target(element, node)
            return
        if isinstance(target, ast.Attribute):
            owner = _terminal_name(target.value)
            if target.attr in _ALLOWED_ATTRS:
                return
            if _is_obs_name(owner) or (owner in self.local_names):
                return
            self._flag(
                node,
                f"assignment to simulation state `{ast.unparse(target)}`",
            )
            return
        if isinstance(target, ast.Subscript):
            owner = _base_name(target)
            if _is_obs_name(owner) or (owner in self.local_names):
                return
            self._flag(
                node,
                f"subscript write to simulation state `{ast.unparse(target)}`",
            )

    # -- visitors -------------------------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_target(target, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_target(node.target, node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check_target(node.target, node)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            if isinstance(target, (ast.Attribute, ast.Subscript)):
                owner = _base_name(target) if isinstance(target, ast.Subscript) else _terminal_name(target.value)
                if not _is_obs_name(owner) and owner not in self.local_names:
                    self._flag(node, f"deletion of simulation state `{ast.unparse(target)}`")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _MUTATING_CALLS:
            owner = _terminal_name(func.value)
            if not _is_obs_name(owner) and owner not in self.local_names:
                self._flag(
                    node,
                    f"call to mutating method `{ast.unparse(func)}(...)`",
                )
        self.generic_visit(node)

    # A nested function/lambda defined inside the region runs later in an
    # unknown context; check its body under the same rules.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.generic_visit(node)

    visit_AsyncFunctionDef = visit_FunctionDef


def _tracer_guard(test: ast.expr) -> bool:
    """True for ``<x>.tracer is not None`` (possibly inside an ``and``)."""
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
        return any(_tracer_guard(value) for value in test.values)
    if (
        isinstance(test, ast.Compare)
        and len(test.ops) == 1
        and isinstance(test.ops[0], ast.IsNot)
        and isinstance(test.comparators[0], ast.Constant)
        and test.comparators[0].value is None
    ):
        name = _terminal_name(test.left)
        return name is not None and "tracer" in name.lower()
    return False


def _provider_registration(node: ast.Call) -> Optional[ast.expr]:
    """The callable argument of a ``metrics.gauge/provider`` registration."""
    func = node.func
    if not isinstance(func, ast.Attribute) or func.attr not in ("gauge", "provider"):
        return None
    owner = _terminal_name(func.value)
    if owner is None or not ("metric" in owner.lower() or "registry" in owner.lower()):
        return None
    if len(node.args) >= 2:
        return node.args[1]
    return None


class DigestPurityPass:
    name = RULE
    summary = "observation code writing simulation state"

    def check(self, graph: ModuleGraph) -> list[Violation]:
        out: list[Violation] = []
        for module in sorted(graph.modules.values(), key=lambda m: m.path):
            self._check_guarded_branches(module, out)
            if ".obs." in f".{module.name}." or module.name.endswith(".obs"):
                self._check_obs_module(module, out)
            self._check_providers(module, graph, out)
        return out

    # -- scope 1: tracer-guarded branches -------------------------------
    def _check_guarded_branches(self, module: ModuleInfo, out: list[Violation]) -> None:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.If) and _tracer_guard(node.test):
                checker = _RegionChecker(
                    module.path, out, "inside a tracer-guarded branch"
                )
                for stmt in node.body:
                    checker.visit(stmt)

    # -- scope 2: obs-package functions ---------------------------------
    def _check_obs_module(self, module: ModuleInfo, out: list[Violation]) -> None:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            params = {
                a.arg
                for a in [*node.args.posonlyargs, *node.args.args]
                if a.arg not in ("self", "cls")
            }
            if not params:
                continue
            for stmt in ast.walk(node):
                targets: list[ast.expr] = []
                if isinstance(stmt, ast.Assign):
                    targets = stmt.targets
                elif isinstance(stmt, ast.AugAssign):
                    targets = [stmt.target]
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, (ast.Name, ast.Attribute))
                        and target.attr not in _ALLOWED_ATTRS
                    ):
                        root = target.value
                        while isinstance(root, ast.Attribute):
                            root = root.value
                        if isinstance(root, ast.Name) and root.id in params:
                            out.append(
                                Violation(
                                    rule=RULE,
                                    path=module.path,
                                    line=stmt.lineno,
                                    col=stmt.col_offset,
                                    message=(
                                        f"obs module writes model attribute "
                                        f"`{ast.unparse(target)}` (only `tracer` "
                                        "installation is allowed)"
                                    ),
                                )
                            )

    # -- scope 3: metrics providers -------------------------------------
    def _check_providers(
        self, module: ModuleInfo, graph: ModuleGraph, out: list[Violation]
    ) -> None:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            fn_arg = _provider_registration(node)
            if fn_arg is None:
                continue
            context = "inside a metrics provider/gauge callable"
            if isinstance(fn_arg, ast.Lambda):
                checker = _RegionChecker(module.path, out, context)
                checker.visit(fn_arg.body)
            elif isinstance(fn_arg, ast.Name):
                resolved = graph.resolve_function(fn_arg.id, module)
                if resolved is not None:
                    target_module = graph.modules.get(resolved.module)
                    checker = _RegionChecker(
                        target_module.path if target_module else module.path,
                        out,
                        context,
                    )
                    for stmt in resolved.node.body:
                        checker.visit(stmt)
