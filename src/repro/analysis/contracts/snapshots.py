"""snapshot-coverage: every Snapshottable attribute is declared.

The checkpoint protocol (:mod:`repro.checkpoint.state`) serializes
exactly the attributes a class declares in ``_snapshot_fields_`` /
``_snapshot_exclude_``.  That makes coverage an *opt-in* property: a
developer who adds ``self.new_counter = 0`` to a Snapshottable class
without growing its declarations ships a class whose checkpoints
silently drop the new state — a resumed run then diverges from an
uninterrupted one, which is exactly the failure the checkpoint digests
exist to rule out.  This pass closes that gap statically, per class:

* every attribute the class *introduces* — its own ``__slots__`` names,
  its dataclass fields, and every ``self.x = ...`` in its own methods —
  must appear in the effective (MRO-union) ``_snapshot_fields_`` or
  ``_snapshot_exclude_`` sets;
* every name a class itself declares must correspond to an attribute
  assigned somewhere on the class or its bases (stale declarations rot
  into restore-time ``SnapshotError``);
* the declarations themselves must be literal tuples of strings — a
  computed declaration cannot be audited, here or in review.

Classes reachable from ``Snapshottable`` through the resolved base
graph are checked; the protocol class itself is exempt.  Suppress a
deliberately transient attribute with
``# repro: allow(snapshot-coverage)`` on the class line — though
``_snapshot_exclude_`` states the same intent in a way restore code can
act on, so prefer it.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.analysis.contracts.graph import ClassInfo, ModuleGraph
from repro.analysis.lint import Violation

__all__ = ["SnapshotCoveragePass"]

RULE = "snapshot-coverage"

_ROOT = "Snapshottable"
_FIELDS = "_snapshot_fields_"
_EXCLUDE = "_snapshot_exclude_"

#: protocol machinery living on the class, never instance state.
_META_ATTRS = {_FIELDS, _EXCLUDE, "_snapshot_version_", "__slots__"}


def _violation(path: str, node: ast.AST, message: str) -> Violation:
    return Violation(
        rule=RULE,
        path=path,
        line=getattr(node, "lineno", 0),
        col=getattr(node, "col_offset", 0),
        message=message,
    )


def _tuple_literal(value: ast.expr) -> Optional[tuple[str, ...]]:
    """Names from a literal tuple/list of strings, else None."""
    if isinstance(value, (ast.Tuple, ast.List)):
        names: list[str] = []
        for element in value.elts:
            if isinstance(element, ast.Constant) and isinstance(element.value, str):
                names.append(element.value)
            else:
                return None
        return tuple(names)
    return None


def _declaration(cls: ClassInfo, name: str):
    """(names, node) for ``name`` in the class body; (None, None) when
    absent, (None, node) when present but not a literal string tuple."""
    for stmt in cls.node.body:
        target: Optional[str] = None
        value: Optional[ast.expr] = None
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
        ):
            target, value = stmt.targets[0].id, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            target, value = stmt.target.id, stmt.value
        if target != name or value is None:
            continue
        return _tuple_literal(value), stmt
    return None, None


def _self_stores(cls: ClassInfo) -> dict[str, ast.AST]:
    """Attribute name -> first ``self.x = ...`` site in ``cls``'s methods."""
    out: dict[str, ast.AST] = {}
    for method in cls.methods.values():
        for node in ast.walk(method.node):
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                for attr in _flatten(target):
                    if (
                        isinstance(attr.value, ast.Name)
                        and attr.value.id == "self"
                        and not attr.attr.startswith("__")
                        and attr.attr not in out
                    ):
                        out[attr.attr] = node
    return out


def _flatten(target: ast.expr) -> list[ast.Attribute]:
    if isinstance(target, ast.Attribute):
        return [target]
    if isinstance(target, (ast.Tuple, ast.List)):
        out: list[ast.Attribute] = []
        for element in target.elts:
            out.extend(_flatten(element))
        return out
    return []


def _is_dataclass(cls: ClassInfo) -> bool:
    for decorator in cls.node.decorator_list:
        node = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = node.attr if isinstance(node, ast.Attribute) else getattr(node, "id", None)
        if name == "dataclass":
            return True
    return False


def _introduced(cls: ClassInfo) -> dict[str, ast.AST]:
    """Instance attributes ``cls`` itself introduces -> anchor node.

    Annotated class-body names count only on dataclasses — on a plain
    class, ``name: str = "abstract"`` is a class-level default, not
    instance state.
    """
    out: dict[str, ast.AST] = dict(_self_stores(cls))
    if _is_dataclass(cls):
        for name in cls.fields:
            out.setdefault(name, cls.node)
    for name in cls.slots or ():
        out.setdefault(name, cls.node)
    for name in sorted(_META_ATTRS):
        out.pop(name, None)
    return out


class SnapshotCoveragePass:
    name = RULE
    summary = "Snapshottable attributes missing from _snapshot_fields_/_snapshot_exclude_"

    def check(self, graph: ModuleGraph) -> list[Violation]:
        out: list[Violation] = []
        for cls in sorted(graph.classes.values(), key=lambda c: c.qualname):
            if cls.name == _ROOT:
                continue
            bases, unresolved = graph.base_classes(cls)
            rooted = any(b.name == _ROOT for b in bases) or any(
                u.split(".")[-1] == _ROOT for u in unresolved
            )
            if not rooted:
                continue
            module = graph.modules.get(cls.module)
            if module is None:
                continue
            self._check_class(module.path, cls, bases, out)
        return out

    # ------------------------------------------------------------------
    def _check_class(
        self,
        path: str,
        cls: ClassInfo,
        bases: list[ClassInfo],
        out: list[Violation],
    ) -> None:
        chain = [cls] + [b for b in bases if b.name != _ROOT]
        coverage: set[str] = set()
        for link in chain:
            for attr_name in (_FIELDS, _EXCLUDE):
                names, node = _declaration(link, attr_name)
                if node is not None and names is None:
                    if link is cls:
                        out.append(_violation(
                            path, node,
                            f"{cls.name}.{attr_name} must be a literal tuple "
                            "of attribute-name strings so coverage can be "
                            "audited statically",
                        ))
                    continue
                coverage.update(names or ())

        # Every introduced attribute needs coverage — shadowing a
        # class-level default per-instance included, because a restored
        # instance would silently fall back to the class default.
        introduced = _introduced(cls)
        class_level = set(cls.class_attrs)
        for name, node in sorted(introduced.items()):
            if name in coverage:
                continue
            out.append(_violation(
                path, node,
                f"`{cls.name}.{name}` is assigned but not covered by "
                f"{_FIELDS}/{_EXCLUDE} — checkpoints of this class would "
                "silently drop it (docs/checkpoint.md)",
            ))

        # Stale declarations: names this class declares that nothing in
        # the class or its resolved bases ever assigns.
        known: set[str] = set(introduced) | class_level | set(cls.fields)
        for base in chain[1:]:
            known |= set(_introduced(base)) | set(base.class_attrs) | set(base.fields)
        for attr_name in (_FIELDS, _EXCLUDE):
            names, node = _declaration(cls, attr_name)
            for name in names or ():
                if name not in known:
                    out.append(_violation(
                        path, node,
                        f"`{name}` is declared in {cls.name}.{attr_name} "
                        "but never assigned on the class or its bases "
                        "(stale declaration breaks restore)",
                    ))
