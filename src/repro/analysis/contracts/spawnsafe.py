"""spawn-safety: worker-dispatched code must be hermetic and picklable.

``repro.parallel`` ships work to *spawn*-context processes: the child
interpreter imports the task module fresh, so (a) anything submitted to
the pool must be picklable by reference (module-level, not a lambda or
closure), and (b) the task body must not depend on ambient module state
mutated in the parent — the child simply won't have it, and worse, state
mutated *in a worker* leaks between the unrelated tasks that worker
executes next (docs/parallel.md's hermeticity contract).

Checked facts:

* every function registered in a ``TASK_KINDS`` dict resolves to a
  module-level ``def`` (lambdas and nested functions are findings);
* task functions do not read module-level mutable containers outside the
  allowlist (the registry dict itself), and do not write module globals
  (``global X``) — either way a worker's second task would observe the
  first task's leftovers;
* ``pool.submit(fn, ...)`` call sites never pass a lambda or a function
  nested in the enclosing scope.

Suppress with ``# repro: allow(spawn-safety)`` where a module-level
cache is deliberate and process-local (document why at the pragma).
"""

from __future__ import annotations

import ast

from repro.analysis.contracts.graph import ModuleGraph, ModuleInfo
from repro.analysis.lint import Violation

__all__ = ["SpawnSafetyPass"]

RULE = "spawn-safety"

#: registry dict names whose values are worker-dispatched callables.
_REGISTRY_NAMES = {"TASK_KINDS"}

#: module-level mutables task code may read (the registries themselves —
#: populated at import time in every process, never mutated after).
_ALLOWED_GLOBALS = {"TASK_KINDS", "_TOPOLOGY_BUILDERS"}


def _violation(path: str, node: ast.AST, message: str) -> Violation:
    return Violation(
        rule=RULE,
        path=path,
        line=getattr(node, "lineno", 0),
        col=getattr(node, "col_offset", 0),
        message=message,
    )


class SpawnSafetyPass:
    name = RULE
    summary = "worker-dispatched code with ambient or unpicklable state"

    def check(self, graph: ModuleGraph) -> list[Violation]:
        out: list[Violation] = []
        for module in sorted(graph.modules.values(), key=lambda m: m.path):
            self._check_registries(module, graph, out)
            self._check_submit_sites(module, out)
        return out

    # -- registry-driven dispatch ---------------------------------------
    def _check_registries(
        self, module: ModuleInfo, graph: ModuleGraph, out: list[Violation]
    ) -> None:
        for stmt in module.tree.body:
            if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                continue
            targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            names = {t.id for t in targets if isinstance(t, ast.Name)}
            if not (names & _REGISTRY_NAMES):
                continue
            value = stmt.value
            if not isinstance(value, ast.Dict):
                continue
            for key, entry in zip(value.keys, value.values):
                kind = (
                    repr(key.value)
                    if isinstance(key, ast.Constant)
                    else "<dynamic>"
                )
                self._check_entry(module, graph, kind, entry, out)

    def _check_entry(
        self,
        module: ModuleInfo,
        graph: ModuleGraph,
        kind: str,
        entry: ast.expr,
        out: list[Violation],
    ) -> None:
        if isinstance(entry, ast.Lambda):
            out.append(
                _violation(
                    module.path,
                    entry,
                    f"task kind {kind} is a lambda; spawn workers can only "
                    "import module-level functions by reference",
                )
            )
            return
        if not isinstance(entry, ast.Name):
            return  # attribute references etc. — out of scope
        fn = graph.resolve_function(entry.id, module)
        if fn is None:
            # Defined somewhere we cannot see as module-level — if the name
            # is bound by a nested def in this module, that's a finding.
            if self._is_nested_def(module, entry.id):
                out.append(
                    _violation(
                        module.path,
                        entry,
                        f"task kind {kind} references `{entry.id}`, a nested "
                        "function; spawn pickling needs a module-level def",
                    )
                )
            return
        self._check_task_body(graph, kind, fn, out)

    @staticmethod
    def _is_nested_def(module: ModuleInfo, name: str) -> bool:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for inner in ast.walk(node):
                    if (
                        inner is not node
                        and isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef))
                        and inner.name == name
                    ):
                        return True
        return False

    def _check_task_body(
        self, graph: ModuleGraph, kind: str, fn, out: list[Violation]
    ) -> None:
        defining = graph.modules.get(fn.module)
        if defining is None:
            return
        mutable = {
            name: line
            for name, line in defining.mutable_globals.items()
            if name not in _ALLOWED_GLOBALS
        }
        global_names = defining.global_writes - _ALLOWED_GLOBALS
        local_names = self._local_bindings(fn.node)
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Global):
                for name in node.names:
                    out.append(
                        _violation(
                            defining.path,
                            node,
                            f"task kind {kind} ({fn.name}) writes module "
                            f"global `{name}`; worker state leaks across "
                            "tasks sharing the process",
                        )
                    )
            elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                if node.id in local_names:
                    continue
                if node.id in mutable:
                    out.append(
                        _violation(
                            defining.path,
                            node,
                            f"task kind {kind} ({fn.name}) reads module-level "
                            f"mutable `{node.id}` (defined at line "
                            f"{mutable[node.id]}); pass state through task "
                            "params instead",
                        )
                    )
                elif node.id in global_names:
                    out.append(
                        _violation(
                            defining.path,
                            node,
                            f"task kind {kind} ({fn.name}) reads `{node.id}`, "
                            "which is written through `global` elsewhere in "
                            "the module; ambient state is not spawn-safe",
                        )
                    )
        # Sub-checks are shallow by design: helpers the task calls are
        # themselves module-level functions reachable by this same pass
        # when registered, and the runtime digests cover the rest.

    @staticmethod
    def _local_bindings(node: ast.AST) -> set[str]:
        names: set[str] = set()
        for inner in ast.walk(node):
            if isinstance(inner, ast.Name) and isinstance(
                inner.ctx, (ast.Store, ast.Del)
            ):
                names.add(inner.id)
            elif isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef)):
                names.add(inner.name)
                for a in [
                    *inner.args.posonlyargs,
                    *inner.args.args,
                    *inner.args.kwonlyargs,
                ]:
                    names.add(a.arg)
                if inner.args.vararg:
                    names.add(inner.args.vararg.arg)
                if inner.args.kwarg:
                    names.add(inner.args.kwarg.arg)
            elif isinstance(inner, ast.ExceptHandler) and inner.name:
                names.add(inner.name)
        return names

    # -- pool.submit call sites -----------------------------------------
    def _check_submit_sites(self, module: ModuleInfo, out: list[Violation]) -> None:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute) and func.attr == "submit"):
                continue
            receiver = func.value
            receiver_name = (
                receiver.id
                if isinstance(receiver, ast.Name)
                else receiver.attr
                if isinstance(receiver, ast.Attribute)
                else None
            )
            if receiver_name is None or not any(
                hint in receiver_name.lower() for hint in ("pool", "executor")
            ):
                continue
            if not node.args:
                continue
            target = node.args[0]
            if isinstance(target, ast.Lambda):
                out.append(
                    _violation(
                        module.path,
                        target,
                        "lambda submitted to a worker pool; spawn pickling "
                        "needs a module-level function",
                    )
                )
