"""Shared module graph and symbol table for the contract passes.

All five contract passes (:mod:`repro.analysis.contracts`) need the same
cross-module facts that a single-file linter cannot see: which class a
variable is an instance of, what ``__slots__`` a class (plus its bases)
declares, what signature a callback scheduled three modules away has.
:class:`ModuleGraph` parses every module under the analyzed roots once
and exposes:

* :class:`ModuleInfo` — source, AST, dotted module name, and an import
  table mapping local names to their dotted origins;
* :class:`ClassInfo` — slots/dataclass-field declarations, class-level
  attribute names (methods, properties, class vars), and base-class
  links that :meth:`ModuleGraph.allowed_attributes` folds into the full
  writable-attribute set;
* :class:`FunctionInfo` — positional/keyword signature facts for the
  scheduler-callback arity pass.

Resolution is deliberately *syntactic*: a name resolves through the
import table and the class/function indexes or not at all.  Passes skip
what they cannot resolve — the contract checks trade recall for zero
runtime execution of the analyzed code.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence

__all__ = [
    "ClassInfo",
    "FunctionInfo",
    "ModuleGraph",
    "ModuleInfo",
    "module_name_for",
]

#: bases whose presence does not grant an instance ``__dict__`` (so a
#: slotted subclass stays closed) and contributes no slot names.
_CLOSED_BUILTIN_BASES = {
    "object",
    "list",
    "tuple",
    "int",
    "float",
    "str",
    "bytes",
    "frozenset",
}

#: bases that make attribute assignment irrelevant or unknowable; classes
#: inheriting from these are skipped by the slots pass.
_OPAQUE_BASES = {
    "Exception",
    "BaseException",
    "NamedTuple",
    "Protocol",
    "Enum",
    "IntEnum",
    "StrEnum",
    "Flag",
    "IntFlag",
    "TypedDict",
    "ABC",
}


def module_name_for(path: Path) -> str:
    """Dotted module name of ``path``, walking up through ``__init__.py``
    packages (``src/repro/network/router.py`` -> ``repro.network.router``)."""
    path = path.resolve()
    parts = [path.stem] if path.stem != "__init__" else []
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        parent = parent.parent
    return ".".join(reversed(parts)) or path.stem


@dataclass
class FunctionInfo:
    """Signature facts for one function or method."""

    name: str
    qualname: str  # module.Class.method or module.function
    module: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    #: positional parameter names (posonly + regular), including ``self``.
    positional: tuple[str, ...]
    #: number of positional parameters carrying defaults.
    defaults: int
    has_vararg: bool
    has_kwarg: bool
    #: keyword-only parameter names without defaults (never satisfiable
    #: by a ``fn(*args)`` dispatch).
    required_kwonly: tuple[str, ...]
    is_method: bool
    #: True for ``@staticmethod`` (no bound ``self``).
    is_static: bool
    lineno: int

    @property
    def bound_positional(self) -> int:
        """Positional slot count as seen through a bound reference."""
        n = len(self.positional)
        if self.is_method and not self.is_static:
            n -= 1
        return max(n, 0)

    def arity_range(self) -> tuple[int, Optional[int]]:
        """(min, max) positional args accepted via a bound reference;
        ``max`` is None with ``*args``."""
        maximum: Optional[int] = None if self.has_vararg else self.bound_positional
        minimum = max(self.bound_positional - self.defaults, 0)
        return minimum, maximum


@dataclass
class ClassInfo:
    """Declaration facts for one class."""

    name: str
    qualname: str  # module.Class
    module: str
    node: ast.ClassDef
    #: base-class dotted names as written at the class statement.
    bases: tuple[str, ...]
    #: names from an explicit ``__slots__`` literal; None when absent.
    slots: Optional[tuple[str, ...]]
    #: True when ``__slots__`` exists but is not a string/tuple literal.
    slots_dynamic: bool
    #: True for ``@dataclass(slots=True)``.
    dataclass_slots: bool
    #: annotated field names from the class body (dataclass fields).
    fields: tuple[str, ...]
    #: every other class-level name: methods, properties, class vars.
    class_attrs: tuple[str, ...]
    #: methods defined directly on this class, by name.
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    lineno: int = 0

    @property
    def slotted(self) -> bool:
        """True when instances have no ``__dict__`` by declaration."""
        return self.dataclass_slots or (self.slots is not None and not self.slots_dynamic)

    def own_attributes(self) -> set[str]:
        """Names writable on instances per this class's own declaration."""
        out: set[str] = set(self.class_attrs)
        if self.slots:
            out.update(self.slots)
        if self.dataclass_slots:
            out.update(self.fields)
        return out


@dataclass
class ModuleInfo:
    """One parsed module."""

    name: str
    path: str
    source: str
    tree: ast.Module
    #: local name -> dotted origin (``Packet`` -> ``repro.network.packet.Packet``,
    #: ``np`` -> ``numpy``).
    imports: dict[str, str] = field(default_factory=dict)
    #: module-level function defs by name.
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    #: module-level class defs by name.
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    #: module-level names bound to mutable containers (dict/list/set
    #: displays or constructor calls) — ambient state under spawn.
    mutable_globals: dict[str, int] = field(default_factory=dict)
    #: names written through a ``global`` statement anywhere in the module.
    global_writes: set[str] = field(default_factory=set)


_MUTABLE_FACTORIES = {
    "dict",
    "list",
    "set",
    "defaultdict",
    "deque",
    "Counter",
    "OrderedDict",
    "bytearray",
}


def _dotted(node: ast.AST) -> Optional[str]:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _function_info(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
    module: str,
    qualprefix: str,
    is_method: bool,
) -> FunctionInfo:
    args = node.args
    positional = tuple(a.arg for a in [*args.posonlyargs, *args.args])
    is_static = any(
        isinstance(d, ast.Name) and d.id == "staticmethod" for d in node.decorator_list
    )
    required_kwonly = tuple(
        a.arg
        for a, default in zip(args.kwonlyargs, args.kw_defaults)
        if default is None
    )
    return FunctionInfo(
        name=node.name,
        qualname=f"{qualprefix}.{node.name}" if qualprefix else node.name,
        module=module,
        node=node,
        positional=positional,
        defaults=len(args.defaults),
        has_vararg=args.vararg is not None,
        has_kwarg=args.kwarg is not None,
        required_kwonly=required_kwonly,
        is_method=is_method,
        is_static=is_static,
        lineno=node.lineno,
    )


def _slots_literal(value: ast.expr) -> tuple[Optional[tuple[str, ...]], bool]:
    """(names, dynamic) for a ``__slots__`` assignment's value."""
    if isinstance(value, ast.Constant) and isinstance(value.value, str):
        return (value.value,), False
    if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
        names: list[str] = []
        for element in value.elts:
            if isinstance(element, ast.Constant) and isinstance(element.value, str):
                names.append(element.value)
            else:
                return None, True
        return tuple(names), False
    return None, True


def _is_dataclass_slots(decorator: ast.expr) -> bool:
    if not isinstance(decorator, ast.Call):
        return False
    name = _dotted(decorator.func)
    if name is None or name.split(".")[-1] != "dataclass":
        return False
    for kw in decorator.keywords:
        if kw.arg == "slots":
            return isinstance(kw.value, ast.Constant) and kw.value.value is True
    return False


def _is_classvar(annotation: ast.expr) -> bool:
    name = _dotted(annotation)
    if name is not None:
        return name.split(".")[-1] == "ClassVar"
    if isinstance(annotation, ast.Subscript):
        base = _dotted(annotation.value)
        return base is not None and base.split(".")[-1] == "ClassVar"
    return False


def _class_info(node: ast.ClassDef, module: str) -> ClassInfo:
    bases = tuple(n for n in (_dotted(b) for b in node.bases) if n is not None)
    dataclass_slots = any(_is_dataclass_slots(d) for d in node.decorator_list)
    slots: Optional[tuple[str, ...]] = None
    slots_dynamic = False
    fields_: list[str] = []
    class_attrs: list[str] = []
    methods: dict[str, FunctionInfo] = {}
    qualname = f"{module}.{node.name}"
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info = _function_info(stmt, module, qualname, is_method=True)
            methods[stmt.name] = info
            class_attrs.append(stmt.name)
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    if target.id == "__slots__":
                        slots, slots_dynamic = _slots_literal(stmt.value)
                    else:
                        class_attrs.append(target.id)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            if stmt.target.id == "__slots__":
                if stmt.value is not None:
                    slots, slots_dynamic = _slots_literal(stmt.value)
            elif _is_classvar(stmt.annotation):
                class_attrs.append(stmt.target.id)
            else:
                fields_.append(stmt.target.id)
    return ClassInfo(
        name=node.name,
        qualname=qualname,
        module=module,
        node=node,
        bases=bases,
        slots=slots,
        slots_dynamic=slots_dynamic,
        dataclass_slots=dataclass_slots,
        fields=tuple(fields_),
        class_attrs=tuple(class_attrs),
        methods=methods,
        lineno=node.lineno,
    )


def _collect_imports(tree: ast.Module) -> dict[str, str]:
    imports: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    imports[alias.asname] = alias.name
                else:
                    top = alias.name.split(".")[0]
                    imports[top] = top
        elif isinstance(node, ast.ImportFrom):
            if node.module is None or node.level:
                continue  # relative imports: not used in this codebase
            for alias in node.names:
                local = alias.asname or alias.name
                imports[local] = f"{node.module}.{alias.name}"
    return imports


def _collect_mutable_globals(tree: ast.Module) -> dict[str, int]:
    out: dict[str, int] = {}
    for stmt in tree.body:
        targets: list[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if value is None:
            continue
        mutable = isinstance(value, (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp, ast.SetComp))
        if not mutable and isinstance(value, ast.Call):
            callee = _dotted(value.func)
            if callee is not None and callee.split(".")[-1] in _MUTABLE_FACTORIES:
                mutable = True
        if not mutable:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                out[target.id] = stmt.lineno
    return out


def _collect_global_writes(tree: ast.Module) -> set[str]:
    out: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Global):
            out.update(node.names)
    return out


class ModuleGraph:
    """Every parsed module under the analyzed roots, cross-indexed."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        #: qualname (module.Class) -> ClassInfo
        self.classes: dict[str, ClassInfo] = {}
        #: bare class name -> ClassInfos sharing it (usually exactly one)
        self.classes_by_name: dict[str, list[ClassInfo]] = {}
        #: qualname (module.fn / module.Class.fn) -> FunctionInfo
        self.functions: dict[str, FunctionInfo] = {}

    # -- construction ---------------------------------------------------
    @classmethod
    def from_paths(cls, paths: Sequence[str | Path]) -> "ModuleGraph":
        graph = cls()
        seen: set[Path] = set()
        for entry in paths:
            p = Path(entry)
            if not p.exists():
                raise FileNotFoundError(f"no such file or directory: {entry}")
            files = (
                sorted(f for f in p.rglob("*.py") if "__pycache__" not in f.parts)
                if p.is_dir()
                else [p]
            )
            for file in files:
                resolved = file.resolve()
                if resolved in seen:
                    continue
                seen.add(resolved)
                graph.add_module(file)
        return graph

    def add_module(self, path: str | Path) -> ModuleInfo:
        file = Path(path)
        source = file.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(file))
        name = module_name_for(file)
        info = ModuleInfo(
            name=name,
            path=str(file),
            source=source,
            tree=tree,
            imports=_collect_imports(tree),
            mutable_globals=_collect_mutable_globals(tree),
            global_writes=_collect_global_writes(tree),
        )
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn = _function_info(stmt, name, name, is_method=False)
                info.functions[stmt.name] = fn
                self.functions[fn.qualname] = fn
            elif isinstance(stmt, ast.ClassDef):
                ci = _class_info(stmt, name)
                info.classes[stmt.name] = ci
                self.classes[ci.qualname] = ci
                self.classes_by_name.setdefault(ci.name, []).append(ci)
                for method in ci.methods.values():
                    self.functions[method.qualname] = method
        self.modules[name] = info
        return info

    # -- resolution -----------------------------------------------------
    def resolve_class(self, name: str, module: ModuleInfo) -> Optional[ClassInfo]:
        """Resolve a (possibly dotted) class name as seen from ``module``."""
        terminal = name.split(".")[-1]
        # Same-module definition wins.
        if name in module.classes:
            return module.classes[name]
        # Through the import table: ``from m import C`` or ``import m`` + m.C.
        origin = module.imports.get(name.split(".")[0])
        if origin is not None:
            dotted = origin if "." not in name else f"{origin}.{'.'.join(name.split('.')[1:])}"
            found = self.classes.get(dotted)
            if found is not None:
                return found
        # Fall back to a unique bare-name match across the graph.
        candidates = self.classes_by_name.get(terminal, [])
        if len(candidates) == 1:
            return candidates[0]
        return None

    def resolve_function(self, name: str, module: ModuleInfo) -> Optional[FunctionInfo]:
        """Resolve a module-level function name as seen from ``module``."""
        if name in module.functions:
            return module.functions[name]
        origin = module.imports.get(name)
        if origin is not None:
            found = self.functions.get(origin)
            if found is not None and not found.is_method:
                return found
        return None

    def resolve_method(self, cls: ClassInfo, name: str) -> Optional[FunctionInfo]:
        """Find ``name`` on ``cls`` or its resolvable bases (MRO-ish)."""
        seen: set[str] = set()
        stack = [cls]
        while stack:
            current = stack.pop(0)
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            if name in current.methods:
                return current.methods[name]
            module = self.modules.get(current.module)
            if module is None:
                continue
            for base in current.bases:
                resolved = self.resolve_class(base, module)
                if resolved is not None:
                    stack.append(resolved)
        return None

    def base_classes(self, cls: ClassInfo) -> tuple[list[ClassInfo], list[str]]:
        """(resolved bases transitively, unresolved base names)."""
        resolved: list[ClassInfo] = []
        unresolved: list[str] = []
        seen: set[str] = set()
        stack = [cls]
        while stack:
            current = stack.pop(0)
            module = self.modules.get(current.module)
            for base in current.bases:
                found = module and self.resolve_class(base, module)
                if found is not None:
                    if found.qualname not in seen:
                        seen.add(found.qualname)
                        resolved.append(found)
                        stack.append(found)
                else:
                    unresolved.append(base)
        return resolved, unresolved

    def allowed_attributes(self, cls: ClassInfo) -> tuple[Optional[set[str]], str]:
        """Writable-attribute set for a slotted class, or (None, reason)
        when the class cannot be checked soundly.

        A class is checkable when it (or a base) declares slots, every
        base resolves to a graph class or a closed builtin, and no base
        carries a dynamic ``__slots__``.
        """
        if not cls.slotted:
            return None, "class is not slotted"
        bases, unresolved = self.base_classes(cls)
        for base in unresolved:
            terminal = base.split(".")[-1]
            if terminal in _OPAQUE_BASES:
                return None, f"opaque base {base}"
            if terminal not in _CLOSED_BUILTIN_BASES:
                return None, f"unresolved base {base}"
        allowed = cls.own_attributes()
        for base in bases:
            if base.slots_dynamic:
                return None, f"dynamic __slots__ on base {base.name}"
            if not base.slotted:
                # A non-slotted resolvable base grants a __dict__: the
                # subclass is open and assignment is unchecked.
                return None, f"non-slotted base {base.name}"
            allowed.update(base.own_attributes())
        return allowed, ""
