"""Determinism & invariant analysis subsystem.

The paper's evaluation method rests on reproducible repeated-burst
experiments: every figure is a multi-seed average, and PR-DRB's predictive
contribution (replaying a saved solution when a congestion signature
recurs) is only measurable when run-to-run behaviour is bit-stable for a
given seed.  This package makes that property machine-checked instead of
aspirational, in three layers:

* :mod:`repro.analysis.lint` — AST-based static lints tuned to this
  simulator (``no-ambient-rng``, ``no-wall-clock``, ``no-salted-hash``,
  ``no-unordered-iteration``, ``no-float-eq``), with per-line
  ``# repro: allow(<rule>)`` suppressions and JSON/human output.
  Run as ``python -m repro.analysis src/``.
* :mod:`repro.analysis.invariants` — :class:`DebugInvariants`, a runtime
  checker installable on a live :class:`~repro.network.fabric.Fabric`
  asserting clock monotonicity, packet conservation, buffer-credit
  non-negativity and metapath zone-transition legality while a simulation
  runs.
* :mod:`repro.analysis.replay` — the seeded-replay determinism harness:
  run a scenario twice with the same seed and diff event-trace and metric
  digests.  Run as ``python -m repro.analysis replay``.
* :mod:`repro.analysis.contracts` — the cross-module contract analyzer:
  a shared module graph + symbol table with five passes (digest-purity,
  spawn-safety, slots-consistency, scheduler-callback, frozen-stats-keys)
  enforcing contracts no single-file lint can see.  Run as
  ``python -m repro.analysis check``.
* :mod:`repro.analysis.reporting` — the shared reporting stack: ratchet
  baselines, SARIF/JSON/text rendering, and the stale-pragma audit, used
  by both the lints and the contract analyzer.

See ``docs/invariants.md`` and ``docs/static_analysis.md`` for the
complete rule & invariant catalogue.
"""

from repro.analysis.invariants import DebugInvariants, InvariantViolation
from repro.analysis.lint import (
    ALL_RULES,
    Violation,
    lint_file,
    lint_paths,
    lint_source,
)
from repro.analysis.replay import ReplayReport, RunDigest, check_determinism, run_scenario

__all__ = [
    "ALL_RULES",
    "DebugInvariants",
    "InvariantViolation",
    "ReplayReport",
    "RunDigest",
    "Violation",
    "check_determinism",
    "lint_file",
    "lint_paths",
    "lint_source",
    "run_scenario",
]
