"""Entry point: ``python -m repro.analysis``.

* ``python -m repro.analysis [paths...]`` — run the determinism lints
  (exit 1 on any unsuppressed violation).
* ``python -m repro.analysis replay [...]`` — run the seeded-replay
  determinism harness (exit 1 when same-seed runs diverge).
* ``python -m repro.analysis check [...]`` — run the cross-module
  contract analyzer (digest-purity, spawn-safety, slots-consistency,
  scheduler-callback, frozen-stats-keys) against the ratchet baseline.
"""

from __future__ import annotations

import sys


def main(argv: list[str]) -> int:
    if argv and argv[0] == "replay":
        from repro.analysis.replay import main as replay_main

        return replay_main(argv[1:])
    if argv and argv[0] == "check":
        from repro.analysis.contracts.cli import main as check_main

        return check_main(argv[1:])
    from repro.analysis.lint import main as lint_main

    return lint_main(argv)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
