"""Runtime invariant checker for live simulations.

:class:`DebugInvariants` installs on a :class:`~repro.network.fabric.Fabric`
and asserts, while events execute, the properties every refactor of the
engine/fabric/routing stack must preserve:

* **clock monotonicity** — event times never run backwards (checked on
  every executed event via :attr:`Simulator.event_hook`);
* **packet conservation** — every injected data packet is delivered,
  dropped (see ``Fabric.dropped_by_reason``), or still in flight (in the
  calendar or a VC queue); nothing is silently lost or double-counted.
  Retransmitted copies from :class:`~repro.faults.recovery.ReliableTransport`
  each count as their own injected packet, so the ledger balances per wire
  copy even under fault injection;
* **buffer credits** — per-port occupancy equals the queued bytes and
  never goes negative (the credit view: free space never exceeds the
  buffer size);
* **metapath zone-transition legality** — the L/M/H controller (Eq. 3.4 /
  Fig. 3.9) only *opens* paths in the H zone (gradual expansion or a
  replayed solution), only *closes* them in L, keeps the open-path count
  within ``[1, max_paths]``, and classifies zones consistently with the
  thresholds.  Fault rerouting (failed links) is exempt from the zone
  gates — the FT behaviour legitimately reopens paths regardless of zone,
  and ``Metapath.prune`` (closing MSPs that cross dead links) is checked
  only against the ``[1, max_paths]`` bound.

Checks that scan state (conservation, credits) run every
``check_interval_events`` events; the per-event clock check is O(1).
Intended for tests and debugging runs — install via the ``invariants``
pytest fixture (``tests/conftest.py``) or directly::

    inv = DebugInvariants(fabric).install()
    sim.run(until=...)
    inv.assert_drained()

A violated invariant raises :class:`InvariantViolation` (an
``AssertionError`` subclass, so ``pytest.raises(AssertionError)`` also
catches it).  See ``docs/invariants.md`` for the catalogue.
"""

from __future__ import annotations

from typing import Optional

from repro.core.thresholds import Zone
from repro.network.packet import DATA
from repro.sim.engine import Event


class InvariantViolation(AssertionError):
    """A machine-checked simulation invariant was broken."""


class DebugInvariants:
    """Install-once invariant checker for one fabric + simulator pair."""

    def __init__(self, fabric, check_interval_events: int = 64) -> None:
        self.fabric = fabric
        self.sim = fabric.sim
        self.check_interval_events = max(1, int(check_interval_events))
        self.checks_run = 0
        self.events_seen = 0
        self._last_event_time = float("-inf")
        self._installed = False

    # ------------------------------------------------------------------
    # Installation
    # ------------------------------------------------------------------
    def install(self) -> "DebugInvariants":
        """Hook the simulator and (when present) the DRB-family policy."""
        if self._installed:
            return self
        self._installed = True
        self.sim.add_observer(self._on_event)
        policy = self.fabric.policy
        if hasattr(policy, "flow_state") and hasattr(policy, "flows"):
            self._instrument_policy(policy)
        return self

    def uninstall(self) -> None:
        if self._installed:
            self.sim.remove_observer(self._on_event)
            self._installed = False

    # ------------------------------------------------------------------
    # Event-level checks
    # ------------------------------------------------------------------
    def _on_event(self, event: Event) -> None:
        if event.time < self._last_event_time:
            self._fail(
                f"clock ran backwards: event at t={event.time!r} after "
                f"t={self._last_event_time!r}"
            )
        if event.time != self.sim.now:
            self._fail(
                f"engine clock {self.sim.now!r} disagrees with executing "
                f"event time {event.time!r}"
            )
        self._last_event_time = event.time
        self.events_seen += 1
        if self.events_seen % self.check_interval_events == 0:
            self.check(current_event=event)

    # ------------------------------------------------------------------
    # State-scan checks
    # ------------------------------------------------------------------
    def check(self, current_event: Optional[Event] = None) -> None:
        """Run every state-scan invariant now."""
        self.checks_run += 1
        self._check_credits()
        self._check_conservation(current_event)

    def _check_credits(self) -> None:
        cfg = self.fabric.config
        for router in self.fabric.routers:
            for port in router.ports.values():
                queued = sum(size for _, _, size in port.queue)
                if port.occupancy_bytes != queued:
                    self._fail(
                        f"router {router.router_id} port ->"
                        f"{port.target_kind}:{port.target}: occupancy_bytes="
                        f"{port.occupancy_bytes} but queue holds {queued} bytes"
                    )
                if port.occupancy_bytes < 0:
                    self._fail(
                        f"router {router.router_id} port ->"
                        f"{port.target_kind}:{port.target}: negative buffer "
                        f"occupancy {port.occupancy_bytes} (credits exceed "
                        f"buffer size {cfg.buffer_size_bytes})"
                    )
                by_flow: dict = {}
                for _, flow, size in port.queue:
                    by_flow[flow] = by_flow.get(flow, 0) + size
                if port.flow_bytes != by_flow:
                    self._fail(
                        f"router {router.router_id} port ->"
                        f"{port.target_kind}:{port.target}: incremental CFD "
                        f"accounting flow_bytes={port.flow_bytes} disagrees "
                        f"with queue contents {by_flow}"
                    )

    def _in_flight_data(self, current_event: Optional[Event]) -> int:
        """Count DATA packets with a pending arrival/delivery somewhere."""
        fabric = self.fabric
        count = 0

        def _count_event(event: Event) -> int:
            if event.cancelled:
                return 0
            if event.fn not in (fabric._arrive, fabric._deliver):
                return 0
            return sum(
                1
                for arg in event.args
                if getattr(arg, "kind", None) == DATA
            )

        for event in self.sim._queue:
            count += _count_event(event)
        if current_event is not None:
            # The event being executed was already popped from the queue
            # but its packet has not been delivered/forwarded yet.
            count += _count_event(current_event)
        vc = getattr(fabric, "_vc", None)
        if vc is not None:
            for state in vc._states.values():
                for queue in state.queues:
                    count += sum(
                        1
                        for packet, _, _ in queue
                        if getattr(packet, "kind", None) == DATA
                    )
        return count

    def _check_conservation(self, current_event: Optional[Event] = None) -> None:
        fabric = self.fabric
        in_flight = self._in_flight_data(current_event)
        unaccounted = (
            fabric.data_packets_injected
            - fabric.data_packets_delivered
            - in_flight
        )
        # ``packets_dropped`` counts drops of any packet kind, so the data
        # share is bounded by it rather than equal to it.
        if not 0 <= unaccounted <= fabric.packets_dropped:
            self._fail(
                "packet conservation broken: injected="
                f"{fabric.data_packets_injected} delivered="
                f"{fabric.data_packets_delivered} in_flight={in_flight} "
                f"dropped(any kind)={fabric.packets_dropped} -> "
                f"{unaccounted} packets unaccounted for"
            )

    def assert_drained(self) -> None:
        """After a quiesced run: no in-flight data, books balanced."""
        in_flight = self._in_flight_data(None)
        if in_flight:
            self._fail(f"{in_flight} data packets still in flight after drain")
        self._check_conservation(None)
        self._check_credits()

    # ------------------------------------------------------------------
    # Metapath / zone legality (DRB-family policies)
    # ------------------------------------------------------------------
    def _instrument_policy(self, policy) -> None:
        original_flow_state = policy.flow_state

        def checked_flow_state(src: int, dst: int):
            fs = original_flow_state(src, dst)
            metapath = fs.metapath
            if not getattr(metapath, "_invariants_wrapped", False):
                self._instrument_metapath(fs, metapath)
            return fs

        policy.flow_state = checked_flow_state

        original_reconfigure = policy._reconfigure

        def checked_reconfigure(fs, now: float) -> None:
            # The zone is classified from the aggregate latency *on entry*;
            # any expand/shrink the step then performs changes the
            # aggregate, so the comparison must use the pre-action value.
            entry_latency = fs.metapath.latency_s()
            expected = fs.thresholds.zone(entry_latency)
            original_reconfigure(fs, now)
            if fs.zone is not expected:
                self._fail(
                    f"zone classification inconsistent for flow "
                    f"({fs.src}->{fs.dst}): state machine says "
                    f"{fs.zone.value}, thresholds say {expected.value} "
                    f"for L(MP)={entry_latency:.3e}s"
                )

        policy._reconfigure = checked_reconfigure

    def _instrument_metapath(self, fs, metapath) -> None:
        metapath._invariants_wrapped = True
        original_expand = metapath.expand
        original_shrink = metapath.shrink
        original_apply = metapath.apply_solution
        original_prune = metapath.prune

        def expand():
            if fs.zone is not Zone.HIGH and not self.fabric.failed_links:
                self._fail(
                    f"metapath expand for flow ({fs.src}->{fs.dst}) in zone "
                    f"{fs.zone.value}; paths may only open in H (Fig. 3.9)"
                )
            result = original_expand()
            self._check_metapath_bounds(fs, metapath)
            return result

        def shrink():
            if fs.zone is not Zone.LOW and not self.fabric.failed_links:
                self._fail(
                    f"metapath shrink for flow ({fs.src}->{fs.dst}) in zone "
                    f"{fs.zone.value}; paths may only close in L (Fig. 3.9)"
                )
            result = original_shrink()
            self._check_metapath_bounds(fs, metapath)
            return result

        def apply_solution(indices):
            if fs.zone is not Zone.HIGH and not self.fabric.failed_links:
                self._fail(
                    f"solution replay for flow ({fs.src}->{fs.dst}) in zone "
                    f"{fs.zone.value}; saved solutions apply on entering H "
                    f"(Fig. 3.10) or during fault rerouting"
                )
            original_apply(indices)
            self._check_metapath_bounds(fs, metapath)

        def prune(dead_indices):
            # Pruning is a fault reaction, not a zone transition, so no
            # zone-legality gate — only the [1, max_paths] bound applies.
            result = original_prune(dead_indices)
            self._check_metapath_bounds(fs, metapath)
            return result

        metapath.expand = expand
        metapath.shrink = shrink
        metapath.apply_solution = apply_solution
        metapath.prune = prune

    def _check_metapath_bounds(self, fs, metapath) -> None:
        if not 1 <= metapath.active_count <= metapath.max_paths:
            self._fail(
                f"flow ({fs.src}->{fs.dst}) has {metapath.active_count} open "
                f"paths; must stay within [1, {metapath.max_paths}]"
            )

    # ------------------------------------------------------------------
    def _fail(self, message: str) -> None:
        raise InvariantViolation(
            f"[t={self.sim.now:.6e}s after {self.events_seen} events] {message}"
        )
