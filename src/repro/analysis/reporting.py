"""Shared reporting stack: formats, ratchet baselines, pragma audit.

Both analysis front ends — the determinism linter
(:mod:`repro.analysis.lint`) and the cross-module contract analyzer
(:mod:`repro.analysis.contracts`) — emit the same finding shape
(:class:`~repro.analysis.lint.Violation`) and report through this module,
so there is exactly one implementation of:

* **output formats** — human text, machine JSON, and SARIF 2.1.0 (the
  interchange format CI code-scanning uploads consume);
* **ratchet baselines** — a committed JSON ledger of known findings keyed
  by ``(rule, path, message)`` with a count.  Findings covered by the
  baseline don't fail the build; *new* findings do, and a baseline can
  only shrink (``--update-baseline`` rewrites it from the current tree,
  which CI diffs will show as deletions when debt is paid down);
* **suppression audit** — ``# repro: allow(<rule>)`` pragmas that no
  longer suppress anything are technical debt in reverse: they hide the
  rule from future regressions.  :func:`audit_pragmas` runs every known
  rule (lint *and* contract passes) and reports stale pragmas.

See ``docs/static_analysis.md`` for the workflow.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Mapping, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.lint import Violation

__all__ = [
    "Baseline",
    "BaselineDelta",
    "StalePragma",
    "audit_pragmas",
    "render_json",
    "render_sarif",
    "render_text",
]

SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"
TOOL_NAME = "repro.analysis"


# ----------------------------------------------------------------------
# Output formats
# ----------------------------------------------------------------------
def render_text(violations: Sequence["Violation"], files_checked: int) -> str:
    """The classic one-line-per-finding rendering plus a summary line."""
    lines = [v.render() for v in violations]
    label = "violation" if len(violations) == 1 else "violations"
    lines.append(f"{len(violations)} {label} in {files_checked} files")
    return "\n".join(lines)


def render_json(violations: Sequence["Violation"], files_checked: int) -> str:
    return json.dumps(
        {
            "files_checked": files_checked,
            "violations": [v.to_dict() for v in violations],
        },
        indent=2,
    )


def render_sarif(
    violations: Sequence["Violation"],
    rule_catalogue: Mapping[str, str],
) -> str:
    """SARIF 2.1.0 document for ``violations``.

    ``rule_catalogue`` maps every rule id that *could* have fired to its
    one-line summary, so the driver section is stable regardless of which
    rules actually hit (SARIF viewers key severities off the catalogue).
    """
    rule_ids = sorted(rule_catalogue)
    rule_index = {rule_id: i for i, rule_id in enumerate(rule_ids)}
    rules = [
        {
            "id": rule_id,
            "shortDescription": {"text": rule_catalogue[rule_id]},
            "defaultConfiguration": {"level": "error"},
        }
        for rule_id in rule_ids
    ]
    results = []
    for v in violations:
        result = {
            "ruleId": v.rule,
            "level": "error",
            "message": {"text": v.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": Path(v.path).as_posix(),
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": max(v.line, 1),
                            "startColumn": v.col + 1,
                        },
                    }
                }
            ],
        }
        if v.rule in rule_index:
            result["ruleIndex"] = rule_index[v.rule]
        results.append(result)
    document = {
        "$schema": SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "rules": rules,
                    }
                },
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)


# ----------------------------------------------------------------------
# Ratchet baseline
# ----------------------------------------------------------------------
def _fingerprint(violation: "Violation") -> tuple[str, str, str]:
    """Identity of a finding across edits: line/col are deliberately
    excluded so unrelated churn above a known finding doesn't break the
    ratchet."""
    return (violation.rule, Path(violation.path).as_posix(), violation.message)


@dataclass
class BaselineDelta:
    """Result of comparing current findings against a baseline."""

    #: findings not covered by the baseline (these fail the build).
    new: list["Violation"]
    #: baseline entries with a higher count than the tree currently has —
    #: debt that was paid down; ``--update-baseline`` retires them.
    stale: list[dict]
    #: findings absorbed by the baseline.
    suppressed: int


class Baseline:
    """A committed ledger of accepted findings (the ratchet floor).

    File layout::

        {"version": 1,
         "tool": "repro.analysis",
         "entries": [{"rule": ..., "path": ..., "message": ..., "count": N},
                     ...]}
    """

    VERSION = 1

    def __init__(self, counts: Optional[dict[tuple[str, str, str], int]] = None) -> None:
        self.counts: dict[tuple[str, str, str], int] = dict(counts or {})

    # -- construction ---------------------------------------------------
    @classmethod
    def from_violations(cls, violations: Iterable["Violation"]) -> "Baseline":
        counts: dict[tuple[str, str, str], int] = {}
        for v in violations:
            key = _fingerprint(v)
            counts[key] = counts.get(key, 0) + 1
        return cls(counts)

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        data = json.loads(Path(path).read_text(encoding="utf-8"))
        if data.get("version") != cls.VERSION:
            raise ValueError(
                f"unsupported baseline version {data.get('version')!r} in {path}"
            )
        counts: dict[tuple[str, str, str], int] = {}
        for entry in data.get("entries", []):
            key = (str(entry["rule"]), str(entry["path"]), str(entry["message"]))
            counts[key] = counts.get(key, 0) + int(entry.get("count", 1))
        return cls(counts)

    def save(self, path: str | Path) -> None:
        entries = [
            {"rule": rule, "path": file, "message": message, "count": count}
            for (rule, file, message), count in sorted(self.counts.items())
        ]
        payload = {"version": self.VERSION, "tool": TOOL_NAME, "entries": entries}
        Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    # -- comparison -----------------------------------------------------
    def compare(self, violations: Sequence["Violation"]) -> BaselineDelta:
        """Split ``violations`` into baseline-absorbed and new.

        Per fingerprint, the first ``baseline_count`` findings (in report
        order) are absorbed; any excess is new.  Counts the tree no longer
        produces surface as ``stale`` entries.
        """
        budget = dict(self.counts)
        new: list["Violation"] = []
        suppressed = 0
        for v in violations:
            key = _fingerprint(v)
            remaining = budget.get(key, 0)
            if remaining > 0:
                budget[key] = remaining - 1
                suppressed += 1
            else:
                new.append(v)
        stale = [
            {"rule": rule, "path": file, "message": message, "count": count}
            for (rule, file, message), count in sorted(budget.items())
            if count > 0
        ]
        return BaselineDelta(new=new, stale=stale, suppressed=suppressed)


# ----------------------------------------------------------------------
# Unused-suppression audit
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StalePragma:
    """One ``# repro: allow(<rule>)`` name that suppresses nothing."""

    path: str
    line: int
    rule: str
    #: "unused" (rule exists, nothing to suppress) or "unknown" (no such rule).
    reason: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: stale pragma `# repro: allow({self.rule})` ({self.reason})"


def audit_pragmas(paths: Sequence[str]) -> list[StalePragma]:
    """Report every pragma rule name that no longer suppresses a finding.

    Runs *both* engines — the per-file determinism lints and the
    cross-module contract passes — in suppression-tracking mode, then
    diffs the set of ``(path, line, rule)`` pragmas actually consumed
    against the set declared in the sources.
    """
    from repro.analysis import contracts
    from repro.analysis import lint

    declared: set[tuple[str, int, str]] = set()
    known_rules = set(lint.ALL_RULES) | set(contracts.PASS_CATALOGUE)
    files = lint._python_files(paths)
    for file in files:
        source = file.read_text(encoding="utf-8")
        for lineno, rules in lint.allowed_rules(source).items():
            for rule in rules:
                declared.add((str(file), lineno, rule))
    if not declared:
        return []

    used: set[tuple[str, int, str]] = set()
    for file in files:
        _, suppressed = lint.lint_file_tracked(str(file))
        for v in suppressed:
            used.add((v.path, v.line, v.rule))
    manifest = contracts.DEFAULT_MANIFEST if Path(contracts.DEFAULT_MANIFEST).exists() else None
    report = contracts.analyze_paths(paths, manifest_path=manifest)
    for v in report.suppressed:
        used.add((v.path, v.line, v.rule))

    stale = []
    for path, line, rule in sorted(declared - used):
        reason = "unused" if rule in known_rules else "unknown rule"
        stale.append(StalePragma(path=path, line=line, rule=rule, reason=reason))
    return stale
