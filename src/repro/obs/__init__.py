"""repro.obs — structured tracing, metrics registry, and timeline export.

The observability layer for the whole stack.  Three pieces:

* :class:`~repro.obs.tracer.Tracer` — a flight recorder of typed events
  (packet lifecycle, router contention, policy decisions, faults,
  retransmissions) backed by a bounded ring buffer with pluggable sinks
  (JSONL file, in-memory, metrics counting);
* :class:`~repro.obs.metrics.MetricsRegistry` — counters / gauges /
  histograms snapshotted on a configurable *sim-time* cadence;
* ``python -m repro.obs`` — CLI with ``summarize``, ``export``
  (``--format perfetto|jsonl``), ``diff``, ``record`` and ``selftest``.

The instrumentation contract (docs/observability.md): every hot-layer
emit sits behind a single ``if tracer is not None`` guard, events observe
and never mutate, and with tracing disabled the ``repro.perf`` replay
digests stay bit-identical.  Tracing *enabled* also keeps digests
identical — observation rides the simulator observer list and schedules
no events of its own.
"""

from repro.obs.bus import BusSubscription, MetricsBus
from repro.obs.export import (
    export_prometheus,
    registry_from_records,
    to_perfetto,
    write_perfetto,
)
from repro.obs.instrument import instrument, register_fabric_metrics
from repro.obs.metrics import Counter, CountingSink, Gauge, Histogram, MetricsRegistry
from repro.obs.tracer import (
    TRACE_VERSION,
    JsonlSink,
    MemorySink,
    TraceRecord,
    Tracer,
    category,
    read_trace,
)

__all__ = [
    "TRACE_VERSION",
    "BusSubscription",
    "Counter",
    "CountingSink",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "MemorySink",
    "MetricsBus",
    "MetricsRegistry",
    "TraceRecord",
    "Tracer",
    "category",
    "export_prometheus",
    "instrument",
    "read_trace",
    "register_fabric_metrics",
    "registry_from_records",
    "to_perfetto",
    "write_perfetto",
]
