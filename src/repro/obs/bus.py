"""Thread-safe fan-out bus carrying live telemetry to subscribers.

The serving layer (:mod:`repro.serve`) watches a running sweep from
*outside* the simulation: the orchestrator's progress hooks and each
cell's :class:`~repro.obs.metrics.MetricsRegistry` cadence snapshots are
published into a :class:`MetricsBus`, and every HTTP subscriber (an SSE
stream, the dashboard, a test) reads its own bounded queue.

The contract mirrors the :class:`~repro.obs.tracer.Tracer` ring: a slow
or stalled consumer must never slow the simulation down.  ``publish``
never blocks — when a subscriber's queue is full the event is dropped
*for that subscriber only* and its ``dropped`` counter incremented.  The
publishing thread (the one executing simulation cells) therefore runs at
the same speed whether zero, one, or fifty subscribers are attached, and
whether they are keeping up or not.

Events are plain JSON-safe dicts::

    {"seq": <global sequence>, "type": "progress" | "cell.metrics" | "job",
     "job": <job id or None>, "data": {...}}

``seq`` is a bus-global monotonically increasing integer, so a consumer
can detect its own gaps (its subscription's ``dropped`` counter says how
many it lost).  Nothing here reads wall clocks or RNG; timestamps, when
present, live inside ``data`` and are stamped by the publisher.
"""

from __future__ import annotations

import queue
import threading
from typing import Optional

__all__ = ["BusSubscription", "MetricsBus", "DEFAULT_QUEUE_SIZE"]

#: per-subscriber queue bound; beyond it, events drop for that subscriber.
DEFAULT_QUEUE_SIZE = 1024


class BusSubscription:
    """One consumer's bounded view of the bus stream.

    Filters are applied at publish time (cheaper than shipping and
    discarding): ``job`` restricts to one job's events plus job-less
    broadcasts, ``types`` to an event-type allowlist.  ``get`` blocks the
    *consumer*; the publisher only ever calls the non-blocking ``offer``.
    """

    __slots__ = ("job", "types", "queue", "dropped", "delivered", "closed")

    def __init__(
        self,
        job: Optional[str] = None,
        types: Optional[tuple] = None,
        maxsize: int = DEFAULT_QUEUE_SIZE,
    ) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.job = job
        self.types = None if types is None else tuple(types)
        self.queue: queue.Queue = queue.Queue(maxsize=maxsize)
        self.dropped = 0
        self.delivered = 0
        self.closed = False

    # -- publisher side (never blocks) ----------------------------------
    def wants(self, event: dict) -> bool:
        if self.types is not None and event["type"] not in self.types:
            return False
        if self.job is not None:
            event_job = event.get("job")
            if event_job is not None and event_job != self.job:
                return False
        return True

    def offer(self, event: dict) -> bool:
        """Enqueue without blocking; count a drop when the queue is full."""
        try:
            self.queue.put_nowait(event)
        except queue.Full:
            self.dropped += 1
            return False
        self.delivered += 1
        return True

    # -- consumer side --------------------------------------------------
    def get(self, timeout: Optional[float] = None) -> Optional[dict]:
        """Next event, or None on timeout (the SSE heartbeat path)."""
        try:
            return self.queue.get(timeout=timeout)
        except queue.Empty:
            return None

    def drain(self) -> list:
        """Every event currently queued, without blocking."""
        events = []
        while True:
            try:
                events.append(self.queue.get_nowait())
            except queue.Empty:
                return events

    def close(self) -> None:
        self.closed = True


class MetricsBus:
    """Publish/subscribe fan-out with bounded, lossy per-subscriber queues.

    All methods are safe to call from any thread.  The subscriber list is
    copied under the lock and iterated outside it, so a publish can never
    deadlock against a subscribe — and the lock is held only for list
    bookkeeping, never while enqueueing.
    """

    def __init__(self, maxsize: int = DEFAULT_QUEUE_SIZE) -> None:
        self.maxsize = maxsize
        self.published = 0
        self._seq = 0
        self._lock = threading.Lock()
        self._subscribers: list[BusSubscription] = []

    # ------------------------------------------------------------------
    def subscribe(
        self,
        job: Optional[str] = None,
        types: Optional[tuple] = None,
        maxsize: Optional[int] = None,
    ) -> BusSubscription:
        subscription = BusSubscription(
            job=job, types=types,
            maxsize=self.maxsize if maxsize is None else maxsize,
        )
        with self._lock:
            self._subscribers.append(subscription)
        return subscription

    def unsubscribe(self, subscription: BusSubscription) -> None:
        subscription.close()
        with self._lock:
            try:
                self._subscribers.remove(subscription)
            except ValueError:
                pass

    # ------------------------------------------------------------------
    def publish(self, type: str, data: dict, job: Optional[str] = None) -> dict:
        """Fan ``data`` out to every matching subscriber; returns the event.

        Never blocks and never raises for consumer-side problems: a full
        queue increments that subscription's ``dropped`` counter and the
        event is lost for that subscriber only.
        """
        with self._lock:
            self._seq += 1
            event = {"seq": self._seq, "type": type, "job": job, "data": data}
            self.published += 1
            subscribers = list(self._subscribers)
        for subscription in subscribers:
            if not subscription.closed and subscription.wants(event):
                subscription.offer(event)
        return event

    # ------------------------------------------------------------------
    @property
    def subscriber_count(self) -> int:
        with self._lock:
            return len(self._subscribers)

    def dropped_total(self) -> int:
        """Events lost across all current subscribers' queues."""
        with self._lock:
            return sum(s.dropped for s in self._subscribers)

    def stats(self) -> dict:
        with self._lock:
            return {
                "published": self.published,
                "subscribers": len(self._subscribers),
                "dropped": sum(s.dropped for s in self._subscribers),
                "delivered": sum(s.delivered for s in self._subscribers),
            }
