"""Wire a tracer / metrics registry into a live fabric.

:func:`instrument` is the one call sites need: it hands the tracer to
every layer that knows how to emit (fabric, policy, routers, NICs — each
holds a ``tracer`` attribute defaulting to ``None`` and guards every emit
with ``if tracer is not None``), registers the standard fabric metrics,
and optionally attaches a sim-time snapshot cadence.

Everything here *observes*: no scheduled events, no mutation of simulated
state — so instrumented and bare runs execute the identical event stream
(``repro.obs selftest`` holds the digests to that).
"""

from __future__ import annotations

from typing import Optional

from repro.obs.metrics import CountingSink, MetricsRegistry
from repro.obs.tracer import Tracer


def instrument(
    fabric,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
    cadence_s: Optional[float] = None,
) -> Optional[Tracer]:
    """Install ``tracer`` and/or ``metrics`` on ``fabric``'s whole stack.

    With a registry present the tracer also gets a
    :class:`~repro.obs.metrics.CountingSink`, so every trace event rolls
    up into ``trace.*`` counters (and the latency/wait histograms).
    Returns the tracer for chaining.
    """
    fabric.tracer = tracer
    fabric.policy.tracer = tracer
    for router in fabric.routers:
        router.tracer = tracer
    for node in fabric.nodes:
        node.tracer = tracer
    if metrics is not None:
        register_fabric_metrics(metrics, fabric)
        if tracer is not None:
            tracer.add_sink(CountingSink(metrics))
        if cadence_s is not None:
            metrics.attach(fabric.sim, cadence_s)
    return tracer


def register_fabric_metrics(metrics: MetricsRegistry, fabric) -> None:
    """Standard gauge/provider set over a fabric's live counters."""
    metrics.gauge("fabric.data_packets_injected", lambda: fabric.data_packets_injected)
    metrics.gauge("fabric.data_packets_delivered", lambda: fabric.data_packets_delivered)
    metrics.gauge("fabric.data_bytes_delivered", lambda: fabric.data_bytes_delivered)
    metrics.gauge("fabric.acks_delivered", lambda: fabric.acks_delivered)
    metrics.gauge(
        "fabric.predictive_acks_delivered", lambda: fabric.predictive_acks_delivered
    )
    metrics.gauge("fabric.packets_dropped", lambda: fabric.packets_dropped)
    metrics.gauge("fabric.queue_occupancy_bytes", lambda: _queued_bytes(fabric))
    metrics.gauge("sim.pending_events", lambda: fabric.sim.pending)
    metrics.provider("drops", lambda: dict(sorted(fabric.dropped_by_reason.items())))
    metrics.provider("policy", lambda: _sorted_stats(fabric.policy))
    if hasattr(fabric.policy, "databases"):
        metrics.provider("solution_db", lambda: solution_db_stats(fabric.policy))
    transport = fabric.transport
    if transport is not None and hasattr(transport, "stats"):
        metrics.provider("transport", transport.stats)


def solution_db_stats(policy) -> dict:
    """Size and hit-rate view of a PR-DRB policy's solution databases.

    ``solutions_missed`` is an observability-only counter (kept out of
    ``policy.stats()`` so replay metric digests stay frozen); older
    policy objects without it report a hit rate over hits alone.
    """
    size = sum(len(db.solutions) for db in policy.databases.values())
    hits = policy.solutions_applied
    misses = getattr(policy, "solutions_missed", 0)
    consulted = hits + misses
    return {
        "size": size,
        "flows_tracked": len(policy.databases),
        "hits": hits,
        "misses": misses,
        "hit_rate": hits / consulted if consulted else 0.0,
        "saves": policy.solutions_saved,
        "invalidated": policy.solutions_invalidated,
    }


def _queued_bytes(fabric) -> int:
    return sum(
        port.occupancy_bytes
        for router in fabric.routers
        for port in router.ports.values()
    )


def _sorted_stats(policy) -> dict:
    return dict(sorted(policy.stats().items()))
