"""Merge per-shard JSONL traces into one canonical timeline.

A sharded run (docs/sharding.md) writes one trace file per worker plus
the coordinator's ``shard.sync`` stream; downstream tooling (the obs
exporter, trace diffing) expects a single file ordered by simulated
time.  The merge is a stable sort on ``(ts, input index, record
index)``: records with equal timestamps keep a deterministic order, so
two merges of the same run are byte-identical.
"""

from __future__ import annotations

from typing import Sequence

from repro.obs.tracer import JsonlSink, read_trace

__all__ = ["merge_shard_traces"]


def merge_shard_traces(inputs: Sequence, output, label: str = "shard-merged") -> int:
    """Merge ``inputs`` (JSONL trace paths) into ``output``; returns count."""
    keyed = []
    for index, path in enumerate(inputs):
        _header, records = read_trace(path)
        keyed.extend(
            (record.ts, index, position, record)
            for position, record in enumerate(records)
        )
    keyed.sort(key=lambda item: (item[0], item[1], item[2]))
    sink = JsonlSink(output, label=label)
    try:
        for _ts, _index, _position, record in keyed:
            sink.write(record)
    finally:
        sink.close()
    return len(keyed)
