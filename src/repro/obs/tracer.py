"""Typed event tracing with a bounded ring buffer and pluggable sinks.

Event taxonomy (names are ``category.action``; the category is everything
before the first dot):

=====================  ==================================================
``packet.*``           inject / deliver / drop — data-packet lifecycle
``msg.*``              complete — full message reassembled at the NIC
``router.*``           contention (CFD episode), queue_bytes (counter)
``zone.*``             transition — L/M/H metapath zone changes
``congestion.*``       episode — a HIGH-zone span (``ph="X"`` with dur)
``msp.*``              open / close / select / prune — metapath changes
``notify.*``           send / recv — ACK & predictive-ACK notification
``prediction.*``       hit / miss / save / invalidate — solution DB
``policy.*``           watchdog / nack_reaction — FR-DRB reactions
``fault.*``            fail / restore / degrade / undegrade — injector
``retx.*``             send / abandon — reliable-transport recovery
=====================  ==================================================

Tracks identify the timeline an event belongs to, as a ``(kind, ident)``
pair: ``("flow", "src-dst")``, ``("router", id)``, ``("nic", id)``,
``("fabric", 0)``.  The Perfetto exporter turns each kind into a process
and each ident into a thread, so a run opens in ``ui.perfetto.dev`` with
one track per router / NIC / flow.

Records are plain data.  Emission never mutates simulation state, never
consults wall clocks or ambient RNG, and the JSONL encoding is canonical
(sorted keys, compact separators) so same-seed runs produce byte-identical
trace files — the property ``python -m repro.obs diff`` and the
determinism tests check.  The one intentionally variable field lives in
the *header* line (its ``label``), which diff/compare logic exempts.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, NamedTuple, Optional

#: bump when the record encoding changes shape.
TRACE_VERSION = 1

#: default ring-buffer capacity (records kept in memory per tracer).
DEFAULT_CAPACITY = 65536


class TraceRecord(NamedTuple):
    """One trace event.  ``ph`` follows the Chrome trace-event phases the
    exporter understands: ``"i"`` instant, ``"X"`` complete-with-duration,
    ``"C"`` counter sample."""

    ts: float  # sim time, seconds
    name: str  # "category.action"
    track: tuple  # (kind, ident)
    ph: str = "i"
    dur: float = 0.0  # seconds; only meaningful for ph == "X"
    args: Optional[dict] = None

    @property
    def category(self) -> str:
        return category(self.name)

    def to_json_obj(self) -> dict:
        obj: dict[str, Any] = {
            "name": self.name,
            "ph": self.ph,
            "track": list(self.track),
            "ts": self.ts,
        }
        if self.ph == "X":
            obj["dur"] = self.dur
        if self.args is not None:
            obj["args"] = self.args
        return obj

    @classmethod
    def from_json_obj(cls, obj: dict) -> "TraceRecord":
        return cls(
            ts=obj["ts"],
            name=obj["name"],
            track=tuple(obj["track"]),
            ph=obj.get("ph", "i"),
            dur=obj.get("dur", 0.0),
            args=obj.get("args"),
        )


def category(name: str) -> str:
    """The taxonomy category of an event name (text before the first dot)."""
    return name.partition(".")[0]


def _encode(obj: dict) -> str:
    """Canonical one-line JSON (sorted keys, no whitespace)."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


class Tracer:
    """Flight recorder: bounded ring buffer plus streaming sinks.

    ``emit`` appends to the ring (evicting the oldest record once
    ``capacity`` is reached, counted in ``dropped``) and forwards the
    record to every sink.  Sinks therefore see the *complete* stream even
    when the in-memory ring has wrapped.
    """

    __slots__ = ("records", "emitted", "dropped", "_sinks")

    def __init__(self, capacity: int = DEFAULT_CAPACITY, sinks=()) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.records: deque[TraceRecord] = deque(maxlen=capacity)
        self.emitted = 0
        self.dropped = 0
        self._sinks = list(sinks)

    # ------------------------------------------------------------------
    def emit(
        self,
        ts: float,
        name: str,
        track: tuple,
        args: Optional[dict] = None,
        ph: str = "i",
        dur: float = 0.0,
    ) -> None:
        """Record one event.  Hot-layer call sites guard with a single
        ``if tracer is not None`` so the disabled cost is one branch."""
        record = TraceRecord(ts, name, track, ph, dur, args)
        records = self.records
        if len(records) == records.maxlen:
            self.dropped += 1
        records.append(record)
        self.emitted += 1
        for sink in self._sinks:
            sink.write(record)

    # ------------------------------------------------------------------
    def add_sink(self, sink) -> None:
        self._sinks.append(sink)

    def close(self) -> None:
        """Close every sink that supports closing (idempotent)."""
        for sink in self._sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()

    # ------------------------------------------------------------------
    def by_name(self, name: str) -> list[TraceRecord]:
        """Ring-buffer records with exactly this event name."""
        return [r for r in self.records if r.name == name]

    def counts(self) -> dict[str, int]:
        """Ring-buffer record counts keyed by event name (sorted)."""
        counts: dict[str, int] = {}
        for record in self.records:
            counts[record.name] = counts.get(record.name, 0) + 1
        return dict(sorted(counts.items()))


class MemorySink:
    """Keeps every record in a plain list (unbounded; tests/analysis)."""

    def __init__(self) -> None:
        self.records: list[TraceRecord] = []

    def write(self, record: TraceRecord) -> None:
        self.records.append(record)


class JsonlSink:
    """Streams records to a JSONL file, one canonical JSON object per line.

    The first line is a header object (``type/version/label``); every
    following line is a record.  ``label`` is the one field allowed to
    vary between otherwise identical runs — comparisons exempt the header.
    """

    def __init__(self, path, label: str = "") -> None:
        self.path = path
        self._fh = open(path, "w", encoding="utf-8")
        self._fh.write(
            _encode({"label": label, "type": "header", "version": TRACE_VERSION})
            + "\n"
        )

    def write(self, record: TraceRecord) -> None:
        self._fh.write(_encode(record.to_json_obj()) + "\n")

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()


def read_trace(path) -> tuple[dict, list[TraceRecord]]:
    """Load a JSONL trace: ``(header, records)``.

    Accepts headerless files (header defaults to an empty dict) so the
    reader also works on hand-built fixtures.  Duplicate header lines —
    the artifact of naive file concatenation, which trace merging must
    survive — are skipped: the first header wins, later ones are neither
    records nor errors.
    """
    header: dict = {}
    records: list[TraceRecord] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            obj = json.loads(line)
            if obj.get("type") == "header":
                if not header:
                    header = obj
                continue
            records.append(TraceRecord.from_json_obj(obj))
    return header, records
