"""Chrome/Perfetto ``trace_event`` and Prometheus text-format export.

Two egress formats for the observation layer:

* :func:`to_perfetto` converts :class:`~repro.obs.tracer.TraceRecord`
  streams into the JSON object format ``ui.perfetto.dev`` (and
  ``chrome://tracing``) load directly: each track *kind* becomes a
  process, each track ident a thread, with ``M`` metadata events naming
  both — so a run opens with one named track per router / NIC / flow.
  Timestamps: trace_event ``ts``/``dur`` are microseconds; sim time is
  seconds, so values are scaled by 1e6.  Phases map 1:1 (``i`` instant
  with thread scope, ``X`` complete, ``C`` counter); counter events
  expose their numeric args as the counted series.
* :func:`export_prometheus` renders a live
  :class:`~repro.obs.metrics.MetricsRegistry` in the Prometheus text
  exposition format (counters as ``_total``, histograms as cumulative
  ``_bucket``/``_sum``/``_count``, provider dicts flattened into
  gauges).  ``repro.serve`` re-serves it at ``GET /metrics``; the CLI
  (``python -m repro.obs export --format prometheus``) produces the same
  text standalone by folding a recorded trace through a
  :class:`~repro.obs.metrics.CountingSink`.
"""

from __future__ import annotations

import json
import re
from typing import Iterable

from repro.obs.tracer import TraceRecord, category

_US = 1e6  # seconds -> microseconds


def to_perfetto(records: Iterable[TraceRecord], label: str = "") -> dict:
    """Build a ``{"traceEvents": [...]}`` object from a record stream.

    Deterministic: pids/tids are assigned in first-seen order of the
    (already deterministic) record stream.
    """
    pids: dict[str, int] = {}
    tids: dict[tuple, int] = {}
    events: list[dict] = []
    meta: list[dict] = []

    for record in records:
        kind, ident = record.track[0], record.track[1]
        pid = pids.get(kind)
        if pid is None:
            pid = pids[kind] = len(pids) + 1
            meta.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": str(kind)},
                }
            )
        track = (kind, ident)
        tid = tids.get(track)
        if tid is None:
            tid = tids[track] = len(tids) + 1
            meta.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": f"{kind} {ident}"},
                }
            )
        event: dict = {
            "name": record.name,
            "cat": category(record.name),
            "ph": record.ph,
            "ts": record.ts * _US,
            "pid": pid,
            "tid": tid,
        }
        if record.ph == "X":
            event["dur"] = record.dur * _US
        elif record.ph == "i":
            event["s"] = "t"  # thread-scoped instant
        if record.args is not None:
            if record.ph == "C":
                # Counter tracks chart every numeric arg as a series.
                event["args"] = {
                    k: v
                    for k, v in record.args.items()
                    if isinstance(v, (int, float))
                }
            else:
                event["args"] = record.args
        events.append(event)

    return {"traceEvents": meta + events, "displayTimeUnit": "ns", "label": label}


def write_perfetto(path, records: Iterable[TraceRecord], label: str = "") -> None:
    """Serialize :func:`to_perfetto` output to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(to_perfetto(records, label=label), fh, sort_keys=True)
        fh.write("\n")


# ----------------------------------------------------------------------
# Prometheus text exposition format
# ----------------------------------------------------------------------
_PROM_INVALID = re.compile(r"[^a-zA-Z0-9_:]")


def prometheus_name(name: str, namespace: str = "repro") -> str:
    """Sanitize a dotted metric name into a legal Prometheus name."""
    flat = _PROM_INVALID.sub("_", name)
    return f"{namespace}_{flat}" if namespace else flat


def _prom_value(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _flatten_numeric(prefix: str, obj: dict, out: list) -> None:
    """Collect ``(dotted_name, number)`` leaves of a provider dict."""
    for key in sorted(obj):
        value = obj[key]
        name = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, dict):
            _flatten_numeric(name, value, out)
        elif isinstance(value, (int, float)):
            out.append((name, value))


def export_prometheus(registry, namespace: str = "repro") -> str:
    """Render ``registry`` in the Prometheus text exposition format.

    * counters  → ``<ns>_<name>_total`` (``# TYPE ... counter``)
    * gauges    → ``<ns>_<name>`` (``# TYPE ... gauge``), read live
    * histograms→ cumulative ``_bucket{le="..."}`` series ending in
      ``le="+Inf"`` plus ``_sum`` and ``_count``
    * providers → every numeric leaf of the provider's dict, flattened
      with dots and exported as a gauge

    Reading is observation-only (counters/histograms are passive;
    gauges/providers are the same pull callables snapshots use), so
    scraping never perturbs a running simulation.
    """
    lines: list[str] = []

    for name, counter in sorted(registry._counters.items()):
        metric = prometheus_name(name, namespace) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_prom_value(counter.value)}")

    gauges: list[tuple[str, float]] = [
        (name, gauge.read()) for name, gauge in sorted(registry._gauges.items())
    ]
    provided: list[tuple[str, float]] = []
    for provider_name, fn in sorted(registry._providers.items()):
        value = fn()
        if isinstance(value, dict):
            _flatten_numeric(provider_name, value, provided)
    for name, value in gauges + provided:
        metric = prometheus_name(name, namespace)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_prom_value(value)}")

    for name, histogram in sorted(registry._histograms.items()):
        metric = prometheus_name(name, namespace)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bound, count in zip(histogram.bounds, histogram.counts):
            cumulative += count
            lines.append(
                f'{metric}_bucket{{le="{_prom_value(bound)}"}} {cumulative}'
            )
        lines.append(f'{metric}_bucket{{le="+Inf"}} {histogram.count}')
        lines.append(f"{metric}_sum {_prom_value(histogram.total)}")
        lines.append(f"{metric}_count {histogram.count}")

    return "\n".join(lines) + "\n"


def registry_from_records(records: Iterable[TraceRecord]):
    """Fold a record stream into a fresh registry via ``CountingSink``.

    The standalone path behind ``python -m repro.obs export --format
    prometheus``: a recorded JSONL trace becomes the same ``trace.*``
    counters and latency/wait histograms a live run would have built.
    """
    from repro.obs.metrics import CountingSink, MetricsRegistry

    registry = MetricsRegistry()
    sink = CountingSink(registry)
    for record in records:
        sink.write(record)
    return registry
