"""Chrome/Perfetto ``trace_event`` export.

Converts :class:`~repro.obs.tracer.TraceRecord` streams into the JSON
object format ``ui.perfetto.dev`` (and ``chrome://tracing``) load
directly: each track *kind* becomes a process, each track ident a thread,
with ``M`` metadata events naming both — so a run opens with one named
track per router / NIC / flow.

Timestamps: trace_event ``ts``/``dur`` are microseconds; sim time is
seconds, so values are scaled by 1e6.  Phases map 1:1 (``i`` instant with
thread scope, ``X`` complete, ``C`` counter); counter events expose their
numeric args as the counted series.
"""

from __future__ import annotations

import json
from typing import Iterable

from repro.obs.tracer import TraceRecord, category

_US = 1e6  # seconds -> microseconds


def to_perfetto(records: Iterable[TraceRecord], label: str = "") -> dict:
    """Build a ``{"traceEvents": [...]}`` object from a record stream.

    Deterministic: pids/tids are assigned in first-seen order of the
    (already deterministic) record stream.
    """
    pids: dict[str, int] = {}
    tids: dict[tuple, int] = {}
    events: list[dict] = []
    meta: list[dict] = []

    for record in records:
        kind, ident = record.track[0], record.track[1]
        pid = pids.get(kind)
        if pid is None:
            pid = pids[kind] = len(pids) + 1
            meta.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": str(kind)},
                }
            )
        track = (kind, ident)
        tid = tids.get(track)
        if tid is None:
            tid = tids[track] = len(tids) + 1
            meta.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": f"{kind} {ident}"},
                }
            )
        event: dict = {
            "name": record.name,
            "cat": category(record.name),
            "ph": record.ph,
            "ts": record.ts * _US,
            "pid": pid,
            "tid": tid,
        }
        if record.ph == "X":
            event["dur"] = record.dur * _US
        elif record.ph == "i":
            event["s"] = "t"  # thread-scoped instant
        if record.args is not None:
            if record.ph == "C":
                # Counter tracks chart every numeric arg as a series.
                event["args"] = {
                    k: v
                    for k, v in record.args.items()
                    if isinstance(v, (int, float))
                }
            else:
                event["args"] = record.args
        events.append(event)

    return {"traceEvents": meta + events, "displayTimeUnit": "ns", "label": label}


def write_perfetto(path, records: Iterable[TraceRecord], label: str = "") -> None:
    """Serialize :func:`to_perfetto` output to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(to_perfetto(records, label=label), fh, sort_keys=True)
        fh.write("\n")
