"""Counters, gauges, histograms, and the cadence-snapshotting registry.

A :class:`MetricsRegistry` aggregates three primitive kinds plus
*providers* (callables returning whole sub-dicts, e.g. a policy's
``stats()``), and can snapshot itself on a configurable **sim-time**
cadence.  The cadence rides the simulator's observer list
(:meth:`~repro.sim.engine.Simulator.add_observer`) instead of scheduling
events of its own — so attaching a registry never changes the event
digests: the event stream a traced and an untraced run execute is
bit-identical (the invariant ``repro.obs selftest`` asserts).
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Callable, Optional

from repro.obs.tracer import TraceRecord

#: default latency-style histogram bucket bounds, in seconds.
DEFAULT_BOUNDS = (
    1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 1e-2,
)


class Counter:
    """Monotonic event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A point-in-time reading, pulled from a callable at snapshot time."""

    __slots__ = ("name", "fn")

    def __init__(self, name: str, fn: Callable[[], float]) -> None:
        self.name = name
        self.fn = fn

    def read(self) -> float:
        return self.fn()


class Histogram:
    """Fixed-bound bucket histogram (one overflow bucket past the last
    bound), with running count and sum for mean reconstruction."""

    __slots__ = ("name", "bounds", "counts", "count", "total")

    def __init__(self, name: str, bounds=DEFAULT_BOUNDS) -> None:
        self.name = name
        self.bounds = tuple(bounds)
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError("histogram bounds must be sorted")
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect_right(self.bounds, value)] += 1
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.total,
        }


class MetricsRegistry:
    """Named metrics plus periodic sim-time snapshots.

    Snapshot layout::

        {"t": <sim seconds>,
         "counters": {name: int, ...},
         "gauges": {name: float, ...},
         "histograms": {name: {bounds, counts, count, sum}, ...},
         <provider-name>: <provider dict>, ...}

    All maps are emitted in sorted-name order so serialized snapshots are
    canonical.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._providers: dict[str, Callable[[], dict]] = {}
        self.snapshots: list[dict] = []
        self.cadence_s: Optional[float] = None
        self._next_due = 0.0
        #: called with each snapshot dict right after it is recorded — the
        #: live-telemetry egress (:class:`repro.obs.bus.MetricsBus` rides
        #: it).  Observation only: the callback sees a finished snapshot
        #: and must not touch simulation state.
        self.on_snapshot: Optional[Callable[[dict], None]] = None

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def gauge(self, name: str, fn: Callable[[], float]) -> Gauge:
        gauge = self._gauges[name] = Gauge(name, fn)
        return gauge

    def histogram(self, name: str, bounds=DEFAULT_BOUNDS) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(name, bounds)
        return histogram

    def provider(self, name: str, fn: Callable[[], dict]) -> None:
        """Register a callable whose dict result is embedded in every
        snapshot under ``name`` (e.g. a policy's ``stats()``)."""
        if name in ("t", "counters", "gauges", "histograms"):
            raise ValueError(f"provider name {name!r} shadows a snapshot key")
        self._providers[name] = fn

    def bind_recorder(self, recorder) -> None:
        """Share the experiment recorder's serialization: every snapshot
        embeds :meth:`repro.metrics.recorder.StatsRecorder.to_dict`."""
        self.provider("recorder", recorder.to_dict)

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def snapshot(self, now: float) -> dict:
        """Record and return a snapshot of every metric at sim time ``now``."""
        snap: dict = {"t": now}
        snap["counters"] = {
            name: c.value for name, c in sorted(self._counters.items())
        }
        snap["gauges"] = {
            name: g.read() for name, g in sorted(self._gauges.items())
        }
        snap["histograms"] = {
            name: h.to_dict() for name, h in sorted(self._histograms.items())
        }
        for name, fn in sorted(self._providers.items()):
            snap[name] = fn()
        self.snapshots.append(snap)
        if self.on_snapshot is not None:
            self.on_snapshot(snap)
        return snap

    def attach(self, sim, cadence_s: float) -> Callable:
        """Snapshot every ``cadence_s`` sim-seconds, driven by the event
        stream: an observer checks each executed event's time and fires
        every due snapshot (stamped at its due time, so cadence timestamps
        are stable regardless of event spacing).  Returns the observer so
        callers can ``sim.remove_observer`` it.

        Deliberately *not* implemented with scheduled events: observers
        leave the event queue — and therefore the replay digests —
        untouched.
        """
        if cadence_s <= 0:
            raise ValueError("cadence_s must be > 0")
        self.cadence_s = cadence_s
        self._next_due = sim.now + cadence_s

        def on_event(event) -> None:
            t = event.time
            while t >= self._next_due:
                self.snapshot(self._next_due)
                self._next_due += cadence_s

        return sim.add_observer(on_event)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Cadence snapshots plus a counters/histograms tail reading.

        (Gauges/providers read live state that may be torn down by the
        time ``to_dict`` is called, so only the passive primitives appear
        in the tail; the snapshots carry the full picture.)
        """
        return {
            "cadence_s": self.cadence_s,
            "snapshots": list(self.snapshots),
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "histograms": {
                name: h.to_dict() for name, h in sorted(self._histograms.items())
            },
        }


class CountingSink:
    """Tracer sink that folds the event stream into a registry.

    Every record increments ``trace.<name>``; two argument-bearing events
    additionally feed histograms (delivery latency, CFD wait), so the
    registry keeps distributions even after the tracer ring wraps.
    """

    def __init__(self, metrics: MetricsRegistry) -> None:
        self.metrics = metrics

    def write(self, record: TraceRecord) -> None:
        self.metrics.counter(f"trace.{record.name}").inc()
        args = record.args
        if args is None:
            return
        if record.name == "packet.deliver":
            latency = args.get("latency_s")
            if latency is not None:
                self.metrics.histogram("packet.latency_s").observe(latency)
        elif record.name == "router.contention":
            wait = args.get("wait_s")
            if wait is not None:
                self.metrics.histogram("router.wait_s").observe(wait)
