"""``python -m repro.obs`` — trace tooling.

Subcommands:

* ``summarize PATH`` — event counts, zone transitions, notification and
  prediction statistics (solution-DB hit rate), drop reasons, latency.
* ``export PATH --format perfetto|jsonl|prometheus --out OUT`` — convert
  a JSONL trace for ``ui.perfetto.dev``, re-emit canonical JSONL, or
  fold it into Prometheus text-format metrics.
* ``tail PATH [--name N] [--track T] [--follow]`` — live counterpart of
  ``summarize``: render records one per line as the file grows.
* ``diff A B`` — byte-level comparison of two traces modulo the header
  line; exit 1 on any difference.
* ``record --policy P --out PATH [--perfetto PATH]`` — run the pinned
  hot-spot workload (see :mod:`repro.perf`) with tracing on.
* ``selftest [--quick]`` — the observation contract: tracing must not
  change replay digests, same-seed traces must be byte-identical, the
  Perfetto export must be loadable, and (full mode) the pinned pr-drb
  run must show zone transitions, notifications and prediction hits.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Optional, Sequence, TextIO

from repro.obs.export import (
    export_prometheus,
    registry_from_records,
    to_perfetto,
    write_perfetto,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import (
    JsonlSink,
    MemorySink,
    TraceRecord,
    Tracer,
    category,
    read_trace,
)


# ----------------------------------------------------------------------
# summarize
# ----------------------------------------------------------------------
def summarize(records: Sequence[TraceRecord], header: Optional[dict] = None) -> dict:
    """Aggregate a record stream into the summary dict the CLI prints."""
    by_name: dict[str, int] = {}
    by_category: dict[str, int] = {}
    zone_transitions: dict[str, int] = {}
    drops: dict[str, int] = {}
    latencies: list[float] = []
    for record in records:
        by_name[record.name] = by_name.get(record.name, 0) + 1
        cat = category(record.name)
        by_category[cat] = by_category.get(cat, 0) + 1
        args = record.args or {}
        if record.name == "zone.transition":
            edge = f"{args.get('from', '?')}->{args.get('to', '?')}"
            zone_transitions[edge] = zone_transitions.get(edge, 0) + 1
        elif record.name == "packet.drop":
            reason = args.get("reason", "?")
            drops[reason] = drops.get(reason, 0) + 1
        elif record.name == "packet.deliver":
            latency = args.get("latency_s")
            if latency is not None:
                latencies.append(latency)

    hits = by_name.get("prediction.hit", 0)
    misses = by_name.get("prediction.miss", 0)
    consulted = hits + misses
    summary: dict = {
        "label": (header or {}).get("label", ""),
        "records": len(records),
        "events_by_name": dict(sorted(by_name.items())),
        "events_by_category": dict(sorted(by_category.items())),
        "zone_transitions": dict(sorted(zone_transitions.items())),
        "notifications": {
            "sent": by_name.get("notify.send", 0),
            "received": by_name.get("notify.recv", 0),
        },
        "prediction": {
            "hits": hits,
            "misses": misses,
            "saves": by_name.get("prediction.save", 0),
            "invalidations": by_name.get("prediction.invalidate", 0),
            "hit_rate": hits / consulted if consulted else 0.0,
        },
        "drops_by_reason": dict(sorted(drops.items())),
    }
    if latencies:
        summary["delivery"] = {
            "packets": len(latencies),
            "mean_latency_s": sum(latencies) / len(latencies),
            "max_latency_s": max(latencies),
        }
    return summary


def _print_summary(summary: dict) -> None:
    print(f"label:   {summary['label'] or '(none)'}")
    print(f"records: {summary['records']}")
    print("events:")
    for name, count in summary["events_by_name"].items():
        print(f"  {name:<24} {count:>8}")
    if summary["zone_transitions"]:
        print("zone transitions:")
        for edge, count in summary["zone_transitions"].items():
            print(f"  {edge:<24} {count:>8}")
    notifications = summary["notifications"]
    print(
        f"notifications: {notifications['sent']} sent, "
        f"{notifications['received']} received"
    )
    prediction = summary["prediction"]
    print(
        f"solution DB: {prediction['hits']} hits, {prediction['misses']} "
        f"misses, {prediction['saves']} saves "
        f"(hit rate {prediction['hit_rate']:.1%})"
    )
    if summary["drops_by_reason"]:
        print("drops:")
        for reason, count in summary["drops_by_reason"].items():
            print(f"  {reason:<24} {count:>8}")
    if "delivery" in summary:
        delivery = summary["delivery"]
        print(
            f"delivered: {delivery['packets']} packets, mean latency "
            f"{delivery['mean_latency_s']:.3e}s, max "
            f"{delivery['max_latency_s']:.3e}s"
        )


# ----------------------------------------------------------------------
# tail
# ----------------------------------------------------------------------
def render_record(record: TraceRecord) -> str:
    """One human-readable line per record (the ``tail`` rendering)."""
    track = f"{record.track[0]}:{record.track[1]}" if len(record.track) > 1 else str(record.track)
    parts = [f"[{record.ts * 1e6:12.3f}us]", f"{record.name:<22}", f"{track:<18}"]
    if record.ph == "X":
        parts.append(f"dur={record.dur:.3e}s")
    if record.args:
        parts.append(" ".join(f"{k}={record.args[k]}" for k in sorted(record.args)))
    return " ".join(parts).rstrip()


def _record_matches(
    record: TraceRecord,
    names: Optional[Sequence[str]],
    tracks: Optional[Sequence[str]],
) -> bool:
    if names and record.name not in names:
        return False
    if tracks:
        kind = str(record.track[0])
        full = f"{record.track[0]}:{record.track[1]}" if len(record.track) > 1 else kind
        if kind not in tracks and full not in tracks:
            return False
    return True


def tail_trace(
    path,
    names: Optional[Sequence[str]] = None,
    tracks: Optional[Sequence[str]] = None,
    follow: bool = False,
    interval_s: float = 0.2,
    max_records: Optional[int] = None,
    idle_timeout_s: Optional[float] = None,
    out: Optional[TextIO] = None,
) -> int:
    """Follow a (possibly still growing) JSONL trace; returns lines printed.

    The live counterpart of ``summarize``: each record renders as one
    line, filtered by event ``names`` and/or ``tracks`` (a track filter
    matches either the kind — ``router`` — or the full ``kind:ident``).
    Without ``follow`` the function returns at end-of-file; with it, the
    file is polled every ``interval_s`` until ``max_records`` have been
    printed or ``idle_timeout_s`` passes with no new complete line.
    This is tooling around a trace *file* — the wall-clock reads below
    pace the polling loop and never touch a simulation.
    """
    stream = out or sys.stdout
    printed = 0
    pending = ""
    with open(path, "r", encoding="utf-8") as fh:
        idle_since = time.monotonic()  # repro: allow(no-wall-clock)
        while True:
            chunk = fh.readline()
            if chunk:
                pending += chunk
                if not pending.endswith("\n"):
                    # A writer is mid-line; wait for the rest.
                    continue
                line, pending = pending.strip(), ""
                idle_since = time.monotonic()  # repro: allow(no-wall-clock)
                if not line:
                    continue
                obj = json.loads(line)
                if obj.get("type") == "header":
                    continue
                record = TraceRecord.from_json_obj(obj)
                if not _record_matches(record, names, tracks):
                    continue
                print(render_record(record), file=stream)
                printed += 1
                if max_records is not None and printed >= max_records:
                    return printed
                continue
            if not follow:
                return printed
            if (
                idle_timeout_s is not None
                and time.monotonic() - idle_since > idle_timeout_s  # repro: allow(no-wall-clock)
            ):
                return printed
            time.sleep(interval_s)


# ----------------------------------------------------------------------
# diff
# ----------------------------------------------------------------------
def diff_traces(path_a, path_b) -> list[str]:
    """Differences between two JSONL traces, header line exempted.

    Returns human-readable difference descriptions (empty = identical).
    Compares the raw record lines byte-for-byte — the determinism
    contract is *byte* identity, not structural similarity.
    """

    def record_lines(path) -> list[str]:
        lines = []
        with open(path, "r", encoding="utf-8") as fh:
            for i, line in enumerate(fh):
                line = line.rstrip("\n")
                if not line:
                    continue
                if i == 0 and '"type":"header"' in line.replace(" ", ""):
                    continue
                lines.append(line)
        return lines

    a, b = record_lines(path_a), record_lines(path_b)
    problems: list[str] = []
    if len(a) != len(b):
        problems.append(f"record count differs: {len(a)} vs {len(b)}")
    for i, (line_a, line_b) in enumerate(zip(a, b)):
        if line_a != line_b:
            problems.append(f"first differing record at line {i + 2}:")
            problems.append(f"  a: {line_a}")
            problems.append(f"  b: {line_b}")
            break
    return problems


# ----------------------------------------------------------------------
# record
# ----------------------------------------------------------------------
def record_pinned(
    policy: str,
    out: Path,
    max_events: int = 200_000,
    perfetto: Optional[Path] = None,
    label: str = "",
) -> dict:
    """Trace the pinned hot-spot workload to ``out`` (JSONL).

    Returns the trace summary.  ``perfetto`` additionally writes the
    Chrome/Perfetto export of the same run.
    """
    from repro.perf import run_pinned_workload

    memory = MemorySink()
    tracer = Tracer(sinks=[JsonlSink(out, label=label), memory])
    metrics = MetricsRegistry()
    run_pinned_workload(policy, max_events, tracer=tracer, metrics=metrics)
    tracer.close()
    if perfetto is not None:
        write_perfetto(perfetto, memory.records, label=label)
    return summarize(memory.records)


# ----------------------------------------------------------------------
# selftest
# ----------------------------------------------------------------------
def selftest(quick: bool = False, verbose: bool = True) -> int:
    """Assert the observation contract; returns a process exit code."""
    import tempfile

    from repro.analysis.replay import run_scenario

    failures: list[str] = []

    def check(name: str, ok: bool, detail: str = "") -> None:
        if verbose:
            print(f"[{'ok ' if ok else 'FAIL'}] {name}" + (f" ({detail})" if detail else ""))
        if not ok:
            failures.append(name)

    # 1. Tracing must not alter behavior: identical digests with and
    #    without full instrumentation (tracer + metrics cadence).
    bare = run_scenario(seed=0, policy="pr-drb", repetitions=2)
    tracer = Tracer(sinks=[MemorySink()])
    metrics = MetricsRegistry()
    traced = run_scenario(
        seed=0, policy="pr-drb", repetitions=2,
        tracer=tracer, metrics=metrics, metrics_cadence_s=5e-5,
    )
    check(
        "tracing preserves event digest",
        bare.events == traced.events,
        f"{bare.events[:12]} vs {traced.events[:12]}",
    )
    check("tracing preserves metrics digest", bare.metrics == traced.metrics)
    check("tracer captured events", tracer.emitted > 0, f"{tracer.emitted} records")
    check("cadence produced snapshots", len(metrics.snapshots) > 0)

    with tempfile.TemporaryDirectory() as tmp:
        tmp_path = Path(tmp)

        # 2. Same seed => byte-identical JSONL (modulo the header label).
        paths = [tmp_path / "a.jsonl", tmp_path / "b.jsonl"]
        for i, path in enumerate(paths):
            sink = JsonlSink(path, label=f"run-{i}")  # labels differ on purpose
            t = Tracer(sinks=[sink])
            run_scenario(seed=0, policy="pr-drb", repetitions=2, tracer=t)
            t.close()
        problems = diff_traces(*paths)
        check("same-seed traces byte-identical", not problems, "; ".join(problems[:1]))

        # 3. Perfetto export loads back as valid trace-event JSON.
        memory = MemorySink()
        t = Tracer(sinks=[memory])
        run_scenario(seed=0, policy="pr-drb", repetitions=2, tracer=t)
        perfetto_path = tmp_path / "trace.json"
        write_perfetto(perfetto_path, memory.records, label="selftest")
        with open(perfetto_path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        events = doc.get("traceEvents", [])
        check(
            "perfetto export valid",
            bool(events)
            and all("ph" in e and "pid" in e and "tid" in e for e in events),
            f"{len(events)} trace events",
        )

    # 4. Full mode: the pinned mesh:8 pr-drb hot-spot run must surface
    #    the paper's decision events, including solution-DB reuse.
    if not quick:
        memory = MemorySink()
        t = Tracer(sinks=[memory])
        from repro.perf import run_pinned_workload

        run_pinned_workload("pr-drb", 200_000, tracer=t)
        summary = summarize(memory.records)
        names = summary["events_by_name"]
        check("pinned run has zone transitions", names.get("zone.transition", 0) > 0)
        check("pinned run has notifications", names.get("notify.send", 0) > 0)
        check("pinned run has prediction hits", names.get("prediction.hit", 0) > 0)
        check(
            "pinned run solution-DB hit rate > 0",
            summary["prediction"]["hit_rate"] > 0,
            f"{summary['prediction']['hit_rate']:.1%}",
        )

    if failures:
        print(f"selftest: {len(failures)} check(s) failed", file=sys.stderr)
        return 1
    if verbose:
        print("selftest: all checks passed")
    return 0


# ----------------------------------------------------------------------
# entry point
# ----------------------------------------------------------------------
def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="trace summarize/export/diff/record/selftest",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sum = sub.add_parser("summarize", help="aggregate a JSONL trace")
    p_sum.add_argument("trace", type=Path)
    p_sum.add_argument("--json", action="store_true", help="print JSON")

    p_exp = sub.add_parser("export", help="convert a JSONL trace")
    p_exp.add_argument("trace", type=Path)
    p_exp.add_argument(
        "--format", choices=("perfetto", "jsonl", "prometheus"), default="perfetto"
    )
    p_exp.add_argument("--out", type=Path, required=True)

    p_tail = sub.add_parser(
        "tail", help="render trace records live, one line each"
    )
    p_tail.add_argument("trace", type=Path)
    p_tail.add_argument(
        "--name", action="append", dest="names", default=None,
        help="only these event names (repeatable, e.g. --name packet.drop)",
    )
    p_tail.add_argument(
        "--track", action="append", dest="tracks", default=None,
        help="only these tracks: a kind ('router') or 'kind:ident' (repeatable)",
    )
    p_tail.add_argument(
        "--follow", "-f", action="store_true",
        help="keep polling as the file grows (tail -f semantics)",
    )
    p_tail.add_argument("--interval", type=float, default=0.2,
                        help="poll interval in seconds with --follow")
    p_tail.add_argument("--max-records", type=int, default=None,
                        help="stop after printing this many records")
    p_tail.add_argument("--idle-timeout", type=float, default=None,
                        help="with --follow: stop after this many idle seconds")

    p_diff = sub.add_parser("diff", help="compare two traces modulo header")
    p_diff.add_argument("trace_a", type=Path)
    p_diff.add_argument("trace_b", type=Path)

    p_rec = sub.add_parser("record", help="trace the pinned perf workload")
    p_rec.add_argument("--policy", default="pr-drb")
    p_rec.add_argument("--events", type=int, default=200_000)
    p_rec.add_argument("--out", type=Path, default=Path("trace.jsonl"))
    p_rec.add_argument("--perfetto", type=Path, default=None)
    p_rec.add_argument("--label", default="")

    p_self = sub.add_parser("selftest", help="assert the observation contract")
    p_self.add_argument("--quick", action="store_true")

    args = parser.parse_args(argv)

    if args.command == "summarize":
        header, records = read_trace(args.trace)
        summary = summarize(records, header)
        if args.json:
            print(json.dumps(summary, indent=2, sort_keys=True))
        else:
            _print_summary(summary)
        return 0

    if args.command == "export":
        header, records = read_trace(args.trace)
        if args.format == "perfetto":
            write_perfetto(args.out, records, label=header.get("label", ""))
        elif args.format == "prometheus":
            text = export_prometheus(registry_from_records(records))
            with open(args.out, "w", encoding="utf-8") as fh:
                fh.write(text)
        else:
            sink = JsonlSink(args.out, label=header.get("label", ""))
            for record in records:
                sink.write(record)
            sink.close()
        print(f"wrote {args.out}")
        return 0

    if args.command == "tail":
        tail_trace(
            args.trace,
            names=args.names,
            tracks=args.tracks,
            follow=args.follow,
            interval_s=args.interval,
            max_records=args.max_records,
            idle_timeout_s=args.idle_timeout,
        )
        return 0

    if args.command == "diff":
        problems = diff_traces(args.trace_a, args.trace_b)
        if problems:
            for problem in problems:
                print(problem)
            return 1
        print("traces identical (header exempt)")
        return 0

    if args.command == "record":
        summary = record_pinned(
            args.policy, args.out,
            max_events=args.events, perfetto=args.perfetto, label=args.label,
        )
        _print_summary(summary)
        print(f"wrote {args.out}")
        if args.perfetto:
            print(f"wrote {args.perfetto}")
        return 0

    return selftest(quick=args.quick)


def perfetto_from_records(records: Sequence[TraceRecord], label: str = "") -> dict:
    """Convenience re-export used by scripts; see :func:`to_perfetto`."""
    return to_perfetto(records, label=label)
