"""Versioned, checksummed on-disk checkpoint envelope.

Layout (one file)::

    RPRCKPT1                         8-byte magic
    <header-length: 8 ASCII digits>  length of the JSON header in bytes
    <header: canonical JSON>         format/code versions, digests,
                                     payload length + SHA-256, metadata
    <payload: pickle bytes>          the simulation object graph

The header is readable without touching the payload, so ``verify`` and
``info`` never unpickle anything.  Writes go through
:func:`repro.util.io.atomic_write_bytes`: a mid-write SIGKILL leaves the
previous checkpoint intact, never a torn file.  Loads re-hash the
payload against the header checksum before unpickling, so a corrupt or
truncated file is detected and reported instead of resurrecting garbage
state.
"""

from __future__ import annotations

import json
import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from repro.checkpoint.state import SnapshotError
from repro.util.io import atomic_write_bytes, sha256_hex

__all__ = [
    "CheckpointCorrupt",
    "CheckpointHeader",
    "FORMAT_VERSION",
    "MAGIC",
    "find_latest",
    "read_header",
    "read_payload",
    "write_checkpoint",
]

MAGIC = b"RPRCKPT1"
#: bump when the envelope layout (not the simulation schema) changes.
FORMAT_VERSION = 1
_LEN_DIGITS = 8
#: pickle protocol for payloads; 5 is available on every supported Python.
_PICKLE_PROTOCOL = 5


class CheckpointCorrupt(SnapshotError):
    """The file is not a readable, checksum-clean checkpoint."""


@dataclass(frozen=True)
class CheckpointHeader:
    """Everything ``verify``/``info`` need without unpickling."""

    format_version: int
    code_version: str
    kind: str
    sim_now: float
    events_executed: int
    payload_len: int
    payload_sha256: str
    meta: dict

    def to_dict(self) -> dict:
        return {
            "format_version": self.format_version,
            "code_version": self.code_version,
            "kind": self.kind,
            "sim_now": self.sim_now,
            "events_executed": self.events_executed,
            "payload_len": self.payload_len,
            "payload_sha256": self.payload_sha256,
            "meta": self.meta,
        }


def write_checkpoint(
    path: Union[str, Path],
    roots: object,
    *,
    kind: str,
    code_version: str,
    sim_now: float,
    events_executed: int,
    meta: Optional[dict] = None,
) -> CheckpointHeader:
    """Serialize ``roots`` (one object graph) into an envelope at ``path``."""
    try:
        payload = pickle.dumps(roots, protocol=_PICKLE_PROTOCOL)
    except SnapshotError:
        raise
    except Exception as exc:
        raise SnapshotError(
            f"checkpoint payload is not picklable: {type(exc).__name__}: {exc}"
            " (an instrumented run — tracer/metrics installed — cannot be"
            " checkpointed; record traces or checkpoint, not both)"
        ) from exc
    header = CheckpointHeader(
        format_version=FORMAT_VERSION,
        code_version=code_version,
        kind=kind,
        sim_now=sim_now,
        events_executed=events_executed,
        payload_len=len(payload),
        payload_sha256=sha256_hex(payload),
        meta=dict(meta or {}),
    )
    header_bytes = json.dumps(
        header.to_dict(), sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    blob = (
        MAGIC
        + f"{len(header_bytes):0{_LEN_DIGITS}d}".encode("ascii")
        + header_bytes
        + payload
    )
    atomic_write_bytes(path, blob)
    return header


def _split(blob: bytes, path: Path) -> tuple[CheckpointHeader, bytes]:
    if len(blob) < len(MAGIC) + _LEN_DIGITS or not blob.startswith(MAGIC):
        raise CheckpointCorrupt(f"{path}: not a repro checkpoint (bad magic)")
    offset = len(MAGIC)
    try:
        header_len = int(blob[offset : offset + _LEN_DIGITS])
    except ValueError as exc:
        raise CheckpointCorrupt(f"{path}: unreadable header length") from exc
    offset += _LEN_DIGITS
    raw_header = blob[offset : offset + header_len]
    if len(raw_header) != header_len:
        raise CheckpointCorrupt(f"{path}: truncated header")
    try:
        data = json.loads(raw_header.decode("utf-8"))
        header = CheckpointHeader(
            format_version=int(data["format_version"]),
            code_version=str(data["code_version"]),
            kind=str(data["kind"]),
            sim_now=float(data["sim_now"]),
            events_executed=int(data["events_executed"]),
            payload_len=int(data["payload_len"]),
            payload_sha256=str(data["payload_sha256"]),
            meta=dict(data.get("meta", {})),
        )
    except (ValueError, KeyError, TypeError) as exc:
        raise CheckpointCorrupt(f"{path}: malformed header: {exc}") from exc
    if header.format_version != FORMAT_VERSION:
        raise CheckpointCorrupt(
            f"{path}: format version {header.format_version} "
            f"(this code reads {FORMAT_VERSION})"
        )
    payload = blob[offset + header_len :]
    if len(payload) != header.payload_len:
        raise CheckpointCorrupt(
            f"{path}: payload truncated "
            f"({len(payload)} of {header.payload_len} bytes)"
        )
    if sha256_hex(payload) != header.payload_sha256:
        raise CheckpointCorrupt(f"{path}: payload checksum mismatch")
    return header, payload


def read_header(path: Union[str, Path]) -> CheckpointHeader:
    """Parse and checksum-verify ``path``; never unpickles the payload."""
    file = Path(path)
    try:
        blob = file.read_bytes()
    except OSError as exc:
        raise CheckpointCorrupt(f"{file}: unreadable: {exc}") from exc
    header, _payload = _split(blob, file)
    return header


def read_payload(
    path: Union[str, Path], *, expect_code_version: Optional[str] = None
) -> tuple[CheckpointHeader, object]:
    """Verify then unpickle; refuses cross-code-version restores."""
    file = Path(path)
    try:
        blob = file.read_bytes()
    except OSError as exc:
        raise CheckpointCorrupt(f"{file}: unreadable: {exc}") from exc
    header, payload = _split(blob, file)
    if expect_code_version is not None and header.code_version != expect_code_version:
        raise SnapshotError(
            f"{file}: checkpoint was written by code version "
            f"{header.code_version}, this tree is {expect_code_version}; "
            "deterministic resume across code versions is not provable"
        )
    try:
        roots = pickle.loads(payload)
    except Exception as exc:
        raise CheckpointCorrupt(
            f"{file}: payload unpickling failed: {type(exc).__name__}: {exc}"
        ) from exc
    return header, roots


def find_latest(
    paths: list[Union[str, Path]],
) -> tuple[Optional[Path], list[str]]:
    """Newest (by ``events_executed``) valid checkpoint among ``paths``.

    Returns ``(path_or_None, problems)`` — corrupt candidates are skipped
    in favor of older intact ones, each with a human-readable report line.
    """
    problems: list[str] = []
    best: Optional[Path] = None
    best_events = -1
    for candidate in paths:
        file = Path(candidate)
        if not file.exists():
            continue
        try:
            header = read_header(file)
        except CheckpointCorrupt as exc:
            problems.append(str(exc))
            continue
        if header.events_executed > best_events:
            best, best_events = file, header.events_executed
    return best, problems
