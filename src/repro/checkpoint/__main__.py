"""Checkpoint CLI: ``python -m repro.checkpoint <command>``.

Commands:

``save``     build a pinned scenario, run it partway, write a checkpoint;
``restore``  load a checkpoint, run it to completion, print the digests;
``info``     print a checkpoint's header (never unpickles the payload);
``verify``   prove interrupt-anywhere: for each policy, compare an
             uninterrupted run's digests against snapshot → restore in a
             **fresh process** → run-to-end.  Exit 0 only on bit-identity.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

from repro.checkpoint.format import CheckpointCorrupt, read_header
from repro.checkpoint.runner import (
    build_context,
    load_scenario_checkpoint,
    save_scenario_checkpoint,
)
from repro.checkpoint.state import SnapshotError

#: the acceptance campaign's policy set (the DRB family plus the
#: notification-driven adaptive family, which carries zone-pair state
#: across the snapshot boundary).
_VERIFY_POLICIES = (
    "deterministic", "drb", "fr-drb", "pr-drb", "notified-adaptive", "ugal",
)


def _add_scenario_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--kind", choices=("replay", "fault"), default="replay",
        help="scenario family to build (default: replay)",
    )
    parser.add_argument("--policy", default="pr-drb")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--mesh-side", type=int, default=4)
    parser.add_argument("--repetitions", type=int, default=3)
    parser.add_argument(
        "--fraction", type=float, default=0.5,
        help="fraction of the scenario horizon to run before snapshotting",
    )


def _params(args: argparse.Namespace) -> dict:
    return {
        "seed": args.seed,
        "policy": args.policy,
        "mesh_side": args.mesh_side,
        "repetitions": args.repetitions,
    }


def _cmd_save(args: argparse.Namespace) -> int:
    context = build_context(args.kind, _params(args))
    if not 0.0 <= args.fraction < 1.0:
        print("error: --fraction must be in [0, 1)", file=sys.stderr)
        return 2
    if args.fraction > 0:
        context.sim.run(until=context.until * args.fraction)
    header = save_scenario_checkpoint(
        context, args.out, meta={"policy": args.policy, "seed": args.seed}
    )
    print(json.dumps({"path": str(args.out), **header.to_dict()}, indent=2))
    return 0


def _cmd_restore(args: argparse.Namespace) -> int:
    expect = None if args.any_code_version else "current"
    try:
        _header, context = load_scenario_checkpoint(
            args.checkpoint, expect_code_version=expect
        )
    except (CheckpointCorrupt, SnapshotError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    context.sim.run(until=context.until)
    from repro.checkpoint.runner import finish_context

    result = finish_context(context)
    print(json.dumps(result, indent=None if args.json else 2))
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    try:
        header = read_header(args.checkpoint)
    except CheckpointCorrupt as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(json.dumps({"path": str(args.checkpoint), **header.to_dict()}, indent=2))
    return 0


def _reference_result(kind: str, params: dict) -> dict:
    context = build_context(kind, params)
    context.sim.run(until=context.until)
    from repro.checkpoint.runner import finish_context

    return finish_context(context)


def _digest_keys(kind: str) -> tuple[str, str]:
    if kind == "replay":
        return "events", "metrics"
    return "events_digest", "metrics_digest"


def _verify_one(
    kind: str, policy: str, args: argparse.Namespace, tmpdir: Path
) -> tuple[bool, str]:
    params = {
        "seed": args.seed,
        "policy": policy,
        "mesh_side": args.mesh_side,
        "repetitions": args.repetitions,
    }
    reference = _reference_result(kind, params)
    context = build_context(kind, params)
    context.sim.run(until=context.until * args.fraction)
    path = tmpdir / f"{kind}-{policy}.ckpt"
    save_scenario_checkpoint(context, path, meta={"policy": policy})
    # Fresh interpreter: the restore must not lean on any state left in
    # this process (module caches, the pid counter, warm RNGs).
    proc = subprocess.run(
        [sys.executable, "-m", "repro.checkpoint", "restore", str(path), "--json"],
        capture_output=True,
        text=True,
        env=dict(os.environ),
    )
    if proc.returncode != 0:
        return False, f"{kind}/{policy}: restore failed: {proc.stderr.strip()}"
    resumed = json.loads(proc.stdout)
    ev_key, mt_key = _digest_keys(kind)
    checks = (
        ("event digest", reference[ev_key], resumed[ev_key]),
        ("metric digest", reference[mt_key], resumed[mt_key]),
        (
            "events executed",
            reference["events_executed"],
            resumed["events_executed"],
        ),
    )
    for label, want, got in checks:
        if want != got:
            return False, (
                f"{kind}/{policy}: {label} diverged after resume "
                f"(uninterrupted {want!r} != resumed {got!r})"
            )
    return True, f"{kind}/{policy}: resume bit-identical ({reference[ev_key][:16]}…)"


def _cmd_verify(args: argparse.Namespace) -> int:
    policies = args.policies or list(_VERIFY_POLICIES)
    kinds = [args.kind] if args.kind else ["replay", "fault"]
    failures = 0
    with tempfile.TemporaryDirectory(prefix="repro-ckpt-verify-") as tmp:
        for kind in kinds:
            for policy in policies:
                ok, message = _verify_one(kind, policy, args, Path(tmp))
                print(("ok   " if ok else "FAIL ") + message)
                if not ok:
                    failures += 1
    if failures:
        print(f"{failures} verification(s) failed", file=sys.stderr)
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.checkpoint", description=__doc__
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_save = sub.add_parser("save", help="build, run partway, snapshot")
    _add_scenario_args(p_save)
    p_save.add_argument("out", type=Path, help="checkpoint file to write")
    p_save.set_defaults(fn=_cmd_save)

    p_restore = sub.add_parser("restore", help="resume a checkpoint to the end")
    p_restore.add_argument("checkpoint", type=Path)
    p_restore.add_argument("--json", action="store_true", help="compact output")
    p_restore.add_argument(
        "--any-code-version", action="store_true",
        help="skip the code-version guard (resume is then unproven)",
    )
    p_restore.set_defaults(fn=_cmd_restore)

    p_info = sub.add_parser("info", help="print a checkpoint header")
    p_info.add_argument("checkpoint", type=Path)
    p_info.set_defaults(fn=_cmd_info)

    p_verify = sub.add_parser(
        "verify", help="prove interrupt-anywhere resume equivalence"
    )
    p_verify.add_argument(
        "--kind", choices=("replay", "fault"), default=None,
        help="restrict to one scenario family (default: both)",
    )
    p_verify.add_argument(
        "--policies", nargs="*", default=None,
        help=f"policies to verify (default: {' '.join(_VERIFY_POLICIES)})",
    )
    p_verify.add_argument("--seed", type=int, default=0)
    p_verify.add_argument("--mesh-side", type=int, default=4)
    p_verify.add_argument("--repetitions", type=int, default=3)
    p_verify.add_argument("--fraction", type=float, default=0.5)
    p_verify.set_defaults(fn=_cmd_verify)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
