"""The ``Snapshottable`` protocol: explicit, versioned per-class state.

Every stateful simulation class inherits :class:`Snapshottable` and
declares, as class attributes:

``_snapshot_fields_``
    Tuple of the instance attributes **this class itself introduces**
    that belong in a checkpoint.  Effective coverage is the union over
    the MRO, so subclasses only list what they add.
``_snapshot_exclude_``
    Attributes deliberately *not* checkpointed (observability hooks like
    ``tracer``); they are reset to ``None`` on restore.
``_snapshot_version_``
    Per-class schema version, bumped whenever the field set changes
    incompatibly.  Restore refuses a mismatched version loudly instead
    of resurrecting half a state (docs/checkpoint.md).

:meth:`Snapshottable.snapshot_state` materializes the declared fields
into a plain dict; :meth:`Snapshottable.restore_state` applies one.  The
class also overrides ``__reduce_ex__`` so **all** pickling of these
objects flows through the protocol — ``pickle.dumps`` of a live object
graph (the checkpoint payload) serializes exactly the declared fields,
never an accidental ``__dict__`` superset, on every supported Python
version (only *frozen* slots dataclasses grow shadowing
``__getstate__``/``__setstate__`` pairs, and none of the simulation
classes are frozen — so the ``__setstate__`` here applies uniformly).

Cycle safety: the reconstructor args carry only the class, and the full
state dict rides in the *state* slot of the reduce tuple — pickle memoizes
the new object before pickling its state, so the ubiquitous cycles in a
live simulation (fabric ↔ sim ↔ events ↔ packets ↔ policy) resolve
through the memo instead of recursing forever.

The static side of the contract lives in
:mod:`repro.analysis.contracts.snapshots`: the ``snapshot-coverage``
pass cross-checks each Snapshottable class's ``__slots__`` ∪ dataclass
fields ∪ ``self.x`` assignments against its declarations, so adding a
field without serializing it fails ``python -m repro.analysis check``.
"""

from __future__ import annotations

from typing import Any, ClassVar

__all__ = [
    "SnapshotError",
    "Snapshottable",
    "snapshot_field_names",
    "snapshot_excluded_names",
]

#: key carrying the per-class schema version inside a state dict.
VERSION_KEY = "__snapshot_version__"


class SnapshotError(RuntimeError):
    """A snapshot could not be taken or applied consistently."""


def snapshot_field_names(cls: type) -> tuple[str, ...]:
    """Effective checkpointed fields of ``cls``: MRO union, stable order
    (base-most first, each name once)."""
    seen: dict[str, None] = {}
    for klass in reversed(cls.__mro__):
        for name in klass.__dict__.get("_snapshot_fields_", ()):
            seen.setdefault(name, None)
    return tuple(seen)


def snapshot_excluded_names(cls: type) -> tuple[str, ...]:
    """Effective excluded (reset-on-restore) fields of ``cls``."""
    seen: dict[str, None] = {}
    for klass in reversed(cls.__mro__):
        for name in klass.__dict__.get("_snapshot_exclude_", ()):
            seen.setdefault(name, None)
    return tuple(seen)


def _new_instance(cls: type) -> Any:
    """Allocate ``cls`` without running ``__init__`` (restore fills it)."""
    return object.__new__(cls)


class Snapshottable:
    """Base class wiring explicit snapshot coverage into pickling."""

    __slots__ = ()

    #: attributes introduced by this class that a checkpoint must carry.
    _snapshot_fields_: ClassVar[tuple[str, ...]] = ()
    #: attributes deliberately dropped from checkpoints (None on restore).
    _snapshot_exclude_: ClassVar[tuple[str, ...]] = ()
    #: per-class schema version (restore refuses mismatches).
    _snapshot_version_: ClassVar[int] = 1

    def snapshot_state(self) -> dict:
        """Materialize the declared fields into a plain dict."""
        cls = type(self)
        fields = snapshot_field_names(cls)
        state: dict = {VERSION_KEY: cls._snapshot_version_}
        for name in fields:
            try:
                state[name] = getattr(self, name)
            except AttributeError as exc:
                raise SnapshotError(
                    f"{cls.__qualname__}.{name} is declared in "
                    f"_snapshot_fields_ but unset on this instance"
                ) from exc
        # Dict-backed instances get a runtime coverage check mirroring the
        # static snapshot-coverage pass: an attribute outside the declared
        # field/exclude sets means someone grew the class without growing
        # its checkpoint, and silently dropping it would break resume.
        instance_dict = getattr(self, "__dict__", None)
        if instance_dict is not None:
            stray = set(instance_dict) - set(fields) - set(
                snapshot_excluded_names(cls)
            )
            if stray:
                raise SnapshotError(
                    f"{cls.__qualname__} has attribute(s) not covered by "
                    f"_snapshot_fields_/_snapshot_exclude_: {sorted(stray)}"
                )
        return state

    def restore_state(self, state: dict) -> None:
        """Apply a state dict produced by :meth:`snapshot_state`."""
        cls = type(self)
        version = state.get(VERSION_KEY)
        if version != cls._snapshot_version_:
            raise SnapshotError(
                f"{cls.__qualname__} snapshot version mismatch: "
                f"checkpoint has {version!r}, code expects "
                f"{cls._snapshot_version_}"
            )
        for name in snapshot_field_names(cls):
            if name not in state:
                raise SnapshotError(
                    f"{cls.__qualname__} checkpoint is missing field "
                    f"{name!r} (truncated or from incompatible code)"
                )
            setattr(self, name, state[name])
        for name in snapshot_excluded_names(cls):
            setattr(self, name, None)

    def __setstate__(self, state: dict) -> None:
        # pickle BUILD / copy._reconstruct both route state through here,
        # so restore-time invariants hold for deepcopy as well.
        self.restore_state(state)

    def __reduce_ex__(self, protocol: int):
        # Classic (reconstructor, args, state) triple.  The state dict is
        # pickled *after* the fresh object is memoized, so cycles through
        # state resolve via the memo; args must stay cycle-free (they are:
        # just the class).
        return _new_instance, (type(self),), self.snapshot_state()
