"""Scenario-level checkpoint orchestration.

Glue between the envelope (:mod:`repro.checkpoint.format`) and the two
scenario families that know how to enumerate their stateful roots:

* ``replay`` — the seeded hot-spot replay harness
  (:class:`repro.analysis.replay.ScenarioContext`);
* ``fault`` — the fault-injection campaign
  (:class:`repro.faults.campaign.FaultScenarioContext`).

A checkpoint is **one** pickle image of the context's named roots plus
the process-global packet-id counter, so every shared identity in the
live graph (retx timers ≡ heap entries, freelist recycling, memo caches)
survives the round trip and resume is bit-identical.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from repro.checkpoint.format import (
    CheckpointHeader,
    read_payload,
    write_checkpoint,
)
from repro.checkpoint.state import SnapshotError
from repro.network.packet import pid_counter_value, set_pid_counter

__all__ = [
    "build_context",
    "code_version",
    "finish_context",
    "load_scenario_checkpoint",
    "save_scenario_checkpoint",
    "scenario_kinds",
]

#: checkpoint kinds this runner can build and resume.
_KINDS = ("replay", "fault")


def code_version() -> str:
    """Version stamp refusing cross-version restores (repro release)."""
    import repro

    return repro.__version__


def scenario_kinds() -> tuple[str, ...]:
    return _KINDS


def build_context(kind: str, params: dict):
    """Construct a not-yet-run scenario context for ``kind``."""
    if kind == "replay":
        from repro.analysis.replay import build_scenario

        return build_scenario(
            seed=int(params.get("seed", 0)),
            policy=str(params.get("policy", "pr-drb")),
            mesh_side=int(params.get("mesh_side", 4)),
            repetitions=int(params.get("repetitions", 3)),
        )
    if kind == "fault":
        from repro.faults.campaign import FaultCampaignSpec, build_fault_scenario
        from repro.network.config import ReliabilityConfig

        spec_data = params.get("spec")
        if spec_data is not None:
            spec_data = dict(spec_data)
            reliability = spec_data.get("reliability")
            if isinstance(reliability, dict):
                spec_data["reliability"] = ReliabilityConfig(**reliability)
            spec = FaultCampaignSpec(**spec_data)
        else:
            spec = FaultCampaignSpec(seed=int(params.get("seed", 0)))
        return build_fault_scenario(str(params.get("policy", "pr-drb")), spec)
    raise SnapshotError(f"unknown scenario kind {kind!r} (expected {_KINDS})")


def finish_context(context) -> dict:
    """Run-complete bookkeeping; returns the JSON-ready digest result."""
    from repro.analysis.replay import ScenarioContext, finish_scenario
    from repro.faults.campaign import FaultScenarioContext, finish_fault_scenario

    if isinstance(context, ScenarioContext):
        return finish_scenario(context).to_dict()
    if isinstance(context, FaultScenarioContext):
        return finish_fault_scenario(context).to_dict()
    raise SnapshotError(f"unknown context type {type(context).__qualname__}")


def save_scenario_checkpoint(
    context,
    path: Union[str, Path],
    *,
    meta: Optional[dict] = None,
) -> CheckpointHeader:
    """Snapshot a (possibly mid-run) context into an envelope at ``path``."""
    roots = context.checkpoint_roots()
    # itertools.count cannot be introspected destructively mid-run, so the
    # global packet-id counter rides beside the graph (read via repr).
    roots["pid_counter"] = pid_counter_value()
    return write_checkpoint(
        path,
        roots,
        kind=roots["kind"],
        code_version=code_version(),
        sim_now=context.sim.now,
        events_executed=context.sim.events_executed,
        meta=meta,
    )


def load_scenario_checkpoint(
    path: Union[str, Path],
    *,
    expect_code_version: Optional[str] = "current",
):
    """Verify, unpickle and rebuild the context; returns (header, context).

    ``expect_code_version`` defaults to the running tree's version (the
    sentinel ``"current"``); pass ``None`` to skip the cross-version guard.
    """
    if expect_code_version == "current":
        expect_code_version = code_version()
    header, roots = read_payload(path, expect_code_version=expect_code_version)
    if not isinstance(roots, dict) or "kind" not in roots:
        raise SnapshotError(f"{path}: payload is not a scenario checkpoint")
    set_pid_counter(roots.pop("pid_counter"))
    kind = roots["kind"]
    if kind == "replay":
        from repro.analysis.replay import ScenarioContext

        return header, ScenarioContext.from_checkpoint_roots(roots)
    if kind == "fault":
        from repro.faults.campaign import FaultScenarioContext

        return header, FaultScenarioContext.from_checkpoint_roots(roots)
    raise SnapshotError(f"{path}: unknown checkpoint kind {kind!r}")
