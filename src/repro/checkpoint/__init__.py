"""Crash-safe checkpoint/restore with digest-proven deterministic resume.

Three layers:

* :mod:`repro.checkpoint.state` — the :class:`Snapshottable` protocol:
  every stateful simulation class declares exactly which attributes a
  checkpoint carries (statically cross-checked by the
  ``snapshot-coverage`` pass of ``python -m repro.analysis check``);
* :mod:`repro.checkpoint.format` — the versioned, checksummed on-disk
  envelope (atomic writes; corrupt files detected, never resurrected);
* :mod:`repro.checkpoint.runner` — scenario-level save/restore for the
  replay harness and the fault campaign.

CLI: ``python -m repro.checkpoint save|restore|verify|info`` — see
docs/checkpoint.md.  The correctness bar is *interrupt-anywhere*:
run-to-T → snapshot → restore in a fresh process → run-to-end yields
event and metric digests bit-identical to the uninterrupted run.
"""

from repro.checkpoint.format import (
    CheckpointCorrupt,
    CheckpointHeader,
    FORMAT_VERSION,
    MAGIC,
    find_latest,
    read_header,
    read_payload,
    write_checkpoint,
)
from repro.checkpoint.state import (
    SnapshotError,
    Snapshottable,
    snapshot_excluded_names,
    snapshot_field_names,
)

#: runner symbols resolved lazily — the runner reaches into the network
#: and scenario layers, whose modules themselves import
#: ``repro.checkpoint.state`` at class-definition time; importing it
#: eagerly here would close that loop into a circular import.
_RUNNER_EXPORTS = (
    "build_context",
    "code_version",
    "finish_context",
    "load_scenario_checkpoint",
    "save_scenario_checkpoint",
    "scenario_kinds",
)


def __getattr__(name: str):
    if name in _RUNNER_EXPORTS:
        from repro.checkpoint import runner

        return getattr(runner, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "CheckpointCorrupt",
    "CheckpointHeader",
    "FORMAT_VERSION",
    "MAGIC",
    "SnapshotError",
    "Snapshottable",
    "build_context",
    "code_version",
    "find_latest",
    "finish_context",
    "load_scenario_checkpoint",
    "read_header",
    "read_payload",
    "save_scenario_checkpoint",
    "scenario_kinds",
    "snapshot_excluded_names",
    "snapshot_field_names",
    "write_checkpoint",
]
