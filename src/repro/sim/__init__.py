"""Discrete-event simulation engine (OPNET Modeler substitute).

The paper evaluated PR-DRB inside OPNET's discrete-event engine; this
subpackage provides the equivalent substrate: a calendar queue of timed
events (:class:`~repro.sim.engine.Simulator`), deterministic tie-breaking,
and seeded random-stream helpers (:mod:`repro.sim.rng`).
"""

from repro.sim.engine import Event, Simulator, SimulationError
from repro.sim.rng import RandomStreams

__all__ = ["Event", "Simulator", "SimulationError", "RandomStreams"]
