"""Core discrete-event simulation engine.

A :class:`Simulator` owns a priority queue of :class:`Event` records ordered
by ``(time, priority, sequence)``.  Model components schedule callbacks with
:meth:`Simulator.schedule` (relative delay) or :meth:`Simulator.schedule_at`
(absolute time).  The sequence number guarantees deterministic FIFO ordering
among simultaneous events, which keeps whole simulations reproducible for a
given seed — a requirement for the paper's repeated-burst experiments, where
run-to-run comparability matters.

Hot-path design (see docs/performance.md for the measured ledger):

* an :class:`Event` *is* its own heap entry — a ``list`` subclass laid out
  as ``[time, priority, sequence, fn, args, cancelled]`` — so the calendar
  holds one object per event instead of a ``(key, Event)`` pair, heap
  comparisons stay element-wise C ``list`` comparisons (``sequence`` is
  unique, so ``fn``/``args`` are never compared), and the dispatch loop
  indexes fields instead of chasing attributes;
* executed and cancelled-skipped events are recycled through a freelist, so
  steady-state simulation allocates no event objects at all;
* :meth:`Simulator.run` hoists every loop-invariant lookup and re-reads only
  the state a callback can legitimately change (``_stopped``, the observer
  dispatch).

Observation: any number of observers may watch event dispatch through
:meth:`Simulator.add_observer` (the seeded-replay digests, the runtime
invariant checker, and the :mod:`repro.obs` metrics cadence all ride this).
Observers are called with each event just before its callback runs and must
never mutate simulation state; with none installed the cost is a single
``is not None`` branch per event.  The legacy single-callable
:attr:`Simulator.event_hook` survives as a property over the observer list.

Every optimization here is digest-gated: ``python -m repro.perf`` replays a
seeded scenario suite and fails on any drift in the event-trace or metrics
digests (see :mod:`repro.analysis.replay`).
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Callable, ClassVar, Optional

from repro.checkpoint.state import Snapshottable

#: Signature of :attr:`Simulator.event_hook` observers.
EventHook = Callable[["Event"], None]

#: Field offsets inside an :class:`Event` heap entry.
_TIME, _PRIORITY, _SEQUENCE, _FN, _ARGS, _CANCELLED = range(6)


def _never(*_args: Any) -> None:  # pragma: no cover - must never fire
    raise AssertionError("recycled event fired with a cleared callback")


class SimulationError(RuntimeError):
    """Raised for invalid scheduling requests (negative delays, past times)."""


class Event(list):
    """A scheduled callback: ``[time, priority, sequence, fn, args, cancelled]``.

    Ordering is by ``time``, then ``priority`` (lower first), then insertion
    ``sequence`` so that ties resolve FIFO.  The event is pushed onto the
    calendar heap *directly*; ``list`` comparison resolves the ordering in C
    without ever reaching the non-comparable ``fn``/``args`` fields because
    ``sequence`` is unique per simulator.

    Lifetime contract: the handle returned by :meth:`Simulator.schedule` is
    valid for :meth:`cancel` until the event has fired (cancelling from
    inside the event's own callback is also safe — recycling happens only
    after the callback returns).  Once the callback has run, the engine may
    *reuse* the object for a future, unrelated event; holders must therefore
    drop (or overwrite) their reference when the callback fires and must not
    cancel an event they know has already executed.
    """

    __slots__ = ()

    @property
    def time(self) -> float:
        return self[_TIME]

    @time.setter
    def time(self, value: float) -> None:
        self[_TIME] = value

    @property
    def priority(self) -> int:
        return self[_PRIORITY]

    @priority.setter
    def priority(self, value: int) -> None:
        self[_PRIORITY] = value

    @property
    def sequence(self) -> int:
        return self[_SEQUENCE]

    @sequence.setter
    def sequence(self, value: int) -> None:
        self[_SEQUENCE] = value

    @property
    def fn(self) -> Callable[..., None]:
        return self[_FN]

    @fn.setter
    def fn(self, value: Callable[..., None]) -> None:
        self[_FN] = value

    @property
    def args(self) -> tuple:
        return self[_ARGS]

    @args.setter
    def args(self, value: tuple) -> None:
        self[_ARGS] = value

    @property
    def cancelled(self) -> bool:
        return self[_CANCELLED]

    @cancelled.setter
    def cancelled(self, value: bool) -> None:
        self[_CANCELLED] = value

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped."""
        self[_CANCELLED] = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self[_CANCELLED] else "live"
        return (
            f"<Event t={self[_TIME]!r} prio={self[_PRIORITY]} "
            f"seq={self[_SEQUENCE]} {state}>"
        )


class Simulator(Snapshottable):
    """Event calendar and clock.

    Parameters
    ----------
    start_time:
        Initial value of the simulation clock, in seconds.
    """

    #: checkpoint coverage (docs/checkpoint.md): the calendar, freelist
    #: and sequence counter travel whole so restored heap order, event
    #: identity (cancel handles!) and FIFO tie-breaks are bit-identical.
    #: The observer tuple/dispatch ride along — digest observers are
    #: themselves Snapshottable.  The checkpoint cadence hook is run-local
    #: wiring and is re-armed by whoever resumes the run.
    _snapshot_fields_: ClassVar[tuple[str, ...]] = (
        "now", "_queue", "_free", "_sequence", "_events_executed",
        "_running", "_stopped", "_observers", "_dispatch",
    )
    _snapshot_exclude_: ClassVar[tuple[str, ...]] = ("_ck_every", "_ck_hook")

    def __init__(self, start_time: float = 0.0) -> None:
        self.now: float = start_time
        #: heap of :class:`Event` entries (each event is its own heap key).
        self._queue: list[Event] = []
        #: recycled events awaiting reuse; bounds allocation to the peak
        #: number of simultaneously pending events.
        self._free: list[Event] = []
        self._sequence: int = 0
        self._events_executed: int = 0
        self._running: bool = False
        self._stopped: bool = False
        # Observers called with each event just before its callback runs
        # (the clock has already advanced to the event's time).  The tuple
        # is replaced wholesale on add/remove, so a dispatch in progress
        # keeps iterating its snapshot; ``_dispatch`` is the hot-path view:
        # None (no observers), the single observer itself, or
        # :meth:`_dispatch_all`.
        self._observers: tuple[EventHook, ...] = ()
        self._dispatch: Optional[EventHook] = None
        # Checkpoint cadence (docs/checkpoint.md): every ``_ck_every``
        # executed events, :meth:`run` calls ``_ck_hook()`` at an event
        # boundary.  Deliberately *not* a scheduled event — a calendar
        # entry would consume sequence numbers and perturb the event
        # digests; the boundary hook is invisible to them.
        self._ck_every: Optional[int] = None
        self._ck_hook: Optional[Callable[[], None]] = None

    def snapshot_state(self) -> dict:
        state = super().snapshot_state()
        # A snapshot taken from inside the cadence hook sees the dispatch
        # loop live; the restored process starts outside any run() call.
        state["_running"] = False
        return state

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def add_observer(self, fn: EventHook) -> EventHook:
        """Register ``fn`` to be called with each event before it executes.

        Observers run in registration order and must only *observe* —
        mutating simulation state from an observer voids the determinism
        digests.  Returns ``fn`` so call sites can keep the handle for
        :meth:`remove_observer`.
        """
        self._observers = self._observers + (fn,)
        self._rebuild_dispatch()
        return fn

    def remove_observer(self, fn: EventHook) -> bool:
        """Remove a registered observer; returns False when not installed.

        Safe to call from inside an observer: the dispatch in progress
        finishes over its snapshot, and the removal takes effect from the
        next event on.
        """
        observers = list(self._observers)
        try:
            observers.remove(fn)
        except ValueError:
            return False
        self._observers = tuple(observers)
        self._rebuild_dispatch()
        return True

    @property
    def observers(self) -> tuple[EventHook, ...]:
        """The installed observers, in dispatch order."""
        return self._observers

    def _rebuild_dispatch(self) -> None:
        observers = self._observers
        if not observers:
            self._dispatch = None
        elif len(observers) == 1:
            self._dispatch = observers[0]
        else:
            self._dispatch = self._dispatch_all

    def _dispatch_all(self, event: "Event") -> None:
        # Reads the tuple once; observers added/removed by an observer
        # affect the next event, not this dispatch.
        for fn in self._observers:
            fn(event)

    @property
    def event_hook(self) -> Optional[EventHook]:
        """Single-callable view of the observer list (legacy API).

        Returns None with no observers, the observer itself with exactly
        one, and a snapshot composite (calling every current observer in
        order) with several — so pre-observer code that saves the prior
        hook and chains to it keeps working unchanged.
        """
        observers = self._observers
        if not observers:
            return None
        if len(observers) == 1:
            return observers[0]

        def chained(event: "Event", _observers=observers) -> None:
            for fn in _observers:
                fn(event)

        return chained

    @event_hook.setter
    def event_hook(self, fn: Optional[EventHook]) -> None:
        """Replace *all* observers with ``fn`` (legacy single-hook setter)."""
        self._observers = () if fn is None else (fn,)
        self._rebuild_dispatch()

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        fn: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        time = self.now + delay
        seq = self._sequence
        self._sequence = seq + 1
        free = self._free
        if free:
            event = free.pop()
            event[_TIME] = time
            event[_PRIORITY] = priority
            event[_SEQUENCE] = seq
            event[_FN] = fn
            event[_ARGS] = args
            event[_CANCELLED] = False
        else:
            event = Event((time, priority, seq, fn, args, False))
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(
        self,
        time: float,
        fn: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``fn(*args)`` at absolute simulation ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time!r}, clock already at {self.now!r}"
            )
        seq = self._sequence
        self._sequence = seq + 1
        free = self._free
        if free:
            event = free.pop()
            event[_TIME] = time
            event[_PRIORITY] = priority
            event[_SEQUENCE] = seq
            event[_FN] = fn
            event[_ARGS] = args
            event[_CANCELLED] = False
        else:
            event = Event((time, priority, seq, fn, args, False))
        heapq.heappush(self._queue, event)
        return event

    def _recycle(self, event: Event) -> None:
        """Return a popped event to the freelist with its payload cleared.

        Clearing ``fn``/``args`` guarantees a recycled event can never fire
        with a stale callback and releases references promptly; a late
        :meth:`Event.cancel` on a freelisted event is harmless because
        scheduling resets the flag.
        """
        event[_FN] = _never
        event[_ARGS] = ()
        self._free.append(event)

    # ------------------------------------------------------------------
    # Checkpoint cadence
    # ------------------------------------------------------------------
    def set_checkpoint_cadence(
        self,
        every_events: Optional[int],
        hook: Optional[Callable[[], None]] = None,
    ) -> None:
        """Install ``hook`` to run every ``every_events`` executed events.

        The hook fires between event callbacks (never mid-event), with
        :attr:`events_executed` already flushed, so it sees a globally
        consistent state to snapshot.  It may call :meth:`stop` to end the
        run after writing a final checkpoint (the SIGTERM path).  Pass
        ``None`` to disarm.  :meth:`run` reads the cadence on entry;
        changing it from inside a callback takes effect on the next run.
        """
        if every_events is None or hook is None:
            self._ck_every = None
            self._ck_hook = None
            return
        if every_events < 1:
            raise SimulationError(
                f"checkpoint cadence must be >= 1 event, got {every_events!r}"
            )
        self._ck_every = int(every_events)
        self._ck_hook = hook

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Drain the event queue.

        Stops when the queue empties, when the next event would pass
        ``until`` (the clock is then advanced to ``until``), after
        ``max_events`` callbacks, or when :meth:`stop` is called from inside
        a callback.  Cancelled placeholders are skipped without counting
        toward ``max_events``.  Returns the number of events executed by
        this call.
        """
        executed = 0
        self._running = True
        self._stopped = False
        queue = self._queue
        free = self._free
        pop = heapq.heappop
        # Hoist the per-iteration Optional checks: an infinite bound makes
        # ``event_time > bound`` unreachable when no limit was given, and
        # the ``self.now = until`` assignment under it then never runs.
        bound = math.inf if until is None else until
        limit = math.inf if max_events is None else max_events
        # Checkpoint cadence: with none armed, ``ck_next`` is infinite and
        # the per-event cost is a single float compare.  ``flushed`` tracks
        # how much of ``executed`` has already been folded into
        # ``_events_executed`` so the hook observes an exact total.
        ck_hook = self._ck_hook
        ck_every = self._ck_every
        ck_next: float = math.inf if (ck_hook is None or ck_every is None) else ck_every
        flushed = 0
        try:
            while queue:
                if self._stopped or executed >= limit:
                    break
                event = queue[0]
                if event[_TIME] > bound:
                    self.now = until  # type: ignore[assignment]
                    break
                pop(queue)
                if event[_CANCELLED]:
                    event[_FN] = _never
                    event[_ARGS] = ()
                    free.append(event)
                    continue
                self.now = event[_TIME]
                # Plain-attribute read (not the event_hook property): this
                # is the per-event fast path and must stay one branch when
                # nothing is observing.
                hook = self._dispatch
                if hook is not None:
                    hook(event)
                fn = event[_FN]
                args = event[_ARGS]
                fn(*args)
                executed += 1
                # Recycle only after the callback ran: a cancel() from
                # inside the callback must stay a harmless no-op.
                event[_FN] = _never
                event[_ARGS] = ()
                free.append(event)
                if executed >= ck_next:
                    ck_next = executed + ck_every  # type: ignore[operator]
                    self._events_executed += executed - flushed
                    flushed = executed
                    ck_hook()  # type: ignore[misc]
            else:
                if until is not None and self.now < until:
                    self.now = until
        finally:
            self._running = False
            # Flushed once instead of per event (minus what the cadence
            # hook already folded in); every reader of ``events_executed``
            # observes the total after run() returns.
            self._events_executed += executed - flushed
        return executed

    def run_until(self, bound: float, max_events: Optional[int] = None) -> int:
        """Execute every event with ``time < bound`` (strict lower bound).

        The windowed counterpart of :meth:`run` for conservative parallel
        synchronization (docs/sharding.md): a shard that has exchanged
        lookahead guarantees may safely execute all events *strictly
        before* the agreed bound, but must not touch the bound itself —
        an arrival at exactly ``bound`` may still be delivered by a peer.
        Unlike :meth:`run`, the clock is **not** advanced to ``bound``
        when the queue drains or the head passes it: ``now`` stays at the
        last executed event so a later cross-shard arrival at
        ``bound <= t`` can still be scheduled without tripping the
        past-time guard.  Returns the number of events executed.
        """
        executed = 0
        self._running = True
        self._stopped = False
        queue = self._queue
        free = self._free
        pop = heapq.heappop
        limit = math.inf if max_events is None else max_events
        try:
            while queue:
                if self._stopped or executed >= limit:
                    break
                event = queue[0]
                if event[_TIME] >= bound:
                    break
                pop(queue)
                if event[_CANCELLED]:
                    event[_FN] = _never
                    event[_ARGS] = ()
                    free.append(event)
                    continue
                self.now = event[_TIME]
                hook = self._dispatch
                if hook is not None:
                    hook(event)
                fn = event[_FN]
                args = event[_ARGS]
                fn(*args)
                executed += 1
                event[_FN] = _never
                event[_ARGS] = ()
                free.append(event)
        finally:
            self._running = False
            self._events_executed += executed
        return executed

    def step(self) -> bool:
        """Execute exactly one (non-cancelled) event; return False if empty.

        Like :meth:`run`, respects :meth:`stop`: once a callback has
        requested a stop, further ``step()`` calls execute nothing and
        return False until :meth:`resume` (or a fresh :meth:`run`) clears
        the flag.
        """
        if self._stopped:
            return False
        queue = self._queue
        while queue:
            event = heapq.heappop(queue)
            if event[_CANCELLED]:
                self._recycle(event)
                continue
            self.now = event[_TIME]
            hook = self._dispatch
            if hook is not None:
                hook(event)
            event[_FN](*event[_ARGS])
            self._events_executed += 1
            self._recycle(event)
            return True
        return False

    def stop(self) -> None:
        """Request that :meth:`run` return after the current callback.

        Also freezes :meth:`step` until :meth:`resume` or the next
        :meth:`run` call (which resets the flag on entry).
        """
        self._stopped = True

    def resume(self) -> None:
        """Clear a :meth:`stop` request so :meth:`step` executes again."""
        self._stopped = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of queued events, including cancelled placeholders."""
        return len(self._queue)

    @property
    def events_executed(self) -> int:
        """Total callbacks executed over the simulator's lifetime."""
        return self._events_executed

    def compact_head(self) -> int:
        """Discard cancelled events from the head of the queue.

        Cancelled events stay in the heap as placeholders until they
        surface; this pops any that have reached the head so that
        :attr:`pending` and :meth:`peek_time` reflect live work.  Returns
        the number of placeholders discarded.  This is the *only* place
        (besides execution itself) that removes entries from the calendar.
        """
        discarded = 0
        queue = self._queue
        while queue and queue[0][_CANCELLED]:
            self._recycle(heapq.heappop(queue))
            discarded += 1
        return discarded

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or None when the queue is empty.

        Calls :meth:`compact_head` first, so cancelled placeholders at the
        head are dropped — the observable clock/ordering semantics are
        unaffected, but ``pending`` may decrease.
        """
        self.compact_head()
        return self._queue[0][_TIME] if self._queue else None
