"""Core discrete-event simulation engine.

A :class:`Simulator` owns a priority queue of :class:`Event` records ordered
by ``(time, priority, sequence)``.  Model components schedule callbacks with
:meth:`Simulator.schedule` (relative delay) or :meth:`Simulator.schedule_at`
(absolute time).  The sequence number guarantees deterministic FIFO ordering
among simultaneous events, which keeps whole simulations reproducible for a
given seed — a requirement for the paper's repeated-burst experiments, where
run-to-run comparability matters.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

#: Signature of :attr:`Simulator.event_hook` observers.
EventHook = Callable[["Event"], None]


class SimulationError(RuntimeError):
    """Raised for invalid scheduling requests (negative delays, past times)."""


@dataclass
class Event:
    """A scheduled callback.

    Ordering is by ``time``, then ``priority`` (lower first), then insertion
    ``sequence`` so that ties resolve FIFO.  The engine keeps that key as a
    plain tuple next to the event in its heap — profiling showed generated
    dataclass comparisons dominating the calendar's cost.
    """

    time: float
    priority: int
    sequence: int
    fn: Callable[..., None] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped."""
        self.cancelled = True


class Simulator:
    """Event calendar and clock.

    Parameters
    ----------
    start_time:
        Initial value of the simulation clock, in seconds.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self.now: float = start_time
        #: heap of (time, priority, sequence, Event) tuples.
        self._queue: list[tuple[float, int, int, Event]] = []
        self._sequence: int = 0
        self._events_executed: int = 0
        self._running: bool = False
        self._stopped: bool = False
        #: optional observer called with each event just before its callback
        #: runs (the clock has already advanced to the event's time).  Used
        #: by :class:`repro.analysis.invariants.DebugInvariants` and the
        #: :mod:`repro.analysis.replay` trace digests; ``None`` costs one
        #: branch per event.
        self.event_hook: Optional[EventHook] = None

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        fn: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.schedule_at(self.now + delay, fn, *args, priority=priority)

    def schedule_at(
        self,
        time: float,
        fn: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``fn(*args)`` at absolute simulation ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time!r}, clock already at {self.now!r}"
            )
        event = Event(time, priority, self._sequence, fn, args)
        heapq.heappush(self._queue, (time, priority, self._sequence, event))
        self._sequence += 1
        return event

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Drain the event queue.

        Stops when the queue empties, when the next event would pass
        ``until`` (the clock is then advanced to ``until``), after
        ``max_events`` callbacks, or when :meth:`stop` is called from inside
        a callback.  Returns the number of events executed by this call.
        """
        executed = 0
        self._running = True
        self._stopped = False
        try:
            while self._queue:
                if self._stopped:
                    break
                if max_events is not None and executed >= max_events:
                    break
                head = self._queue[0]
                if until is not None and head[0] > until:
                    self.now = until
                    break
                heapq.heappop(self._queue)
                event = head[3]
                if event.cancelled:
                    continue
                self.now = event.time
                if self.event_hook is not None:
                    self.event_hook(event)
                event.fn(*event.args)
                executed += 1
                self._events_executed += 1
            else:
                if until is not None and self.now < until:
                    self.now = until
        finally:
            self._running = False
        return executed

    def step(self) -> bool:
        """Execute exactly one (non-cancelled) event; return False if empty.

        Like :meth:`run`, respects :meth:`stop`: once a callback has
        requested a stop, further ``step()`` calls execute nothing and
        return False until :meth:`resume` (or a fresh :meth:`run`) clears
        the flag.
        """
        if self._stopped:
            return False
        while self._queue:
            event = heapq.heappop(self._queue)[3]
            if event.cancelled:
                continue
            self.now = event.time
            if self.event_hook is not None:
                self.event_hook(event)
            event.fn(*event.args)
            self._events_executed += 1
            return True
        return False

    def stop(self) -> None:
        """Request that :meth:`run` return after the current callback.

        Also freezes :meth:`step` until :meth:`resume` or the next
        :meth:`run` call (which resets the flag on entry).
        """
        self._stopped = True

    def resume(self) -> None:
        """Clear a :meth:`stop` request so :meth:`step` executes again."""
        self._stopped = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of queued events, including cancelled placeholders."""
        return len(self._queue)

    @property
    def events_executed(self) -> int:
        """Total callbacks executed over the simulator's lifetime."""
        return self._events_executed

    def compact_head(self) -> int:
        """Discard cancelled events from the head of the queue.

        Cancelled events stay in the heap as placeholders until they
        surface; this pops any that have reached the head so that
        :attr:`pending` and :meth:`peek_time` reflect live work.  Returns
        the number of placeholders discarded.  This is the *only* place
        (besides execution itself) that removes entries from the calendar.
        """
        discarded = 0
        while self._queue and self._queue[0][3].cancelled:
            heapq.heappop(self._queue)
            discarded += 1
        return discarded

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or None when the queue is empty.

        Calls :meth:`compact_head` first, so cancelled placeholders at the
        head are dropped — the observable clock/ordering semantics are
        unaffected, but ``pending`` may decrease.
        """
        self.compact_head()
        return self._queue[0][0] if self._queue else None
