"""Seeded random-stream management.

The paper reruns every simulation with multiple seeds and averages (§4.3).
:class:`RandomStreams` hands out independent, reproducible
``numpy.random.Generator`` streams keyed by name so that, e.g., traffic
generation and adaptive-routing tie-breaks do not perturb each other when
one component is reconfigured.
"""

from __future__ import annotations

from typing import ClassVar

import numpy as np

from repro.checkpoint.state import Snapshottable


class RandomStreams(Snapshottable):
    """A family of named, independent random generators from one root seed."""

    #: ``numpy.random.Generator`` pickles its full bit-generator state
    #: losslessly, so checkpointing the stream dict resumes every named
    #: stream mid-sequence, bit-exactly (docs/checkpoint.md).
    _snapshot_fields_: ClassVar[tuple[str, ...]] = ("seed", "_streams")

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the generator for ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            # Independent child streams derived from (root seed, name).
            seq = np.random.SeedSequence(self.seed, spawn_key=(stable_hash(name),))
            gen = np.random.default_rng(seq)
            self._streams[name] = gen
        return gen

    def spawn(self, offset: int) -> "RandomStreams":
        """A new family for repetition ``offset`` of the same experiment."""
        return RandomStreams(self.seed + offset)


def seeded_generator(seed: int = 0) -> np.random.Generator:
    """The one sanctioned way to build a standalone seeded ``Generator``.

    Components that cannot be handed a :class:`RandomStreams` (or that must
    stay bit-compatible with the historical ``np.random.default_rng(seed)``
    defaults) call this instead of reaching for ``numpy.random`` directly.
    The ``no-ambient-rng`` lint (:mod:`repro.analysis`) forbids ambient
    ``np.random.default_rng`` / ``random`` usage everywhere outside this
    module, so every random draw in the simulator is traceable to an
    explicit seed.
    """
    return np.random.default_rng(seed)


def named_generator(seed: int, name: str) -> np.random.Generator:
    """A standalone generator derived exactly like ``RandomStreams.stream``.

    Used by the ``flow_seeded`` routing-policy mode (docs/sharding.md):
    per-flow draw streams derived from ``(policy seed, stream name)``
    must not depend on *which* ``RandomStreams`` instance exists in the
    process, so sharded and serial runs derive identical streams.
    """
    seq = np.random.SeedSequence(int(seed), spawn_key=(stable_hash(name),))
    return np.random.default_rng(seq)


def stable_hash(name: str) -> int:
    """Deterministic 32-bit FNV-1a hash of a string.

    Python's builtin ``hash()`` is salted per process (PYTHONHASHSEED), so
    it must never feed stream derivation, congestion signatures, or any
    other value that influences simulation behaviour — the
    ``no-salted-hash`` lint enforces this.  Use this helper instead.
    """
    value = 2166136261
    for byte in name.encode("utf-8"):
        value = ((value ^ byte) * 16777619) & 0xFFFFFFFF
    return value


#: Backwards-compatible alias (pre-analysis-subsystem name).
_stable_hash = stable_hash
