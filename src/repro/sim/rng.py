"""Seeded random-stream management.

The paper reruns every simulation with multiple seeds and averages (§4.3).
:class:`RandomStreams` hands out independent, reproducible
``numpy.random.Generator`` streams keyed by name so that, e.g., traffic
generation and adaptive-routing tie-breaks do not perturb each other when
one component is reconfigured.
"""

from __future__ import annotations

import numpy as np


class RandomStreams:
    """A family of named, independent random generators from one root seed."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the generator for ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            # Independent child streams derived from (root seed, name).
            seq = np.random.SeedSequence(self.seed, spawn_key=(_stable_hash(name),))
            gen = np.random.default_rng(seq)
            self._streams[name] = gen
        return gen

    def spawn(self, offset: int) -> "RandomStreams":
        """A new family for repetition ``offset`` of the same experiment."""
        return RandomStreams(self.seed + offset)


def _stable_hash(name: str) -> int:
    """Deterministic 32-bit hash of a stream name (Python's hash is salted)."""
    value = 2166136261
    for byte in name.encode("utf-8"):
        value = ((value ^ byte) * 16777619) & 0xFFFFFFFF
    return value
