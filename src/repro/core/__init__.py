"""PR-DRB core machinery (Chapter 3).

The pieces the routing policies compose: multistep paths (Eqs 3.1-3.3),
the metapath and its latency aggregate (Eq 3.4), latency thresholds and
zones (§3.2.4-3.2.5), probabilistic path selection (Eq 3.6),
contending-flow signatures (§3.2.7) and the saved-solution database with
approximate pattern matching (§3.2.8).
"""

from repro.core.msp import MultiStepPath
from repro.core.thresholds import Thresholds, Zone
from repro.core.metapath import Metapath
from repro.core.selection import select_msp, selection_probabilities
from repro.core.contending import FlowSignature, signature_similarity, make_signature
from repro.core.solutions import SolutionDatabase, SavedSolution

__all__ = [
    "MultiStepPath",
    "Thresholds",
    "Zone",
    "Metapath",
    "select_msp",
    "selection_probabilities",
    "FlowSignature",
    "signature_similarity",
    "make_signature",
    "SolutionDatabase",
    "SavedSolution",
]
