"""Contending-flow signatures (§3.2.7, Fig. 3.13).

A congestion situation is characterized by the set of source/destination
pairs racing for router resources.  PR-DRB recognizes a *recurring*
situation by approximate matching between the current signature and saved
ones — the paper uses an 80 % similarity criterion.
"""

from __future__ import annotations

from typing import Iterable

from repro.network.packet import ContendingFlow

#: a congestion situation: the set of contending source/destination pairs.
FlowSignature = frozenset


def make_signature(flows: Iterable[ContendingFlow]) -> FlowSignature:
    """Normalize an iterable of (src, dst) pairs into a signature."""
    return frozenset(ContendingFlow(*f) for f in flows)


def signature_similarity(a: FlowSignature, b: FlowSignature) -> float:
    """Jaccard similarity between two signatures, in [0, 1].

    Two empty signatures are identical (1.0); an empty vs non-empty pair
    shares nothing (0.0).
    """
    if not a and not b:
        return 1.0
    if not a or not b:
        return 0.0
    inter = len(a & b)
    union = len(a | b)
    return inter / union


def overlap_similarity(a: FlowSignature, b: FlowSignature) -> float:
    """Overlap coefficient: ``|A & B| / min(|A|, |B|)``.

    This is the matching PR-DRB's predictive lookup needs: early in a
    recurring burst the routers have only reported a *subset* of the
    pattern's flows, and a subset must still match the remembered full
    signature (a containment-style 80 % criterion) for the saved solution
    to be re-applied before congestion fully develops.
    """
    if not a and not b:
        return 1.0
    if not a or not b:
        return 0.0
    inter = len(a & b)
    return inter / min(len(a), len(b))
