"""Multistep paths (§3.2.3, Eqs 3.1-3.3).

A :class:`MultiStepPath` is one concrete alternative route of a metapath:
the concatenation of minimal segments through intermediate nodes (already
resolved to a full router path by the topology).  It tracks a smoothed
latency estimate fed by ACK notifications: Eq. 3.3 decomposes path latency
into transmission time (a function of length, known statically) plus the
accumulated queueing delay (measured by the routers' LU modules).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar

from repro.checkpoint.state import Snapshottable
from repro.topology.base import Path


@dataclass
class MultiStepPath(Snapshottable):
    """One alternative path with its live latency estimate."""

    _snapshot_fields_: ClassVar[tuple[str, ...]] = (
        "path",
        "per_hop_cost_s",
        "alpha",
        "queueing_s",
        "samples",
        "awaiting_ack",
        "_latency_s",
    )

    path: Path
    #: static per-hop cost: serialization + routing delay, seconds.
    per_hop_cost_s: float
    #: exponential-smoothing factor for ACK latency samples.
    alpha: float = 0.5
    #: smoothed queueing delay (the dynamic part of Eq. 3.3).
    queueing_s: float = 0.0
    #: number of ACK samples folded in.
    samples: int = 0
    #: True while the path is open but no ACK has confirmed its latency
    #: yet — the "evaluate the effect" gate of the paper's gradual opening.
    awaiting_ack: bool = False
    _latency_s: float = field(init=False, default=0.0)

    def __post_init__(self) -> None:
        if len(self.path) < 1:
            raise ValueError("a path needs at least one router")
        self._latency_s = self.transmission_s

    @property
    def length(self) -> int:
        """Hop count (Eq. 3.2: sum of the minimal segments' lengths)."""
        return len(self.path) - 1

    @property
    def transmission_s(self) -> float:
        """Static transmission component of Eq. 3.3.

        ``length + 1`` link crossings (router-to-router hops plus the final
        delivery link) keeps single-router paths from having zero cost.
        """
        return (self.length + 1) * self.per_hop_cost_s

    @property
    def latency_s(self) -> float:
        """Current Eq. 3.3 estimate: transmission + smoothed queueing."""
        return self._latency_s

    def record(self, queueing_s: float) -> None:
        """Fold an ACK-reported queueing delay into the estimate."""
        if queueing_s < 0:
            raise ValueError("negative queueing delay")
        if self.samples == 0:
            self.queueing_s = queueing_s
        else:
            self.queueing_s = (
                self.alpha * queueing_s + (1.0 - self.alpha) * self.queueing_s
            )
        self.samples += 1
        self.awaiting_ack = False
        self._latency_s = self.transmission_s + self.queueing_s

    def reset(self, seed_queueing_s: float = 0.0) -> None:
        """Forget measurements (used when a path is re-opened).

        ``seed_queueing_s`` pre-loads the estimate with the congestion
        level observed on the paths already open; without it a fresh path
        looks zero-loaded and the metapath aggregate (Eq. 3.4) collapses
        below Threshold_Low the instant a path opens, thrashing the zone
        FSM.
        """
        if seed_queueing_s > 0:
            self.queueing_s = seed_queueing_s
            self.samples = 1
        else:
            self.queueing_s = 0.0
            self.samples = 0
        self.awaiting_ack = True
        self._latency_s = self.transmission_s + self.queueing_s
