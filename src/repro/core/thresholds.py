"""Latency thresholds and zones (§3.2.4, §3.2.5, Fig. 3.9).

``Threshold_Low`` and ``Threshold_High`` partition metapath latency into
three zones: **L** (low congestion — close alternative paths), **M** (the
network's working zone — hold), and **H** (congestion — open paths /
consult the solution database).  Thresholds are expressed relative to the
flow's zero-load path latency so one pair of factors works across
topologies and path lengths.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Zone(enum.Enum):
    """The three latency zones of Eq. 3.5."""

    LOW = "L"
    MEDIUM = "M"
    HIGH = "H"


@dataclass(frozen=True)
class Thresholds:
    """Absolute latency thresholds for one flow's metapath."""

    low_s: float
    high_s: float

    def __post_init__(self) -> None:
        if self.low_s < 0 or self.high_s <= self.low_s:
            raise ValueError(
                f"need 0 <= low < high, got low={self.low_s} high={self.high_s}"
            )

    def zone(self, latency_s: float) -> Zone:
        """Classify a metapath latency (Eq. 3.4 output) into a zone."""
        if latency_s > self.high_s:
            return Zone.HIGH
        if latency_s < self.low_s:
            return Zone.LOW
        return Zone.MEDIUM

    @classmethod
    def from_base_latency(
        cls,
        base_latency_s: float,
        low_factor: float = 0.5,
        high_factor: float = 1.5,
    ) -> "Thresholds":
        """Scale thresholds off a flow's zero-load latency.

        With ``high_factor`` 1.5, a flow whose aggregate latency exceeds
        1.5x its uncongested value enters the saturation zone; once opened
        paths push the harmonic aggregate (Eq. 3.4) below half the
        uncongested single-path latency (``low_factor`` 0.5), capacity is
        clearly overprovisioned and paths close.
        """
        if base_latency_s <= 0:
            raise ValueError("base latency must be positive")
        return cls(low_s=base_latency_s * low_factor, high_s=base_latency_s * high_factor)
