"""Probabilistic multistep-path selection (§3.2.6, Eq. 3.6, Fig. 3.11).

A path's selection probability is proportional to its inverse latency
(its bandwidth as seen by the source): ``p(Cx) = (1/L_Cx) / sum(1/L_Ci)``.
Lower-latency paths therefore carry proportionally more messages, and
because latency includes the static transmission term, shorter paths are
naturally preferred (the paper's length criterion).
"""

from __future__ import annotations

import numpy as np

from repro.core.metapath import Metapath


def selection_probabilities(metapath: Metapath) -> np.ndarray:
    """Eq. 3.6 PDF over the metapath's *active* MSPs (sums to 1).

    Memoized on the metapath and invalidated by its version counter, so
    between latency updates repeated selections reuse the same array (the
    values are computed by the identical expression either way).
    """
    cached = metapath._pdf_cache
    if cached is not None:
        return cached
    lats = [msp.latency_s for msp in metapath.active_msps]
    # Positivity check in plain Python: cheaper than a numpy reduction on
    # a handful of elements, and it does not touch the pdf arithmetic.
    if min(lats) <= 0:
        raise ValueError("MSP latencies must be positive")
    latencies = np.array(lats)
    weights = 1.0 / latencies
    pdf = weights / weights.sum()
    pdf.setflags(write=False)
    metapath._pdf_cache = pdf
    return pdf


def select_msp(metapath: Metapath, rng: np.random.Generator) -> int:
    """Draw one open MSP; returns its index into ``metapath.msps``.

    Equivalent to ``rng.choice(len(active), p=pdf)`` — the same
    ``cdf.searchsorted(rng.random(), side="right")`` draw that
    ``Generator.choice`` performs internally, consuming exactly one
    uniform — but with the normalized CDF cached on the metapath so the
    per-message cost is one RNG draw plus one binary search.  Bit-exact
    equivalence with ``Generator.choice`` is asserted by
    ``tests/test_core_selection.py`` and by the replay digests.
    """
    active = metapath.active_indices
    if len(active) == 1:
        return active[0]
    cdf = metapath._cdf_cache
    if cdf is None:
        pdf = selection_probabilities(metapath)
        cdf = pdf.cumsum()
        cdf /= cdf[-1]
        cdf.setflags(write=False)
        metapath._cdf_cache = cdf
    idx = cdf.searchsorted(rng.random(), side="right")
    return active[int(idx)]
