"""Probabilistic multistep-path selection (§3.2.6, Eq. 3.6, Fig. 3.11).

A path's selection probability is proportional to its inverse latency
(its bandwidth as seen by the source): ``p(Cx) = (1/L_Cx) / sum(1/L_Ci)``.
Lower-latency paths therefore carry proportionally more messages, and
because latency includes the static transmission term, shorter paths are
naturally preferred (the paper's length criterion).
"""

from __future__ import annotations

import numpy as np

from repro.core.metapath import Metapath


def selection_probabilities(metapath: Metapath) -> np.ndarray:
    """Eq. 3.6 PDF over the metapath's *active* MSPs (sums to 1)."""
    latencies = np.array([msp.latency_s for msp in metapath.active_msps])
    if np.any(latencies <= 0):
        raise ValueError("MSP latencies must be positive")
    weights = 1.0 / latencies
    return weights / weights.sum()


def select_msp(metapath: Metapath, rng: np.random.Generator) -> int:
    """Draw one open MSP; returns its index into ``metapath.msps``."""
    active = metapath.active_indices
    if len(active) == 1:
        return active[0]
    pdf = selection_probabilities(metapath)
    choice = rng.choice(len(active), p=pdf)
    return active[int(choice)]
