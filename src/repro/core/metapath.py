"""Metapath: the set of alternative MSPs for a source-destination pair
(§3.2.3, Figs 3.7-3.8; Eq. 3.4).

A metapath owns the full ordered candidate list produced by the topology
(`Topology.alternative_paths`) but only the first ``active_count`` MSPs are
*open* and eligible for selection.  DRB grows/shrinks ``active_count`` one
path at a time; PR-DRB may jump straight to a saved configuration
(:meth:`Metapath.apply_solution`).
"""

from __future__ import annotations

from typing import ClassVar

from repro.checkpoint.state import Snapshottable
from repro.core.msp import MultiStepPath
from repro.topology.base import Path


class Metapath(Snapshottable):
    """Alternative-path set and Eq. 3.4 latency aggregate for one flow."""

    #: the memo caches ride along too — a restored metapath must serve the
    #: exact same cached PDF/CDF objects the uninterrupted run would have.
    _snapshot_fields_: ClassVar[tuple[str, ...]] = (
        "msps",
        "active_count",
        "_active",
        "version",
        "_active_tuple",
        "_active_list",
        "_latency_cache",
        "_pdf_cache",
        "_cdf_cache",
    )

    def __init__(
        self,
        candidates: list[Path],
        per_hop_cost_s: float,
        alpha: float = 0.5,
    ) -> None:
        if not candidates:
            raise ValueError("metapath needs at least the original path")
        self.msps = [
            MultiStepPath(path=p, per_hop_cost_s=per_hop_cost_s, alpha=alpha)
            for p in candidates
        ]
        self.active_count = 1
        #: indices into ``msps`` forming the current active set; kept as a
        #: prefix for DRB but arbitrary subsets are allowed for saved
        #: solutions.
        self._active: list[int] = [0]
        # Memoized views/aggregates, recomputed lazily after invalidation.
        # Every mutation flows through the methods below, so explicit
        # invalidation is complete: active-set changes (expand / shrink /
        # prune / apply_solution) clear everything; per-ACK latency updates
        # (record_ack) clear only the latency-derived caches.  The version
        # counter lets callers (Eq. 3.6 selection) key their own caches.
        self.version: int = 0
        self._active_tuple: tuple[int, ...] | None = None
        self._active_list: list[MultiStepPath] | None = None
        self._latency_cache: float | None = None
        self._pdf_cache = None  # set by repro.core.selection
        self._cdf_cache = None  # set by repro.core.selection

    # ------------------------------------------------------------------
    def _invalidate_active(self) -> None:
        """Active set changed: drop every cached view and aggregate."""
        self.version += 1
        self._active_tuple = None
        self._active_list = None
        self._latency_cache = None
        self._pdf_cache = None
        self._cdf_cache = None

    def _invalidate_latency(self) -> None:
        """An MSP latency estimate moved: drop the derived aggregates."""
        self.version += 1
        self._latency_cache = None
        self._pdf_cache = None
        self._cdf_cache = None

    # ------------------------------------------------------------------
    @property
    def max_paths(self) -> int:
        return len(self.msps)

    @property
    def active_indices(self) -> tuple[int, ...]:
        cached = self._active_tuple
        if cached is None:
            cached = self._active_tuple = tuple(self._active)
        return cached

    @property
    def active_msps(self) -> list[MultiStepPath]:
        cached = self._active_list
        if cached is None:
            msps = self.msps
            cached = self._active_list = [msps[i] for i in self._active]
        return cached

    @property
    def original(self) -> MultiStepPath:
        return self.msps[0]

    # ------------------------------------------------------------------
    def evaluated(self) -> bool:
        """True when every open path has ACK-confirmed latency.

        The paper's gradual opening evaluates each new path's effect
        before widening further; expansion is gated on this.
        """
        return not any(m.awaiting_ack for m in self.active_msps)

    def latency_s(self) -> float:
        """Eq. 3.4: inverse of the sum of inverse MSP latencies.

        The inverse of a path's latency is its capacity; the metapath's
        capacity is the sum of its open paths' capacities, so the
        aggregate drops as paths open.  Memoized until the next
        :meth:`record_ack` or active-set change.
        """
        cached = self._latency_cache
        if cached is not None:
            return cached
        inv = 0.0
        for msp in self.active_msps:
            lat = msp.latency_s
            if lat <= 0:
                raise ValueError("MSP latency must be positive")
            inv += 1.0 / lat
        result = 1.0 / inv
        self._latency_cache = result
        return result

    # ------------------------------------------------------------------
    # DRB incremental reconfiguration (§3.2.4)
    # ------------------------------------------------------------------
    def _congestion_seed(self) -> float:
        """Queueing level to pre-load into freshly opened paths."""
        sampled = [m.queueing_s for m in self.active_msps if m.samples > 0]
        return max(sampled) if sampled else 0.0

    def expand(self) -> bool:
        """Open one more alternative path; False when already maximal."""
        if len(self._active) >= self.max_paths:
            return False
        seed = self._congestion_seed()
        for idx in range(self.max_paths):
            if idx not in self._active:
                self.msps[idx].reset(seed_queueing_s=seed)
                self._active.append(idx)
                self._active.sort()
                self.active_count = len(self._active)
                self._invalidate_active()
                return True
        return False

    def shrink(self) -> bool:
        """Close the worst-latency alternative path; keep the original."""
        if len(self._active) <= 1:
            return False
        closable = [i for i in self._active if i != 0]
        worst = max(closable, key=lambda i: self.msps[i].latency_s)
        self._active.remove(worst)
        self.active_count = len(self._active)
        self._invalidate_active()
        return True

    def prune(self, dead_indices) -> int:
        """Deactivate the given MSPs (fault reaction: their paths cross a
        dead link).  Unlike :meth:`shrink` this may close the original
        path too; when *every* active path is dead the metapath falls back
        to the original minimal path — the fabric then accounts the drops
        until the link recovers.  Returns the number of paths closed."""
        doomed = {i for i in dead_indices if 0 <= i < self.max_paths}
        if not doomed:
            return 0
        survivors = [i for i in self._active if i not in doomed]
        closed = len(self._active) - len(survivors)
        if not survivors:
            survivors = [0]
        self._active = survivors
        self.active_count = len(survivors)
        self._invalidate_active()
        return closed

    # ------------------------------------------------------------------
    # PR-DRB solution reuse (§3.2.8)
    # ------------------------------------------------------------------
    def apply_solution(self, indices: tuple[int, ...]) -> None:
        """Open the saved path set (additive: solutions are applied while
        congestion is building, so already-open paths stay open — closing
        is the low-zone shrink's job, Fig. 3.9)."""
        valid = sorted(
            {0, *self._active, *(i for i in indices if 0 <= i < self.max_paths)}
        )
        seed = self._congestion_seed()
        for idx in valid:
            if idx not in self._active:
                self.msps[idx].reset(seed_queueing_s=seed)
        self._active = valid
        self.active_count = len(self._active)
        self._invalidate_active()

    def record_ack(self, msp_index: int, queueing_s: float) -> None:
        """Fold an ACK's measured queueing delay into its MSP (Eq. 3.3)."""
        if 0 <= msp_index < self.max_paths:
            self.msps[msp_index].record(queueing_s)
            self._invalidate_latency()

    def path_for(self, msp_index: int) -> Path:
        return self.msps[msp_index].path
