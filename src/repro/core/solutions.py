"""Saved-solution database (§3.2.8, Fig. 3.14).

Each source keeps, per destination, the best set of alternative paths it
found for every congestion *pattern* (contending-flow signature).  When a
similar pattern recurs (similarity >= ``match_threshold``, paper: 80 %),
the saved path set is re-applied at once, skipping DRB's gradual opening
transient.  Solutions are updated whenever a better (lower-latency)
configuration is found for the same pattern.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar

from repro.checkpoint.state import Snapshottable
from repro.core.contending import (
    FlowSignature,
    overlap_similarity,
    signature_similarity,
)

_SIMILARITIES = {
    "overlap": overlap_similarity,
    "jaccard": signature_similarity,
}


@dataclass
class SavedSolution(Snapshottable):
    """A remembered answer to one congestion pattern."""

    _snapshot_fields_: ClassVar[tuple[str, ...]] = (
        "signature",
        "path_indices",
        "achieved_latency_s",
        "reuse_count",
    )

    signature: FlowSignature
    #: metapath MSP indices that controlled the congestion.
    path_indices: tuple[int, ...]
    #: control metric: how long the congestion episode lasted under this
    #: configuration, seconds (lower = the solution tamed it faster).
    #: "Best solution is identified because the latency curve has reached
    #: its highest value and from now on it starts decreasing" (§3.1.1) —
    #: the merit of a solution is how quickly it turns the curve around.
    achieved_latency_s: float
    #: how many times this solution has been re-applied (Fig. 4.26 stats).
    reuse_count: int = 0


@dataclass
class SolutionDatabase(Snapshottable):
    """Per-flow store of congestion patterns and their best solutions.

    ``similarity`` selects the approximate-matching flavour: ``"overlap"``
    (default — containment-style, lets a partially-reported recurring
    pattern match its remembered full signature) or ``"jaccard"``.
    """

    _snapshot_fields_: ClassVar[tuple[str, ...]] = (
        "match_threshold",
        "similarity",
        "solutions",
        "lookups",
        "hits",
        "invalidated",
    )

    match_threshold: float = 0.8
    similarity: str = "overlap"
    solutions: list[SavedSolution] = field(default_factory=list)
    #: counters surfaced by the evaluation (patterns found / re-applied).
    lookups: int = 0
    hits: int = 0
    #: solutions forgotten because a saved path crossed a dead link.
    invalidated: int = 0

    def save(
        self,
        signature: FlowSignature,
        path_indices: tuple[int, ...],
        achieved_latency_s: float,
    ) -> SavedSolution:
        """Insert or improve the solution for ``signature``.

        A signature matching an existing entry (>= threshold) updates that
        entry when the new configuration achieved lower latency; otherwise
        a new pattern is learned.
        """
        if not signature:
            raise ValueError("cannot save a solution for an empty signature")
        best, best_sim = self._best_match(signature)
        if best is not None and best_sim >= self.match_threshold:
            # Keep the configuration that achieved the lowest latency for
            # this pattern ("the best solution saved may be further
            # updated, if the method finds a better combination", §3.2).
            better = achieved_latency_s < best.achieved_latency_s
            if better:
                best.path_indices = tuple(path_indices)
                best.achieved_latency_s = achieved_latency_s
                # Keep the most complete description of the pattern: a
                # partially-reported recurrence must not erode the stored
                # signature.
                if len(signature) > len(best.signature):
                    best.signature = signature
            return best
        solution = SavedSolution(
            signature=signature,
            path_indices=tuple(path_indices),
            achieved_latency_s=achieved_latency_s,
        )
        self.solutions.append(solution)
        return solution

    def lookup(self, signature: FlowSignature) -> SavedSolution | None:
        """Best-matching saved solution for ``signature``, or None."""
        self.lookups += 1
        if not signature:
            return None
        best, best_sim = self._best_match(signature)
        if best is not None and best_sim >= self.match_threshold:
            self.hits += 1
            best.reuse_count += 1
            return best
        return None

    def invalidate(self, path_is_alive) -> int:
        """Forget solutions whose saved path set crosses a dead link.

        ``path_is_alive(msp_index) -> bool`` judges each saved MSP index;
        a solution survives only if every path it would open is alive.
        Re-applying a dead configuration would steer a recurring pattern
        straight back into the fault, so the flow must relearn instead.
        Returns the number of solutions removed.
        """
        keep = []
        removed = 0
        for sol in self.solutions:
            if all(path_is_alive(i) for i in sol.path_indices):
                keep.append(sol)
            else:
                removed += 1
        if removed:
            self.solutions = keep
            self.invalidated += removed
        return removed

    def _best_match(self, signature: FlowSignature) -> tuple[SavedSolution | None, float]:
        measure = _SIMILARITIES[self.similarity]
        best: SavedSolution | None = None
        best_key = (-1.0, 0.0)
        for sol in self.solutions:
            sim = measure(signature, sol.signature)
            key = (sim, -sol.achieved_latency_s)
            if key > best_key:
                best_key = key
                best = sol
        return best, best_key[0]

    # ------------------------------------------------------------------
    # Serialization (enables the paper's "static variation", §5.2: pre-
    # loading routers with offline meta-information about the patterns).
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready encoding of every saved solution."""
        return {
            "match_threshold": self.match_threshold,
            "similarity": self.similarity,
            "solutions": [
                {
                    "signature": sorted([s, d] for s, d in sol.signature),
                    "path_indices": list(sol.path_indices),
                    "achieved_latency_s": sol.achieved_latency_s,
                    "reuse_count": sol.reuse_count,
                }
                for sol in self.solutions
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SolutionDatabase":
        """Rebuild a database from :meth:`to_dict` output."""
        from repro.network.packet import ContendingFlow

        db = cls(
            match_threshold=float(data.get("match_threshold", 0.8)),
            similarity=data.get("similarity", "overlap"),
        )
        for item in data.get("solutions", []):
            db.solutions.append(
                SavedSolution(
                    signature=frozenset(
                        ContendingFlow(int(s), int(d)) for s, d in item["signature"]
                    ),
                    path_indices=tuple(item["path_indices"]),
                    achieved_latency_s=float(item["achieved_latency_s"]),
                    reuse_count=int(item.get("reuse_count", 0)),
                )
            )
        return db

    # ------------------------------------------------------------------
    @property
    def patterns_learned(self) -> int:
        return len(self.solutions)

    @property
    def patterns_reapplied(self) -> int:
        return sum(1 for s in self.solutions if s.reuse_count > 0)

    @property
    def total_reuses(self) -> int:
        return sum(s.reuse_count for s in self.solutions)
