"""Latency-trend congestion prediction (§5.2 further work).

The thesis proposes, as an extension, using the latency *trend* to start
the predictive module before Threshold_High is actually crossed: "with
enough historic latency values and traffic information, PR-DRB could
predict future congestion before it actually arises".

:class:`TrendDetector` keeps a sliding window of (time, latency) samples,
fits a least-squares slope, and projects the latency ``lead_s`` seconds
ahead; :meth:`TrendDetector.projected` feeding the zone thresholds gives
the early trigger.
"""

from __future__ import annotations

from collections import deque
from typing import ClassVar

import numpy as np

from repro.checkpoint.state import Snapshottable


class TrendDetector(Snapshottable):
    """Sliding-window linear trend over latency samples."""

    #: the deque pickles with its maxlen, so the sliding window survives.
    _snapshot_fields_: ClassVar[tuple[str, ...]] = (
        "window",
        "min_samples",
        "_samples",
    )

    def __init__(self, window: int = 8, min_samples: int = 4) -> None:
        if window < 2 or min_samples < 2:
            raise ValueError("need window >= 2 and min_samples >= 2")
        self.window = window
        self.min_samples = min(min_samples, window)
        self._samples: deque[tuple[float, float]] = deque(maxlen=window)

    def add(self, t: float, latency_s: float) -> None:
        """Fold in one (time, latency) observation."""
        self._samples.append((t, latency_s))

    @property
    def ready(self) -> bool:
        return len(self._samples) >= self.min_samples

    def slope(self) -> float:
        """Least-squares latency slope, seconds of latency per second.

        0.0 until enough samples have arrived or when all samples share
        one timestamp.
        """
        if not self.ready:
            return 0.0
        t = np.array([s[0] for s in self._samples])
        y = np.array([s[1] for s in self._samples])
        t = t - t[0]
        denom = ((t - t.mean()) ** 2).sum()
        if denom <= 0:
            return 0.0
        return float(((t - t.mean()) * (y - y.mean())).sum() / denom)

    def projected(self, lead_s: float) -> float:
        """Latency expected ``lead_s`` seconds after the latest sample."""
        if not self._samples:
            return 0.0
        latest = self._samples[-1][1]
        if not self.ready:
            return latest
        return max(0.0, latest + self.slope() * lead_s)

    def reset(self) -> None:
        self._samples.clear()
