"""Parallel Ocean Program (POP) trace synthesizer (§2.2.6, §4.8.4).

POP couples two very different communication regimes (Fig. 2.13,
Table 2.1):

* the **baroclinic** part: 2-D periodic halo exchanges with the 4 face
  neighbours plus corner/remote partners (max TDC ~11), implemented with
  MPI_Isend / MPI_Irecv / MPI_Waitall (~35 % Isend + ~35 % Waitall of
  calls);
* the **barotropic** solver: a conjugate-gradient loop dominated by small
  MPI_Allreduce calls (~29 % of calls).

Phases are short and extremely repetitive (Table 2.2: 120 relevant phases
repeated 38158 times) — the ideal PR-DRB workload.
"""

from __future__ import annotations

import numpy as np

from repro.apps.grids import Grid2D
from repro.mpi.events import Allreduce, Barrier, Bcast, Compute, Irecv, Send, Waitall
from repro.mpi.trace import Trace
from repro.sim.rng import seeded_generator

_COMPUTE_S = 15e-6


def _halo(trace: Trace, rank: int, partners: list[int], size: int, tag0: int) -> None:
    """POP-style halo: post all Irecvs and Isends, then one Waitall."""
    for i, nb in enumerate(partners):
        tag = tag0 + (min(rank, nb) * 31 + max(rank, nb)) % 509
        trace.append(rank, Irecv(nb, tag=tag, request=i + 1))
    for nb in partners:
        tag = tag0 + (min(rank, nb) * 31 + max(rank, nb)) % 509
        # POP uses MPI_Isend; completion semantics match our buffered Send.
        trace.append(rank, Send(nb, size, tag=tag))
    trace.append(rank, Waitall())


def pop_trace(
    num_ranks: int = 64,
    steps: int = 4,
    solver_iterations: int = 6,
    halo_bytes: int = 1536,
    seed: int = 0,
    rng: np.random.Generator | None = None,
) -> Trace:
    """One ocean time-step = baroclinic halos + barotropic CG solver."""
    grid = Grid2D(num_ranks, periodic=True)
    if rng is None:
        rng = seeded_generator(seed)
    trace = Trace(
        f"pop.{num_ranks}",
        num_ranks,
        metadata={"paper_relevant_phases": 120, "paper_weight": 38158},
    )
    # Remote partners (land-mask load balancing / gather surfaces): a few
    # scattered pairs that push the max TDC beyond the 8-neighbour halo.
    remote: dict[int, set[int]] = {r: set() for r in range(num_ranks)}
    for r in range(0, num_ranks, max(1, num_ranks // 12)):
        f = int(rng.integers(num_ranks))
        if f != r:
            remote[r].add(f)
            remote[f].add(r)
    for r in trace.ranks():
        trace.append(r, Bcast(2048, root=0))
        trace.append(r, Compute(_COMPUTE_S))
    for step in range(steps):
        # Baroclinic: 8-point halo (faces + corners) plus remote partners.
        for r in trace.ranks():
            partners = grid.neighbors8(r) + sorted(remote[r])
            _halo(trace, r, partners, halo_bytes, tag0=3000)
            trace.append(r, Compute(_COMPUTE_S))
        # Barotropic CG: tiny halo + two dot-product allreduces per
        # solver iteration (residual norm and search direction).
        for _ in range(solver_iterations):
            for r in trace.ranks():
                _halo(trace, r, grid.neighbors4(r), halo_bytes // 4, tag0=4000)
                trace.append(r, Allreduce(16))
                trace.append(r, Allreduce(16))
                trace.append(r, Compute(_COMPUTE_S / 3))
        # Diagnostics every other step.
        if step % 2 == 1:
            for r in trace.ranks():
                trace.append(r, Barrier())
                trace.append(r, Allreduce(64))
                trace.append(r, Compute(_COMPUTE_S / 2))
    return trace
