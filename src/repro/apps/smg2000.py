"""SMG2000 semicoarsening multigrid trace synthesizer (Table 2.2).

SMG2000 (the ASC Purple benchmark) is a semicoarsening multigrid solver:
unlike NAS MG's full coarsening, each V-cycle level coarsens *one*
dimension, so the halo pattern is anisotropic — the strided partner
direction rotates with the level, and message sizes shrink along the
coarsened axis only.  Table 2.2 records 10 total phases, 4 relevant,
repeated 1200 times.
"""

from __future__ import annotations

from repro.apps.grids import Grid3D
from repro.mpi.events import Allreduce, Bcast, Compute, Recv, Send
from repro.mpi.trace import Trace

_COMPUTE_S = 18e-6


def _axis_neighbors(grid: Grid3D, rank: int, axis: int, stride: int) -> list[int]:
    """Partners at ±stride along one axis only (semicoarsened halo)."""
    x, y, z = grid.coords(rank)
    deltas = {
        0: ((stride, 0, 0), (-stride, 0, 0)),
        1: ((0, stride, 0), (0, -stride, 0)),
        2: ((0, 0, stride), (0, 0, -stride)),
    }[axis]
    out = []
    for dx, dy, dz in deltas:
        nb = grid.rank(x + dx, y + dy, z + dz)
        if nb is not None and nb != rank:
            out.append(nb)
    return list(dict.fromkeys(out))


def smg2000_trace(
    num_ranks: int = 64,
    iterations: int = 3,
    message_bytes: int = 3072,
) -> Trace:
    """Semicoarsening V-cycle: the halo axis rotates with the level."""
    grid = Grid3D(num_ranks, periodic=False)
    trace = Trace(
        f"smg2000.{num_ranks}",
        num_ranks,
        metadata={"paper_relevant_phases": 4, "paper_weight": 1200},
    )
    for r in trace.ranks():
        trace.append(r, Bcast(512, root=0))
        trace.append(r, Compute(_COMPUTE_S))
    dims = (grid.nx, grid.ny, grid.nz)
    for _ in range(iterations):
        # Down-cycle: coarsen z, then y, then x; up-cycle mirrors.
        schedule = [(2, 1), (1, 1), (0, 1), (0, 1), (1, 1), (2, 1)]
        for level, (axis, stride) in enumerate(schedule):
            if stride >= dims[axis]:
                continue
            msg = max(128, message_bytes >> min(level, 3))
            for r in trace.ranks():
                partners = _axis_neighbors(grid, r, axis, stride)
                for nb in partners:
                    trace.append(r, Send(nb, msg, tag=500 + axis))
                for nb in partners:
                    trace.append(r, Recv(nb, tag=500 + axis))
                trace.append(r, Compute(_COMPUTE_S))
        # Residual-norm check per cycle.
        for r in trace.ranks():
            trace.append(r, Allreduce(32))
            trace.append(r, Compute(_COMPUTE_S / 2))
    return trace
