"""Application workload synthesizers (Chapter 2 + §4.8).

The thesis drives PR-DRB with logical traces of real applications (NAS
LU/MG, LAMMPS, POP, Sweep3D) extracted with PAS2P.  We do not have those
proprietary trace files, so this subpackage *synthesizes* traces that
reproduce the published observables: the communication matrices of
Figs 2.10-2.13 (diagonal bands + scattered remote partners, TDC values),
the MPI-call breakdown of Table 2.1, and the phase/repetitiveness
structure of Table 2.2.  PR-DRB only ever sees the induced network
traffic, so matching those observables preserves the experiment.
"""

from repro.apps.commmatrix import CommMatrixStats, band_fraction
from repro.apps.phases import PhaseReport, detect_phases
from repro.apps.nas import nas_lu_trace, nas_mg_trace, nas_ft_trace
from repro.apps.lammps import lammps_chain_trace, lammps_comb_trace
from repro.apps.pop import pop_trace
from repro.apps.smg2000 import smg2000_trace
from repro.apps.sweep3d import sweep3d_trace

__all__ = [
    "CommMatrixStats",
    "band_fraction",
    "PhaseReport",
    "detect_phases",
    "nas_lu_trace",
    "nas_mg_trace",
    "nas_ft_trace",
    "lammps_chain_trace",
    "lammps_comb_trace",
    "pop_trace",
    "smg2000_trace",
    "sweep3d_trace",
    "APP_TRACES",
]

#: registry used by the experiment harness.
APP_TRACES = {
    "nas-lu": nas_lu_trace,
    "nas-mg": nas_mg_trace,
    "nas-ft": nas_ft_trace,
    "lammps-chain": lammps_chain_trace,
    "lammps-comb": lammps_comb_trace,
    "pop": pop_trace,
    "smg2000": smg2000_trace,
    "sweep3d": sweep3d_trace,
}
