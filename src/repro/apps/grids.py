"""Rank-grid helpers shared by the application synthesizers.

Scientific codes decompose their domains onto 2-D/3-D process grids; the
neighbour structure of that grid is what shows up as the diagonal bands of
the communication matrices (§2.2.6).
"""

from __future__ import annotations

import math


def factor_2d(n: int) -> tuple[int, int]:
    """Most-square 2-D factorization of ``n``."""
    best = (1, n)
    for a in range(1, int(math.isqrt(n)) + 1):
        if n % a == 0:
            best = (a, n // a)
    return best


def factor_3d(n: int) -> tuple[int, int, int]:
    """Most-cubic 3-D factorization of ``n``."""
    best = (1, 1, n)
    best_score = n
    for a in range(1, int(round(n ** (1 / 3))) + 2):
        if n % a:
            continue
        for b in range(a, int(math.isqrt(n // a)) + 1):
            if (n // a) % b:
                continue
            c = n // (a * b)
            score = max(a, b, c) - min(a, b, c)
            if score < best_score:
                best_score = score
                best = tuple(sorted((a, b, c)))
    return best


class Grid2D:
    """Ranks arranged row-major on a ``width x height`` grid."""

    def __init__(self, num_ranks: int, periodic: bool = False) -> None:
        self.width, self.height = factor_2d(num_ranks)
        self.num_ranks = num_ranks
        self.periodic = periodic

    def coords(self, rank: int) -> tuple[int, int]:
        return rank % self.width, rank // self.width

    def rank(self, x: int, y: int) -> int | None:
        if self.periodic:
            return (y % self.height) * self.width + (x % self.width)
        if 0 <= x < self.width and 0 <= y < self.height:
            return y * self.width + x
        return None

    def neighbors4(self, rank: int) -> list[int]:
        x, y = self.coords(rank)
        out = []
        for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            nb = self.rank(x + dx, y + dy)
            if nb is not None and nb != rank:
                out.append(nb)
        return out

    def neighbors8(self, rank: int) -> list[int]:
        x, y = self.coords(rank)
        out = []
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                if dx == dy == 0:
                    continue
                nb = self.rank(x + dx, y + dy)
                if nb is not None and nb != rank:
                    out.append(nb)
        return list(dict.fromkeys(out))


class Grid3D:
    """Ranks arranged on an ``nx x ny x nz`` grid."""

    def __init__(self, num_ranks: int, periodic: bool = True) -> None:
        self.nx, self.ny, self.nz = factor_3d(num_ranks)
        self.num_ranks = num_ranks
        self.periodic = periodic

    def coords(self, rank: int) -> tuple[int, int, int]:
        x = rank % self.nx
        y = (rank // self.nx) % self.ny
        z = rank // (self.nx * self.ny)
        return x, y, z

    def rank(self, x: int, y: int, z: int) -> int | None:
        if self.periodic:
            x, y, z = x % self.nx, y % self.ny, z % self.nz
        elif not (0 <= x < self.nx and 0 <= y < self.ny and 0 <= z < self.nz):
            return None
        return z * self.nx * self.ny + y * self.nx + x

    def neighbors6(self, rank: int, stride: int = 1) -> list[int]:
        x, y, z = self.coords(rank)
        out = []
        for dx, dy, dz in (
            (stride, 0, 0), (-stride, 0, 0),
            (0, stride, 0), (0, -stride, 0),
            (0, 0, stride), (0, 0, -stride),
        ):
            nb = self.rank(x + dx, y + dy, z + dz)
            if nb is not None and nb != rank:
                out.append(nb)
        return list(dict.fromkeys(out))
