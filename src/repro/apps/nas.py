"""NAS Parallel Benchmark trace synthesizers (§4.8.2; Bailey et al.).

* **LU** — pseudo-application: 2-D wavefront pipeline with small
  point-to-point messages (the thesis: "long- and short-distance
  communication", heavily MPI_Send/MPI_Recv, Table 2.1);
* **MG** — multigrid kernel: 3-D halo exchange whose partner *stride*
  changes with the grid level (giving both near and far partners) plus a
  small MPI_Allreduce share;
* **FT** — all-to-all transpose phases (Table 2.2 lists its few, heavy
  phases).

Problem classes scale message sizes and iteration counts the way the NAS
classes S/A/B scale their grids — values are tuned for simulator-scale
runs, not for matching NAS's absolute byte counts.
"""

from __future__ import annotations

from repro.apps.grids import Grid2D, Grid3D
from repro.mpi.events import Allreduce, Bcast, Compute, Recv, Reduce, Send
from repro.mpi.trace import Trace

#: per-class (message_bytes, iterations) scaling.
_MG_CLASSES = {"S": (256, 2), "A": (2048, 4), "B": (4096, 6)}
_LU_CLASSES = {"S": (256, 2), "A": (1024, 4), "B": (2048, 6)}
_FT_CLASSES = {"S": (512, 1), "A": (1024, 2), "B": (2048, 3)}

#: serial-computation granularity between communications, seconds.
_COMPUTE_S = 20e-6


def nas_mg_trace(
    num_ranks: int = 64,
    problem_class: str = "A",
    iterations: int | None = None,
) -> Trace:
    """Multigrid V-cycle: strided 6-neighbour halos, shrinking messages."""
    size, default_iters = _MG_CLASSES[problem_class.upper()]
    iterations = iterations or default_iters
    grid = Grid3D(num_ranks, periodic=True)
    trace = Trace(
        f"nas-mg.{problem_class.upper()}.{num_ranks}",
        num_ranks,
        metadata={"class": problem_class.upper(), "paper_weight": {"S": 164, "A": 185, "B": 424}[problem_class.upper()]},
    )
    max_stride = max(1, min(grid.nx, grid.ny, grid.nz) // 2)
    strides = [s for s in (1, 2, 4) if s <= max_stride] or [1]
    for r in trace.ranks():
        trace.append(r, Bcast(size, root=0))
        trace.append(r, Compute(_COMPUTE_S))
    for _ in range(iterations):
        for level, stride in enumerate(strides + strides[::-1]):  # V-cycle
            msg = max(64, size >> level)
            for r in trace.ranks():
                partners = grid.neighbors6(r, stride=stride)
                for i, nb in enumerate(partners):
                    trace.append(r, Send(nb, msg, tag=stride * 8 + i))
                for i, nb in enumerate(partners):
                    # Symmetric exchange: my i-th partner used tag i for me.
                    back = grid.neighbors6(nb, stride=stride).index(r)
                    trace.append(r, Recv(nb, tag=stride * 8 + back))
                trace.append(r, Compute(_COMPUTE_S))
        for r in trace.ranks():
            trace.append(r, Allreduce(64))
            trace.append(r, Compute(_COMPUTE_S / 2))
    for r in trace.ranks():
        trace.append(r, Reduce(64, root=0))
    return trace


def nas_lu_trace(
    num_ranks: int = 64,
    problem_class: str = "A",
    iterations: int | None = None,
) -> Trace:
    """SSOR wavefront: pipelined north/west -> south/east sweeps."""
    size, default_iters = _LU_CLASSES[problem_class.upper()]
    iterations = iterations or default_iters
    grid = Grid2D(num_ranks, periodic=False)
    trace = Trace(
        f"nas-lu.{problem_class.upper()}.{num_ranks}",
        num_ranks,
        metadata={"class": problem_class.upper()},
    )
    for it in range(iterations):
        # Forward sweep: dependencies flow from (0,0) to (W-1,H-1).
        for r in trace.ranks():
            x, y = grid.coords(r)
            north = grid.rank(x, y - 1)
            west = grid.rank(x - 1, y)
            south = grid.rank(x, y + 1)
            east = grid.rank(x + 1, y)
            if north is not None:
                trace.append(r, Recv(north, tag=1))
            if west is not None:
                trace.append(r, Recv(west, tag=2))
            trace.append(r, Compute(_COMPUTE_S))
            if south is not None:
                trace.append(r, Send(south, size, tag=1))
            if east is not None:
                trace.append(r, Send(east, size, tag=2))
        # Backward sweep: mirrored.
        for r in trace.ranks():
            x, y = grid.coords(r)
            south = grid.rank(x, y + 1)
            east = grid.rank(x + 1, y)
            north = grid.rank(x, y - 1)
            west = grid.rank(x - 1, y)
            if south is not None:
                trace.append(r, Recv(south, tag=3))
            if east is not None:
                trace.append(r, Recv(east, tag=4))
            trace.append(r, Compute(_COMPUTE_S))
            if north is not None:
                trace.append(r, Send(north, size, tag=3))
            if west is not None:
                trace.append(r, Send(west, size, tag=4))
        for r in trace.ranks():
            trace.append(r, Compute(_COMPUTE_S / 2))
    # One convergence reduction at the end: Table 2.1 shows LU's
    # MPI_Allreduce share is vanishing (0.003 %) next to its send/recv.
    for r in trace.ranks():
        trace.append(r, Allreduce(40))
    return trace


def nas_ft_trace(
    num_ranks: int = 64,
    problem_class: str = "A",
    iterations: int | None = None,
) -> Trace:
    """3-D FFT: all-to-all transpose per iteration."""
    size, default_iters = _FT_CLASSES[problem_class.upper()]
    iterations = iterations or default_iters
    trace = Trace(
        f"nas-ft.{problem_class.upper()}.{num_ranks}",
        num_ranks,
        metadata={"class": problem_class.upper()},
    )
    n = num_ranks
    for r in trace.ranks():
        trace.append(r, Bcast(size, root=0))
        trace.append(r, Compute(_COMPUTE_S))
    for _ in range(iterations):
        for r in trace.ranks():
            # Shifted all-to-all avoids every rank hammering rank 0 first.
            for off in range(1, n):
                trace.append(r, Send((r + off) % n, size, tag=off))
            for off in range(1, n):
                trace.append(r, Recv((r - off) % n, tag=off))
            trace.append(r, Compute(_COMPUTE_S))
        for r in trace.ranks():
            trace.append(r, Allreduce(64))
            trace.append(r, Compute(_COMPUTE_S / 2))
    return trace
