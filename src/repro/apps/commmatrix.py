"""Communication-matrix analysis (§2.2.6, Figs 2.10-2.13).

Turns a trace's byte-volume matrix into the statistics the thesis reads
off its figures: TDC (distinct partners per rank), the fraction of volume
near the diagonal (the "diagonal band" structure), and the scattered
remote-communication share.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mpi.trace import Trace, communication_matrix, mean_tdc, tdc


def band_fraction(matrix: np.ndarray, bandwidth: int) -> float:
    """Fraction of total volume within ``|src - dst| <= bandwidth``."""
    total = matrix.sum()
    if total == 0:
        return 0.0
    n = matrix.shape[0]
    idx = np.abs(np.subtract.outer(np.arange(n), np.arange(n)))
    return float(matrix[idx <= bandwidth].sum() / total)


@dataclass
class CommMatrixStats:
    """Summary of one application's communication topology."""

    name: str
    matrix: np.ndarray
    mean_tdc: float
    max_tdc: int
    diagonal_band_fraction: float
    total_bytes: float

    @classmethod
    def from_trace(
        cls,
        trace: Trace,
        bandwidth: int = 2,
        include_collectives: bool = False,
    ) -> "CommMatrixStats":
        matrix = communication_matrix(trace, include_collectives=include_collectives)
        degrees = tdc(matrix)
        return cls(
            name=trace.name,
            matrix=matrix,
            mean_tdc=mean_tdc(matrix),
            max_tdc=int(degrees.max()) if degrees.size else 0,
            diagonal_band_fraction=band_fraction(matrix, bandwidth),
            total_bytes=float(matrix.sum()),
        )

    def row(self) -> dict:
        """Report row for the Fig. 2.10-2.13 reproduction."""
        return {
            "application": self.name,
            "mean_tdc": round(self.mean_tdc, 2),
            "max_tdc": self.max_tdc,
            "diag_band_fraction": round(self.diagonal_band_fraction, 3),
            "total_mbytes": round(self.total_bytes / 1e6, 3),
        }
