"""LAMMPS molecular-dynamics trace synthesizers (§2.2.6, §4.8.3).

* **chain** — bead-spring polymer benchmark: 3-D spatial decomposition
  with 6 face neighbours plus one long-range partner, giving the thesis'
  TDC of ~7 per rank independent of scale (Fig. 2.10); ~10 % of calls are
  MPI_Allreduce (Table 2.1), and the phase structure repeats heavily
  (Table 2.2: 19 relevant phases, weight 1802).
* **comb** — COMB potential benchmark: near-diagonal exchange plus one
  relevant phase made purely of MPI_Allreduce (§2.2.6: "composed solely by
  collective communications", weight > 800).
"""

from __future__ import annotations

import numpy as np

from repro.apps.grids import Grid3D
from repro.mpi.events import Allreduce, Bcast, Compute, Irecv, Send, Wait
from repro.mpi.trace import Trace
from repro.sim.rng import seeded_generator

_COMPUTE_S = 25e-6


def _exchange(trace: Trace, rank: int, partners: list[int], size: int, tag0: int) -> None:
    """Halo exchange in LAMMPS style: post Irecvs, Send, then Wait all.

    Tags are symmetric: both sides of a pair use the pair-invariant tag
    ``tag0 + min(r, nb) mod stride`` — with distinct partners this stays
    unambiguous per segment.
    """
    for i, nb in enumerate(partners):
        trace.append(rank, Irecv(nb, tag=tag0 + _pair_tag(rank, nb), request=i + 1))
    for nb in partners:
        trace.append(rank, Send(nb, size, tag=tag0 + _pair_tag(rank, nb)))
    for i in range(len(partners)):
        trace.append(rank, Wait(request=i + 1))


def _pair_tag(a: int, b: int) -> int:
    return (min(a, b) * 31 + max(a, b)) % 251


def _far_partner(rank: int, num_ranks: int, rng: np.random.Generator) -> int:
    """A stable long-range partner (special-bond / FFT pencil exchange)."""
    offset = int(rng.integers(num_ranks // 3, 2 * num_ranks // 3))
    return (rank + offset) % num_ranks


def lammps_chain_trace(
    num_ranks: int = 64,
    iterations: int = 6,
    message_bytes: int = 2048,
    seed: int = 0,
    rng: np.random.Generator | None = None,
) -> Trace:
    """Chain benchmark: 6 face neighbours + 1 far partner, TDC ~ 7."""
    grid = Grid3D(num_ranks, periodic=True)
    if rng is None:
        rng = seeded_generator(seed)
    trace = Trace(
        f"lammps-chain.{num_ranks}",
        num_ranks,
        metadata={"paper_relevant_phases": 19, "paper_weight": 1802},
    )
    far = [_far_partner(r, num_ranks, rng) for r in range(num_ranks)]
    # Symmetrize the far partnership so exchanges match.
    partners_far: dict[int, set[int]] = {r: set() for r in range(num_ranks)}
    for r, f in enumerate(far):
        if f != r:
            partners_far[r].add(f)
            partners_far[f].add(r)
    for r in trace.ranks():
        trace.append(r, Bcast(1024, root=0))
        trace.append(r, Compute(_COMPUTE_S))
    for it in range(iterations):
        for r in trace.ranks():
            partners = grid.neighbors6(r) + sorted(partners_far[r])
            _exchange(trace, r, partners, message_bytes, tag0=1000)
            trace.append(r, Compute(_COMPUTE_S))
        # Thermodynamics output: a pair of global reductions per step
        # (temperature + pressure), giving the ~10 % allreduce share of
        # Table 2.1.
        for r in trace.ranks():
            trace.append(r, Allreduce(48))
            trace.append(r, Allreduce(48))
            trace.append(r, Compute(_COMPUTE_S / 4))
    return trace


def lammps_comb_trace(
    num_ranks: int = 64,
    iterations: int = 4,
    message_bytes: int = 2048,
) -> Trace:
    """COMB benchmark: near-diagonal halos + a pure-allreduce phase."""
    grid = Grid3D(num_ranks, periodic=True)
    trace = Trace(
        f"lammps-comb.{num_ranks}",
        num_ranks,
        metadata={"paper_relevant_phases": 2, "paper_weight": 1698},
    )
    for r in trace.ranks():
        trace.append(r, Bcast(1024, root=0))
        trace.append(r, Compute(_COMPUTE_S))
    for _ in range(iterations):
        # Phase 1: local (diagonal-band) halo exchange.
        for r in trace.ranks():
            _exchange(trace, r, grid.neighbors6(r), message_bytes, tag0=2000)
            trace.append(r, Compute(_COMPUTE_S))
        # Phase 2: the charge-equilibration loop — solely MPI_Allreduce.
        for r in trace.ranks():
            for _ in range(4):
                trace.append(r, Allreduce(64))
            trace.append(r, Compute(_COMPUTE_S / 2))
    return trace
