"""Sweep3D trace synthesizer (§2.2.6, Fig. 2.12).

Discrete-ordinates neutron transport: 2-D pipelined wavefronts swept from
each of the four corners of the process grid.  Communication is strictly
nearest-neighbour (TDC 4, all volume on the matrix diagonal) with small
messages — the thesis' example of an application whose traffic the network
absorbs without congestion, hence *not* suitable for PR-DRB optimization.
"""

from __future__ import annotations

from repro.apps.grids import Grid2D
from repro.mpi.events import Allreduce, Compute, Recv, Send
from repro.mpi.trace import Trace

_COMPUTE_S = 10e-6

#: the four sweep directions: (dx, dy) of the dependency flow.
_SWEEPS = ((1, 1), (-1, 1), (1, -1), (-1, -1))


def sweep3d_trace(
    num_ranks: int = 64,
    iterations: int = 3,
    message_bytes: int = 800,
) -> Trace:
    """Four corner-to-corner wavefront sweeps per iteration."""
    grid = Grid2D(num_ranks, periodic=False)
    trace = Trace(
        f"sweep3d.{num_ranks}",
        num_ranks,
        metadata={"paper_relevant_phases": 5, "paper_weight": 46000},
    )
    for _ in range(iterations):
        for sweep_id, (dx, dy) in enumerate(_SWEEPS):
            tag = 100 + sweep_id
            for r in trace.ranks():
                x, y = grid.coords(r)
                upwind_x = grid.rank(x - dx, y)
                upwind_y = grid.rank(x, y - dy)
                downwind_x = grid.rank(x + dx, y)
                downwind_y = grid.rank(x, y + dy)
                if upwind_x is not None:
                    trace.append(r, Recv(upwind_x, tag=tag))
                if upwind_y is not None:
                    trace.append(r, Recv(upwind_y, tag=tag))
                trace.append(r, Compute(_COMPUTE_S))
                if downwind_x is not None:
                    trace.append(r, Send(downwind_x, message_bytes, tag=tag))
                if downwind_y is not None:
                    trace.append(r, Send(downwind_y, message_bytes, tag=tag))
    # A single convergence check at the end: Table 2.1 shows Sweep3D's
    # MPI_Allreduce share is vanishing (0.007 %).
    for r in trace.ranks():
        trace.append(r, Allreduce(24))
        trace.append(r, Compute(_COMPUTE_S / 2))
    return trace
