"""Phase detection — the PAS2P substitute (§2.2.5, Table 2.2).

PAS2P identifies an application's *relevant phases*: recurring
communication segments and their repetition *weights*.  We reproduce the
analysis on logical traces: a rank's stream is segmented at compute-event
boundaries (communication bursts alternate with computation, §2.2.3); each
segment's *signature* is the multiset of its communication calls; distinct
signatures are phases and their occurrence counts are the weights.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.mpi.events import Compute
from repro.mpi.trace import Trace


def segment_signature(events: list) -> tuple:
    """Canonical signature of one communication segment."""
    items: Counter = Counter()
    for e in events:
        if isinstance(e, Compute):
            continue
        peer = getattr(e, "dst", getattr(e, "src", None))
        size = getattr(e, "size_bytes", 0)
        items[(e.call, peer, size)] += 1
    return tuple(sorted(items.items()))


def segment_stream(events: list) -> list[list]:
    """Split one rank's stream into segments at compute boundaries."""
    segments: list[list] = []
    current: list = []
    for e in events:
        if isinstance(e, Compute):
            if current:
                segments.append(current)
                current = []
        else:
            current.append(e)
    if current:
        segments.append(current)
    return segments


@dataclass
class PhaseReport:
    """Table 2.2-style phase summary for one application."""

    application: str
    total_phases: int
    relevant_phases: int
    total_weight: int
    weights: dict[tuple, int] = field(default_factory=dict)

    def row(self) -> dict:
        return {
            "application": self.application,
            "total_phases": self.total_phases,
            "relevant_phases": self.relevant_phases,
            "weight": self.total_weight,
        }


def detect_phases(trace: Trace, relevant_min_weight: int = 2) -> PhaseReport:
    """Extract phases and weights from ``trace``.

    A phase is *relevant* when it repeats at least ``relevant_min_weight``
    times — repetition is what PR-DRB's predictive module feeds on, so
    one-shot segments (initialization, teardown) are not relevant.
    Signatures are counted on rank 0's stream (SPMD representative), as
    PAS2P does with its master trace.
    """
    counts: Counter = Counter()
    segments = segment_stream(trace.events.get(0, []))
    for seg in segments:
        sig = segment_signature(seg)
        if sig:
            counts[sig] += 1
    relevant = {sig: n for sig, n in counts.items() if n >= relevant_min_weight}
    return PhaseReport(
        application=trace.name,
        total_phases=len(counts),
        relevant_phases=len(relevant),
        total_weight=sum(relevant.values()),
        weights=dict(counts),
    )
