"""Fault injection and end-to-end recovery (`repro.faults`).

The thesis positions DRB-family metapath redundancy as implicit fault
tolerance (§3.3.2); this package makes that claim testable:

* :mod:`repro.faults.models` — declarative fault models: scheduled and
  stochastic (MTBF/MTTR) transient link flaps, permanent link/router
  kills, degraded links, ACK/notification loss and delay;
* :mod:`repro.faults.injector` — drives models as simulator events on a
  fabric and logs fail/restore episodes for MTTR;
* :mod:`repro.faults.recovery` — NIC-level reliable transport:
  sequence numbers, retransmission with capped exponential backoff,
  duplicate suppression;
* :mod:`repro.faults.metrics` — resilience metrics (delivered-under-
  fault ratio, MTTR, retransmission overhead, recovery latency);
* :mod:`repro.faults.campaign` — the seeded campaign runner comparing
  routing policies under one fault schedule, digested by the replay
  harness.

CLI: ``python -m repro.faults`` runs a small campaign and exits nonzero
unless every policy keeps a nonzero delivered-under-fault ratio.
"""

from repro.faults.campaign import (
    FaultCampaignSpec,
    FaultRunResult,
    run_fault_campaign,
    run_fault_scenario,
    sweep_ack_loss,
)
from repro.faults.injector import FaultEpisode, FaultInjector
from repro.faults.metrics import ResilienceReport, render_reports, resilience_report
from repro.faults.models import (
    AckLoss,
    DegradedLink,
    LinkFlap,
    LinkKill,
    RouterKill,
    StochasticLinkFlaps,
)
from repro.faults.recovery import ReliableTransport

__all__ = [
    "AckLoss",
    "DegradedLink",
    "FaultCampaignSpec",
    "FaultEpisode",
    "FaultInjector",
    "FaultRunResult",
    "LinkFlap",
    "LinkKill",
    "ReliableTransport",
    "ResilienceReport",
    "RouterKill",
    "StochasticLinkFlaps",
    "render_reports",
    "resilience_report",
    "run_fault_campaign",
    "run_fault_scenario",
    "sweep_ack_loss",
]
