"""Fault models: declarative descriptions of failure processes.

Each model is a frozen dataclass with an ``apply(injector)`` method that
translates it into simulator events (or packet filters) through a
:class:`~repro.faults.injector.FaultInjector`.  Models compose freely
with any scenario: they only touch the fabric through the same
``fail_link`` / ``restore_link`` / ``degrade_link`` surface available to
tests, plus the injection-point fault filter for notification loss.

Two families:

* **scheduled** — :class:`LinkFlap`, :class:`LinkKill`,
  :class:`RouterKill`, :class:`DegradedLink` fire at explicit times
  (reproducible by construction);
* **stochastic** — :class:`StochasticLinkFlaps` draws an MTBF/MTTR
  renewal process and :class:`AckLoss` drops/delays notification packets
  Bernoulli-style, both from the injector's *injected* RNG stream, so a
  seeded campaign replays bit-identically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.network.fabric import DROP_ACK_LOSS
from repro.network.packet import ACK, PREDICTIVE_ACK

__all__ = [
    "LinkFlap",
    "LinkKill",
    "RouterKill",
    "DegradedLink",
    "AckLoss",
    "StochasticLinkFlaps",
]


@dataclass(frozen=True)
class LinkFlap:
    """A transient link failure: down at ``at_s``, back after ``duration_s``."""

    a: int
    b: int
    at_s: float
    duration_s: float

    def apply(self, injector) -> None:
        injector.flap_link(self.a, self.b, self.at_s, self.duration_s)


@dataclass(frozen=True)
class LinkKill:
    """A permanent link failure starting at ``at_s``."""

    a: int
    b: int
    at_s: float

    def apply(self, injector) -> None:
        injector.fail_link_at(self.at_s, self.a, self.b)


@dataclass(frozen=True)
class RouterKill:
    """A permanent router failure: every adjacent link dies at ``at_s``."""

    router: int
    at_s: float

    def apply(self, injector) -> None:
        for neighbor in sorted(injector.fabric.topology.router_neighbors(self.router)):
            injector.fail_link_at(self.at_s, self.router, neighbor)


@dataclass(frozen=True)
class DegradedLink:
    """A link that stays up but gains ``extra_delay_s`` of propagation
    delay from ``at_s`` (for ``duration_s`` seconds; forever if None)."""

    a: int
    b: int
    extra_delay_s: float
    at_s: float
    duration_s: float | None = None

    def apply(self, injector) -> None:
        injector.degrade_link_at(
            self.at_s, self.a, self.b, self.extra_delay_s, self.duration_s
        )


@dataclass(frozen=True)
class AckLoss:
    """Notification-plane faults: ACK / predictive-ACK loss and delay.

    Within ``[start_s, end_s)`` each notification packet is independently
    dropped with ``drop_probability``, else delayed by ``delay_s`` with
    ``delay_probability`` — the regime where notification-based
    congestion management degrades and FR-DRB's watchdog matters.
    Data packets are never touched by this model.
    """

    drop_probability: float = 0.1
    start_s: float = 0.0
    end_s: float = math.inf
    delay_probability: float = 0.0
    delay_s: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop_probability <= 1.0:
            raise ValueError("drop_probability must be in [0, 1]")
        if not 0.0 <= self.delay_probability <= 1.0 - self.drop_probability:
            raise ValueError(
                "delay_probability must fit beside drop_probability in [0, 1]"
            )

    def apply(self, injector) -> None:
        rng = injector.require_rng("AckLoss")
        injector.add_packet_filter(_AckLossFilter(self, rng))


class _AckLossFilter:
    """Callable filter for :class:`AckLoss`.

    A module-level class (not a closure) so that an armed filter — and the
    RNG stream position it shares with the injector — pickles into
    checkpoints and resumes bit-identically.
    """

    __slots__ = ("model", "rng")

    def __init__(self, model: "AckLoss", rng) -> None:
        self.model = model
        self.rng = rng

    def __call__(self, packet, now):
        model = self.model
        if packet.kind not in (ACK, PREDICTIVE_ACK):
            return None
        if not model.start_s <= now < model.end_s:
            return None
        draw = self.rng.random()
        if draw < model.drop_probability:
            return ("drop", DROP_ACK_LOSS)
        if draw < model.drop_probability + model.delay_probability:
            return ("delay", model.delay_s)
        return None


@dataclass(frozen=True)
class StochasticLinkFlaps:
    """An MTBF/MTTR renewal process of transient link failures.

    Failure inter-arrival times are exponential with mean ``mtbf_s``;
    each failure picks a uniformly random router link and repairs after
    an exponential ``mttr_s`` outage.  The whole schedule is drawn up
    front from the injector's RNG, so it is independent of the traffic
    interleaving and replays exactly.
    """

    mtbf_s: float
    mttr_s: float
    start_s: float = 0.0
    end_s: float = math.inf
    max_failures: int = 64

    def __post_init__(self) -> None:
        if self.mtbf_s <= 0 or self.mttr_s <= 0:
            raise ValueError("mtbf_s and mttr_s must be positive")
        if self.max_failures < 1:
            raise ValueError("max_failures must be >= 1")

    def apply(self, injector) -> None:
        rng = injector.require_rng("StochasticLinkFlaps")
        links = injector.router_links()
        t = self.start_s
        for _ in range(self.max_failures):
            t += float(rng.exponential(self.mtbf_s))
            if t >= self.end_s:
                break
            a, b = links[int(rng.integers(len(links)))]
            outage = float(rng.exponential(self.mttr_s))
            injector.flap_link(a, b, t, outage)
