"""CLI: ``python -m repro.faults`` — seeded fault-campaign smoke run.

Runs the reference 4x4-mesh campaign (transient link flaps + ACK loss,
reliable transport on) once per policy, prints the resilience table, and
enforces the acceptance gates:

* every policy delivers a nonzero fraction of its offered load;
* PR-DRB's delivered-under-fault ratio is at least deterministic's;
* MTTR is finite (the transient faults were actually repaired).

Exit 0 iff all gates hold — usable directly as a CI step.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from typing import Optional, Sequence

from repro.faults.campaign import (
    DEFAULT_POLICIES,
    FaultCampaignSpec,
    run_fault_campaign,
)
from repro.faults.metrics import render_reports


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults",
        description="Fault-injection campaign: link flaps + ACK loss on a "
        "small mesh, compared across routing policies.",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--mesh-side", type=int, default=4)
    parser.add_argument("--repetitions", type=int, default=3)
    parser.add_argument("--ack-loss", type=float, default=0.1)
    parser.add_argument(
        "--policies", nargs="+", default=list(DEFAULT_POLICIES),
        help="routing policies to campaign (default: %(default)s)",
    )
    parser.add_argument(
        "--stochastic", action="store_true",
        help="draw flaps from an MTBF/MTTR process instead of the schedule",
    )
    parser.add_argument("--json", action="store_true")
    args = parser.parse_args(argv)

    spec = FaultCampaignSpec(
        seed=args.seed,
        mesh_side=args.mesh_side,
        repetitions=args.repetitions,
        ack_loss=args.ack_loss,
        stochastic=args.stochastic,
    )
    results = run_fault_campaign(args.policies, spec)
    reports = [results[p].report for p in args.policies]
    if args.json:
        print(json.dumps({p: results[p].to_dict() for p in args.policies}, indent=2))
    else:
        print(render_reports(reports))

    failures = []
    for report in reports:
        if not report.delivered_ratio > 0:
            failures.append(f"{report.policy}: delivered-under-fault ratio is 0")
        if report.failures and not math.isfinite(report.mttr_s):
            failures.append(f"{report.policy}: MTTR is not finite")
    ratios = {r.policy: r.delivered_ratio for r in reports}
    if "pr-drb" in ratios and "deterministic" in ratios:
        if ratios["pr-drb"] < ratios["deterministic"]:
            failures.append(
                "pr-drb delivered-under-fault ratio "
                f"{ratios['pr-drb']:.3f} < deterministic's "
                f"{ratios['deterministic']:.3f}"
            )
    # Keep stdout machine-parseable under --json: gates go to stderr.
    gate_out = sys.stderr if args.json else sys.stdout
    for failure in failures:
        print(f"FAIL: {failure}", file=gate_out)
    if not failures:
        print(f"OK: {len(reports)} policies, seed={args.seed}", file=gate_out)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
