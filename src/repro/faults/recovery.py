"""End-to-end recovery: NIC-level reliable transport.

The fabric is lossless under congestion but loses packets to link faults
(§3.3.2); :class:`ReliableTransport` restores delivery semantics on top:

* every data packet gets a per-flow **sequence number** at injection;
* a **retransmission timer** with capped exponential backoff re-sends the
  packet (over a freshly selected path — after the policy pruned dead
  MSPs, so the retry avoids the fault) when no ACK arrives in time;
* a fabric **drop notification** (this model's NACK) triggers the same
  recovery immediately, without waiting for the timeout;
* the destination NIC suppresses **duplicates** (original + retransmit
  both arriving), re-ACKing them so the source stops retrying even when
  the first ACK was the casualty;
* after ``max_retries`` attempts the packet is **abandoned** and the
  routing policy's outstanding books rebalanced via ``on_timeout``.

Accounting note: every *copy* the transport injects is a real packet to
the fabric (counted in ``data_packets_injected``, conserved individually
as delivered/dropped/in-flight); the transport tracks *logical* packets,
which is what the delivered-under-fault ratio is measured against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar, Optional

from repro.checkpoint.state import Snapshottable
from repro.network.config import ReliabilityConfig
from repro.network.packet import DATA, Packet
from repro.sim.engine import Event

__all__ = ["ReliableTransport"]


@dataclass
class _Pending(Snapshottable):
    """Book-keeping for one unacknowledged logical packet."""

    #: ``timer`` is the live heap entry itself — pickling it through the
    #: same graph as the engine queue preserves the identity, so a
    #: restored transport can still cancel the restored event.
    _snapshot_fields_: ClassVar[tuple[str, ...]] = (
        "packet",
        "retries",
        "timer",
        "nacks",
        "sent_at",
    )

    packet: Packet
    retries: int = 0
    timer: Optional[Event] = None
    nacks: int = 0
    sent_at: float = field(default=0.0)


class ReliableTransport(Snapshottable):
    """Per-flow sequencing, retransmission and duplicate bookkeeping."""

    _snapshot_fields_: ClassVar[tuple[str, ...]] = (
        "fabric",
        "sim",
        "config",
        "_next_seq",
        "_pending",
        "logical_packets",
        "retransmissions",
        "recovered",
        "abandoned",
        "recovery_latencies_s",
    )

    def __init__(self, fabric, config: ReliabilityConfig | None = None) -> None:
        self.fabric = fabric
        self.sim = fabric.sim
        self.config = config or ReliabilityConfig()
        self._next_seq: dict[tuple[int, int], int] = {}
        self._pending: dict[tuple[int, int, int], _Pending] = {}
        #: logical (first-copy) data packets this transport tracked.
        self.logical_packets = 0
        #: retransmitted copies injected.
        self.retransmissions = 0
        #: logical packets acknowledged only after >= 1 retransmission.
        self.recovered = 0
        #: logical packets given up on after ``max_retries`` attempts.
        self.abandoned = 0
        #: end-to-end latency (first send -> ACK) of recovered packets.
        self.recovery_latencies_s: list[float] = []
        fabric.transport = self

    # ------------------------------------------------------------------
    # Fabric hooks
    # ------------------------------------------------------------------
    def on_inject(self, packet: Packet, now: float) -> None:
        """Track a data packet entering the network (first copy or retry)."""
        if packet.kind != DATA:
            return
        key = (packet.src, packet.dst)
        if packet.retx_seq < 0:
            seq = self._next_seq.get(key, 0)
            self._next_seq[key] = seq + 1
            packet.retx_seq = seq
            self.logical_packets += 1
        pkey = (packet.src, packet.dst, packet.retx_seq)
        entry = self._pending.get(pkey)
        if entry is None:
            entry = _Pending(packet=packet, retries=packet.retries)
            self._pending[pkey] = entry
        else:
            entry.packet = packet
            entry.retries = packet.retries
        entry.sent_at = now
        self._arm_timer(pkey, entry)

    def on_ack(self, ack: Packet, now: float) -> None:
        """An ACK closed the loop: stop the timer, record recovery."""
        if ack.acked_retx_seq < 0:
            return
        pkey = (ack.dst, ack.src, ack.acked_retx_seq)
        entry = self._pending.pop(pkey, None)
        if entry is None:
            return  # duplicate ACK for an already-settled packet
        if entry.timer is not None:
            entry.timer.cancel()
        if entry.retries > 0:
            self.recovered += 1
            self.recovery_latencies_s.append(now - entry.packet.created_at)

    def on_nack(self, packet: Packet, now: float) -> None:
        """The fabric dropped a tracked copy: recover immediately."""
        if packet.retx_seq < 0:
            return
        pkey = (packet.src, packet.dst, packet.retx_seq)
        entry = self._pending.get(pkey)
        if entry is None or entry.packet.pid != packet.pid:
            return  # a stale copy died; a newer one is already out
        entry.nacks += 1
        self._retransmit_or_abandon(pkey, entry, now)

    # ------------------------------------------------------------------
    # Timer path
    # ------------------------------------------------------------------
    def _arm_timer(self, pkey, entry: _Pending) -> None:
        if entry.timer is not None:
            entry.timer.cancel()
        entry.timer = self.sim.schedule(
            self.config.timeout_for(entry.retries), self._expire, pkey
        )

    def _expire(self, pkey) -> None:
        entry = self._pending.get(pkey)
        if entry is None:
            return
        self._retransmit_or_abandon(pkey, entry, self.sim.now)

    # ------------------------------------------------------------------
    def _retransmit_or_abandon(self, pkey, entry: _Pending, now: float) -> None:
        if entry.timer is not None:
            entry.timer.cancel()
            entry.timer = None
        src, dst, _seq = pkey
        # The outstanding copy is written off either way; a fresh send (if
        # any) re-registers itself through select_path.
        self.fabric.policy.on_timeout(src, dst, now)
        tracer = self.fabric.tracer
        if entry.retries >= self.config.max_retries:
            del self._pending[pkey]
            self.abandoned += 1
            if tracer is not None:
                tracer.emit(
                    now,
                    "retx.abandon",
                    ("flow", f"{src}-{dst}"),
                    args={"seq": _seq, "retries": entry.retries},
                )
            return
        entry.retries += 1
        self.retransmissions += 1
        if tracer is not None:
            tracer.emit(
                now,
                "retx.send",
                ("flow", f"{src}-{dst}"),
                args={"seq": _seq, "retries": entry.retries, "nacks": entry.nacks},
            )
        old = entry.packet
        path, msp_index = self.fabric.policy.select_path(
            src, dst, old.size_bytes, now
        )
        copy = Packet(
            src=src,
            dst=dst,
            size_bytes=old.size_bytes,
            kind=DATA,
            path=path,
            created_at=old.created_at,
            msp_index=msp_index,
            mpi_type=old.mpi_type,
            mpi_seq=old.mpi_seq,
            final=old.final,
            fragments=old.fragments,
            retx_seq=old.retx_seq,
            retries=entry.retries,
        )
        self.fabric.inject(copy)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        return len(self._pending)

    def pending_by_flow(self) -> dict[tuple[int, int], int]:
        """Unacknowledged logical packets per (src, dst) flow."""
        counts: dict[tuple[int, int], int] = {}
        for src, dst, _ in self._pending:
            counts[(src, dst)] = counts.get((src, dst), 0) + 1
        return counts

    def stats(self) -> dict:
        return {
            "logical_packets": self.logical_packets,
            "retransmissions": self.retransmissions,
            "recovered": self.recovered,
            "abandoned": self.abandoned,
            "pending": self.pending,
        }
