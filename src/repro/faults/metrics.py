"""Resilience metrics: what fault-injection campaigns measure.

Four quantities summarize how a policy + recovery stack rides out
faults:

* **delivered-under-fault ratio** — unique (logical) packets delivered /
  logical packets offered.  With a reliable transport this is measured
  against logical packets, not wire copies, so retransmissions don't
  inflate the denominator.
* **MTTR** — mean time to repair over the injector's closed fault
  episodes (the fault process's own property; reported so ratios can be
  read against how long links actually stayed dark).
* **retransmission overhead** — retransmitted copies / logical packets.
* **recovery latency** — mean first-send -> ACK latency of packets that
  needed at least one retransmission (how long a fault stretched the
  affected packets).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["ResilienceReport", "render_reports", "resilience_report"]


@dataclass(frozen=True)
class ResilienceReport:
    """Resilience summary of one run (one policy, one seed)."""

    policy: str
    logical_packets: int
    delivered: int
    delivered_ratio: float
    mttr_s: float
    failures: int
    retransmissions: int
    retransmission_overhead: float
    recovered: int
    abandoned: int
    mean_recovery_latency_s: float
    dropped_by_reason: dict = field(default_factory=dict)
    watchdog_fires: int = 0
    paths_pruned: int = 0
    solutions_invalidated: int = 0

    def to_dict(self) -> dict:
        return {
            "policy": self.policy,
            "logical_packets": self.logical_packets,
            "delivered": self.delivered,
            "delivered_ratio": self.delivered_ratio,
            "mttr_s": self.mttr_s,
            "failures": self.failures,
            "retransmissions": self.retransmissions,
            "retransmission_overhead": self.retransmission_overhead,
            "recovered": self.recovered,
            "abandoned": self.abandoned,
            "mean_recovery_latency_s": self.mean_recovery_latency_s,
            "dropped_by_reason": dict(self.dropped_by_reason),
            "watchdog_fires": self.watchdog_fires,
            "paths_pruned": self.paths_pruned,
            "solutions_invalidated": self.solutions_invalidated,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ResilienceReport":
        """Inverse of :meth:`to_dict` (lossless; used by repro.parallel)."""
        return cls(
            policy=str(data["policy"]),
            logical_packets=int(data["logical_packets"]),
            delivered=int(data["delivered"]),
            delivered_ratio=float(data["delivered_ratio"]),
            mttr_s=float(data["mttr_s"]),
            failures=int(data["failures"]),
            retransmissions=int(data["retransmissions"]),
            retransmission_overhead=float(data["retransmission_overhead"]),
            recovered=int(data["recovered"]),
            abandoned=int(data["abandoned"]),
            mean_recovery_latency_s=float(data["mean_recovery_latency_s"]),
            dropped_by_reason=dict(data.get("dropped_by_reason", {})),
            watchdog_fires=int(data.get("watchdog_fires", 0)),
            paths_pruned=int(data.get("paths_pruned", 0)),
            solutions_invalidated=int(data.get("solutions_invalidated", 0)),
        )


def resilience_report(fabric, transport=None, injector=None) -> ResilienceReport:
    """Assemble a :class:`ResilienceReport` from a finished run.

    ``transport`` and ``injector`` are optional: without a transport the
    ratio falls back to wire-level delivered/injected; without an
    injector MTTR is 0 (no faults were driven).
    """
    if transport is not None:
        logical = transport.logical_packets
        retransmissions = transport.retransmissions
        recovered = transport.recovered
        abandoned = transport.abandoned
        latencies = transport.recovery_latencies_s
    else:
        logical = fabric.data_packets_injected
        retransmissions = 0
        recovered = 0
        abandoned = 0
        latencies = []
    delivered = fabric.data_packets_delivered
    ratio = delivered / logical if logical else 1.0
    overhead = retransmissions / logical if logical else 0.0
    mean_recovery = (
        sum(latencies) / len(latencies) if latencies else 0.0
    )
    if injector is not None:
        mttr = injector.mttr_s()
        failures = injector.failures
    else:
        mttr = 0.0
        failures = 0
    stats = fabric.policy.stats()
    return ResilienceReport(
        policy=fabric.policy.name,
        logical_packets=logical,
        delivered=delivered,
        delivered_ratio=ratio,
        mttr_s=mttr,
        failures=failures,
        retransmissions=retransmissions,
        retransmission_overhead=overhead,
        recovered=recovered,
        abandoned=abandoned,
        mean_recovery_latency_s=mean_recovery,
        dropped_by_reason=dict(fabric.dropped_by_reason),
        watchdog_fires=int(stats.get("watchdog_fires", 0)),
        paths_pruned=int(stats.get("paths_pruned", 0)),
        solutions_invalidated=int(stats.get("solutions_invalidated", 0)),
    )


def render_reports(reports: list[ResilienceReport]) -> str:
    """Plain-text comparison table over several policies' reports."""
    header = (
        f"{'policy':<14} {'delivered':>9} {'ratio':>7} {'mttr_us':>8} "
        f"{'retx':>5} {'recovered':>9} {'abandoned':>9} {'rec_lat_us':>10}"
    )
    lines = [header, "-" * len(header)]
    for r in reports:
        mttr = "inf" if math.isinf(r.mttr_s) else f"{r.mttr_s * 1e6:.1f}"
        lines.append(
            f"{r.policy:<14} {r.delivered:>9} {r.delivered_ratio:>7.3f} "
            f"{mttr:>8} {r.retransmissions:>5} {r.recovered:>9} "
            f"{r.abandoned:>9} {r.mean_recovery_latency_s * 1e6:>10.1f}"
        )
    return "\n".join(lines)
