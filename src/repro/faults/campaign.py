"""Fault-injection campaign runner.

A *campaign* replays the reference small-mesh hot-spot workload (the
same one the seeded-replay harness digests) under a fault schedule —
transient link flaps on the primary route of the hottest flow plus
Bernoulli ACK loss — with the reliable transport installed, once per
routing policy.  Everything is driven from one root seed through named
:class:`~repro.sim.rng.RandomStreams`, and every run is digested with
the replay harness's event/metric SHA-256s, so campaigns are
bit-replayable and comparable across policies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.network.config import NetworkConfig, ReliabilityConfig

__all__ = [
    "FaultCampaignSpec",
    "FaultRunResult",
    "FaultScenarioContext",
    "build_fault_scenario",
    "finish_fault_scenario",
    "run_fault_scenario",
    "run_fault_campaign",
    "sweep_ack_loss",
]

#: the policies the acceptance campaign compares.
DEFAULT_POLICIES = ("deterministic", "drb", "pr-drb", "fr-drb")


@dataclass(frozen=True)
class FaultCampaignSpec:
    """Everything that defines one campaign (fully seeded)."""

    seed: int = 0
    mesh_side: int = 4
    repetitions: int = 3
    #: Bernoulli ACK/notification loss probability (0 disables).
    ack_loss: float = 0.1
    #: transient link-flap outage length, seconds (0 disables flaps).
    flap_duration_s: float = 2.0e-4
    #: offset of each flap into its burst, seconds.
    flap_offset_s: float = 2.0e-5
    #: use a stochastic MTBF/MTTR flap process instead of scheduled flaps.
    stochastic: bool = False
    mtbf_s: float = 3.0e-4
    mttr_s: float = 1.5e-4
    reliability: ReliabilityConfig = field(default_factory=ReliabilityConfig)
    notification: str = "router"

    def to_dict(self) -> dict:
        """JSON form matching the ``fault`` task kind of repro.parallel
        (``FaultCampaignSpec(**{... 'reliability': ReliabilityConfig(**r)})``
        reconstructs it exactly)."""
        from dataclasses import asdict

        data = asdict(self)
        data["reliability"] = asdict(self.reliability)
        return data


@dataclass(frozen=True)
class FaultRunResult:
    """One policy's run: digests + resilience report."""

    policy: str
    seed: int
    events_digest: str
    metrics_digest: str
    events_executed: int
    report: object  # ResilienceReport

    def to_dict(self) -> dict:
        return {
            "policy": self.policy,
            "seed": self.seed,
            "events_digest": self.events_digest,
            "metrics_digest": self.metrics_digest,
            "events_executed": self.events_executed,
            "report": self.report.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultRunResult":
        from repro.faults.metrics import ResilienceReport

        return cls(
            policy=str(data["policy"]),
            seed=int(data["seed"]),
            events_digest=str(data["events_digest"]),
            metrics_digest=str(data["metrics_digest"]),
            events_executed=int(data["events_executed"]),
            report=ResilienceReport.from_dict(data["report"]),
        )


def _fault_models(spec: FaultCampaignSpec, fabric, schedule):
    """Build the campaign's fault models against a concrete fabric."""
    from repro.faults.models import AckLoss, LinkFlap, StochasticLinkFlaps
    from repro.routing.deterministic import host_path
    from repro.traffic.generators import HotSpotFlow

    n = fabric.topology.num_hosts
    side = spec.mesh_side
    flows = [
        HotSpotFlow(0, n - side + 1),
        HotSpotFlow(side, n - side + 1),
        HotSpotFlow(1, n - 1),
    ]
    models = []
    if spec.stochastic:
        models.append(
            StochasticLinkFlaps(
                mtbf_s=spec.mtbf_s,
                mttr_s=spec.mttr_s,
                end_s=schedule.end_time(),
            )
        )
    elif spec.flap_duration_s > 0:
        # Flap the first router hop of the hottest flow's minimal route:
        # it is both the deterministic path and every metapath's MSP 0,
        # so all policies face the same fault and must recover from it.
        primary = host_path(fabric.topology, flows[0].src, flows[0].dst)
        period = schedule.on_s + schedule.off_s
        for burst in range(1, min(3, spec.repetitions)):
            models.append(
                LinkFlap(
                    primary[0],
                    primary[1],
                    at_s=burst * period + spec.flap_offset_s,
                    duration_s=spec.flap_duration_s,
                )
            )
    if spec.ack_loss > 0:
        models.append(AckLoss(drop_probability=spec.ack_loss))
    return flows, models


@dataclass
class FaultScenarioContext:
    """A fully built (possibly mid-run) fault scenario.

    Mirrors :class:`repro.analysis.replay.ScenarioContext`: holds every
    stateful root of a campaign run so the checkpoint layer can snapshot
    the whole object graph in one pickle image and resume it elsewhere.
    """

    policy: str
    spec: FaultCampaignSpec
    until: float
    sim: object
    streams: object
    trace: object
    recorder: object
    policy_obj: object
    fabric: object
    workload: object
    transport: object
    injector: object
    invariants: object = None

    def checkpoint_roots(self) -> dict:
        """Named roots for one-graph snapshotting (shared identities in
        the returned dict survive a single ``pickle.dumps``)."""
        return {
            "kind": "fault",
            "params": {"policy": self.policy, "spec": self.spec.to_dict()},
            "until": self.until,
            "sim": self.sim,
            "streams": self.streams,
            "trace": self.trace,
            "recorder": self.recorder,
            "policy_obj": self.policy_obj,
            "fabric": self.fabric,
            "workload": self.workload,
            "transport": self.transport,
            "injector": self.injector,
        }

    @classmethod
    def from_checkpoint_roots(cls, roots: dict) -> "FaultScenarioContext":
        params = roots["params"]
        spec_data = dict(params["spec"])
        spec_data["reliability"] = ReliabilityConfig(**spec_data["reliability"])
        return cls(
            policy=params["policy"],
            spec=FaultCampaignSpec(**spec_data),
            until=roots["until"],
            sim=roots["sim"],
            streams=roots["streams"],
            trace=roots["trace"],
            recorder=roots["recorder"],
            policy_obj=roots["policy_obj"],
            fabric=roots["fabric"],
            workload=roots["workload"],
            transport=roots["transport"],
            injector=roots["injector"],
        )


def build_fault_scenario(
    policy: str = "pr-drb",
    spec: FaultCampaignSpec | None = None,
    with_invariants: bool = False,
) -> FaultScenarioContext:
    """Construct one policy's campaign run without executing it.

    The construction order is load-bearing: every RNG draw and schedule
    call must happen exactly as the historical ``run_fault_scenario``
    body did, or the event digests shift.
    """
    from repro.analysis.replay import EventTraceDigest
    from repro.faults.injector import FaultInjector
    from repro.faults.recovery import ReliableTransport
    from repro.metrics.recorder import StatsRecorder
    from repro.network.fabric import Fabric
    from repro.routing import make_policy
    from repro.sim.engine import Simulator
    from repro.sim.rng import RandomStreams
    from repro.topology.mesh import Mesh2D
    from repro.traffic.bursty import BurstSchedule
    from repro.traffic.generators import HotSpotWorkload

    spec = spec or FaultCampaignSpec()
    streams = RandomStreams(spec.seed)
    sim = Simulator()
    trace = EventTraceDigest().install(sim)
    recorder = StatsRecorder(window_s=2.5e-5)
    try:
        policy_obj = make_policy(policy, rng=streams.stream("routing"))
    except TypeError:
        policy_obj = make_policy(policy)
    fabric = Fabric(
        Mesh2D(spec.mesh_side),
        NetworkConfig(),
        policy_obj,
        sim,
        recorder=recorder,
        notification=spec.notification,
    )
    transport = ReliableTransport(fabric, spec.reliability)
    injector = FaultInjector(fabric, rng=streams.stream("faults"))
    invariants = None
    if with_invariants:
        from repro.analysis.invariants import DebugInvariants

        invariants = DebugInvariants(fabric).install()

    schedule = BurstSchedule(
        on_s=1.5e-4, off_s=1.5e-4, repetitions=spec.repetitions
    )
    flows, models = _fault_models(spec, fabric, schedule)
    injector.apply(*models)
    stop = schedule.end_time()
    workload = HotSpotWorkload(
        fabric,
        flows,
        rate_bps=1.2e9,
        schedule=schedule,
        stop_s=stop,
        noise_hosts=range(fabric.topology.num_hosts),
        noise_rate_bps=3e7,
        rng=streams.stream("noise"),
        idle_rate_bps=2e8,
    )
    workload.start()
    # The drain window must outlast the last flap's repair plus the full
    # (capped) backoff ladder, so every pending packet either delivers or
    # is abandoned before the books are read.
    return FaultScenarioContext(
        policy=policy,
        spec=spec,
        until=stop + 2e-3,
        sim=sim,
        streams=streams,
        trace=trace,
        recorder=recorder,
        policy_obj=policy_obj,
        fabric=fabric,
        workload=workload,
        transport=transport,
        injector=injector,
        invariants=invariants,
    )


def finish_fault_scenario(context: FaultScenarioContext) -> FaultRunResult:
    """Digest and report a completed fault scenario."""
    from repro.analysis.replay import digest_metrics
    from repro.faults.metrics import resilience_report

    if context.invariants is not None:
        context.invariants.check()
    return FaultRunResult(
        policy=context.policy,
        seed=context.spec.seed,
        events_digest=context.trace.hexdigest(),
        metrics_digest=digest_metrics(
            context.fabric, context.recorder, context.policy_obj
        ),
        events_executed=context.sim.events_executed,
        report=resilience_report(
            context.fabric, context.transport, context.injector
        ),
    )


def run_fault_scenario(
    policy: str = "pr-drb",
    spec: FaultCampaignSpec | None = None,
    with_invariants: bool = False,
) -> FaultRunResult:
    """One policy's seeded run under the campaign's fault schedule."""
    context = build_fault_scenario(policy, spec, with_invariants)
    context.sim.run(until=context.until)
    return finish_fault_scenario(context)


def _fault_task(policy: str, spec: FaultCampaignSpec):
    from repro.parallel.tasks import SimTask

    return SimTask(
        kind="fault",
        params={"policy": policy, "spec": spec.to_dict()},
        label=f"fault:{policy}/seed{spec.seed}/loss{spec.ack_loss:g}",
    )


def run_fault_campaign(
    policies=DEFAULT_POLICIES,
    spec: FaultCampaignSpec | None = None,
    executor=None,
) -> dict[str, FaultRunResult]:
    """Run the campaign once per policy; same seed and fault schedule.

    ``executor`` (a :class:`repro.parallel.SweepExecutor`) runs the
    policies in worker processes; each cell rebuilds the campaign from
    its seeded spec, so results (including the event/metric digests) are
    bit-identical to the serial loop.
    """
    spec = spec or FaultCampaignSpec()
    if executor is not None and len(policies) > 1:
        payloads = executor.run_strict([_fault_task(p, spec) for p in policies])
        return {
            policy: FaultRunResult.from_dict(payload)
            for policy, payload in zip(policies, payloads)
        }
    return {policy: run_fault_scenario(policy, spec) for policy in policies}


def sweep_ack_loss(
    rates,
    policies=DEFAULT_POLICIES,
    spec: FaultCampaignSpec | None = None,
    executor=None,
) -> dict[float, dict[str, FaultRunResult]]:
    """Fault-rate sweep: one campaign per ACK-loss probability.

    With an ``executor`` the full rate x policy grid is submitted as one
    sweep, so all cells share the worker pool (and the result cache)
    instead of parallelizing only within each rate.
    """
    from dataclasses import replace

    spec = spec or FaultCampaignSpec()
    specs = {rate: replace(spec, ack_loss=rate) for rate in rates}
    if executor is not None and len(rates) * len(policies) > 1:
        grid = [(rate, policy) for rate in rates for policy in policies]
        payloads = executor.run_strict(
            [_fault_task(policy, specs[rate]) for rate, policy in grid]
        )
        results: dict[float, dict[str, FaultRunResult]] = {rate: {} for rate in rates}
        for (rate, policy), payload in zip(grid, payloads):
            results[rate][policy] = FaultRunResult.from_dict(payload)
        return results
    return {
        rate: run_fault_campaign(policies, specs[rate])
        for rate in rates
    }
