"""Fault injector: turns fault models into simulator events.

:class:`FaultInjector` owns the translation from declarative models
(:mod:`repro.faults.models`) to scheduled ``fail_link`` /
``restore_link`` / ``degrade_link`` calls and packet filters on one
fabric.  It also keeps the *fault log* — every transition with its
timestamp — and the repair *episodes* (fail -> restore pairs per link)
that the resilience metrics turn into MTTR.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import ClassVar

from repro.checkpoint.state import Snapshottable

__all__ = ["FaultEpisode", "FaultInjector"]


@dataclass
class FaultEpisode(Snapshottable):
    """One closed fail -> restore cycle of a link."""

    _snapshot_fields_: ClassVar[tuple[str, ...]] = (
        "link",
        "failed_at_s",
        "restored_at_s",
    )

    link: tuple[int, int]
    failed_at_s: float
    restored_at_s: float = field(default=math.inf)

    @property
    def closed(self) -> bool:
        return math.isfinite(self.restored_at_s)

    @property
    def outage_s(self) -> float:
        return self.restored_at_s - self.failed_at_s


class FaultInjector(Snapshottable):
    """Schedules fault events on a fabric and records what happened."""

    _snapshot_fields_: ClassVar[tuple[str, ...]] = (
        "fabric",
        "sim",
        "rng",
        "log",
        "episodes",
        "_open",
        "_filters",
    )

    def __init__(self, fabric, rng=None) -> None:
        self.fabric = fabric
        self.sim = fabric.sim
        self.rng = rng
        #: chronological (time, action, detail) records of every transition.
        self.log: list[tuple[float, str, str]] = []
        #: closed and still-open repair episodes, in failure order.
        self.episodes: list[FaultEpisode] = []
        self._open: dict[tuple[int, int], FaultEpisode] = {}
        self._filters: list = []

    # ------------------------------------------------------------------
    # Model application
    # ------------------------------------------------------------------
    def apply(self, *models) -> "FaultInjector":
        """Schedule every model's events; returns self for chaining."""
        for model in models:
            model.apply(self)
        return self

    def require_rng(self, who: str):
        if self.rng is None:
            raise ValueError(
                f"{who} is a stochastic fault model and needs the injector "
                "constructed with an injected rng (FaultInjector(fabric, rng=...))"
            )
        return self.rng

    def router_links(self) -> list[tuple[int, int]]:
        """All router-to-router links of the topology, canonically ordered."""
        topology = self.fabric.topology
        seen = set()
        links = []
        for router in range(topology.num_routers):
            for neighbor in sorted(topology.router_neighbors(router)):
                link = (min(router, neighbor), max(router, neighbor))
                if link not in seen:
                    seen.add(link)
                    links.append(link)
        return links

    # ------------------------------------------------------------------
    # Scheduling primitives (models call these)
    # ------------------------------------------------------------------
    def fail_link_at(self, at_s: float, a: int, b: int) -> None:
        self.sim.schedule_at(at_s, self._fail_link, a, b)

    def restore_link_at(self, at_s: float, a: int, b: int) -> None:
        self.sim.schedule_at(at_s, self._restore_link, a, b)

    def flap_link(self, a: int, b: int, at_s: float, duration_s: float) -> None:
        self.fail_link_at(at_s, a, b)
        self.restore_link_at(at_s + duration_s, a, b)

    def degrade_link_at(
        self, at_s: float, a: int, b: int, extra_delay_s: float,
        duration_s: float | None = None,
    ) -> None:
        self.sim.schedule_at(at_s, self._degrade_link, a, b, extra_delay_s)
        if duration_s is not None:
            self.sim.schedule_at(at_s + duration_s, self._restore_quality, a, b)

    def add_packet_filter(self, fn) -> None:
        """Register an injection-point filter (see ``Fabric.fault_filter``);
        the first filter returning an action wins."""
        self._filters.append(fn)
        self.fabric.fault_filter = self._filter

    # ------------------------------------------------------------------
    # Event callbacks
    # ------------------------------------------------------------------
    def _fail_link(self, a: int, b: int) -> None:
        link = (min(a, b), max(a, b))
        self.fabric.fail_link(a, b)
        self.log.append((self.sim.now, "fail", f"link {link[0]}-{link[1]}"))
        self._trace("fault.fail", link)
        if link not in self._open:
            episode = FaultEpisode(link=link, failed_at_s=self.sim.now)
            self._open[link] = episode
            self.episodes.append(episode)

    def _restore_link(self, a: int, b: int) -> None:
        link = (min(a, b), max(a, b))
        self.fabric.restore_link(a, b)
        self.log.append((self.sim.now, "restore", f"link {link[0]}-{link[1]}"))
        self._trace("fault.restore", link)
        episode = self._open.pop(link, None)
        if episode is not None:
            episode.restored_at_s = self.sim.now

    def _degrade_link(self, a: int, b: int, extra_delay_s: float) -> None:
        self.fabric.degrade_link(a, b, extra_delay_s)
        self.log.append(
            (self.sim.now, "degrade",
             f"link {min(a, b)}-{max(a, b)} +{extra_delay_s:.3e}s")
        )
        self._trace(
            "fault.degrade", (min(a, b), max(a, b)), extra_delay_s=extra_delay_s
        )

    def _restore_quality(self, a: int, b: int) -> None:
        self.fabric.restore_link_quality(a, b)
        self.log.append(
            (self.sim.now, "undegrade", f"link {min(a, b)}-{max(a, b)}")
        )
        self._trace("fault.undegrade", (min(a, b), max(a, b)))

    def _trace(self, name: str, link: tuple[int, int], **extra) -> None:
        tracer = self.fabric.tracer
        if tracer is not None:
            tracer.emit(
                self.sim.now,
                name,
                ("fabric", 0),
                args={"link": list(link), **extra},
            )

    def _filter(self, packet, now: float):
        for fn in self._filters:
            action = fn(packet, now)
            if action is not None:
                return action
        return None

    # ------------------------------------------------------------------
    # Repair accounting
    # ------------------------------------------------------------------
    @property
    def failures(self) -> int:
        return len(self.episodes)

    def mttr_s(self) -> float:
        """Mean time to repair over closed episodes.

        0.0 when no fault ever opened (nothing to repair); ``inf`` when
        failures happened but none were repaired (permanent kills).
        """
        closed = [e.outage_s for e in self.episodes if e.closed]
        if closed:
            return sum(closed) / len(closed)
        return math.inf if self.episodes else 0.0
