"""Text-mode visualization helpers.

The thesis presents latency *surface maps* (Fig. 4.7) and latency-vs-time
curves; this module renders both as plain text so examples, the CLI and
benchmark output stay dependency-free:

* :func:`ascii_surface` — a shaded character grid of a latency map;
* :func:`sparkline` — a one-line unicode chart of a time series;
* :func:`horizontal_bars` — labelled bar chart for policy comparisons.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

_SHADES = " .:-=+*#%@"
_SPARKS = "▁▂▃▄▅▆▇█"


def ascii_surface(surface: np.ndarray, flip_y: bool = True) -> str:
    """Render a 2-D array as a shaded character grid.

    Cell intensity is relative to the array's peak; ``flip_y`` puts row 0
    at the bottom (matching the mesh coordinate convention).
    """
    if surface.ndim != 2:
        raise ValueError("surface must be 2-D")
    peak = float(surface.max()) if surface.size else 0.0
    rows = surface[::-1] if flip_y else surface
    if peak <= 0:
        return "\n".join(" " * surface.shape[1] for _ in range(surface.shape[0]))
    lines = []
    for row in rows:
        lines.append(
            "".join(_SHADES[min(9, int(v / peak * 9.999))] for v in row)
        )
    return "\n".join(lines)


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """Compress a series into one line of block characters."""
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        return ""
    if data.size > width:
        # Window-average down to the requested width.
        edges = np.linspace(0, data.size, width + 1).astype(int)
        data = np.array(
            [data[a:b].mean() if b > a else data[min(a, data.size - 1)]
             for a, b in zip(edges, edges[1:])]
        )
    lo, hi = float(data.min()), float(data.max())
    if hi <= lo:
        return _SPARKS[0] * data.size
    scaled = (data - lo) / (hi - lo)
    return "".join(_SPARKS[min(7, int(v * 7.999))] for v in scaled)


def horizontal_bars(
    values: Mapping[str, float],
    width: int = 40,
    unit: str = "",
) -> str:
    """Labelled horizontal bar chart, longest bar = largest value."""
    if not values:
        return "(no data)"
    peak = max(values.values())
    label_w = max(len(k) for k in values)
    lines = []
    for name, value in values.items():
        bar = "#" * (int(value / peak * width) if peak > 0 else 0)
        lines.append(f"{name.ljust(label_w)}  {bar} {value:g}{unit}")
    return "\n".join(lines)
