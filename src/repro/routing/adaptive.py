"""Source-adaptive minimal routing (§2.1.4 adaptive class, Fig. 2.5).

A lightweight adaptive baseline: per injection, pick the candidate minimal
path whose routers currently show the lowest summed output-port backlog.
It reads live network state (like in-network adaptive routing) but decides
at the source (like the paper's source-routed MSP mechanism), making it a
fair state-aware non-learning comparator for DRB.
"""

from __future__ import annotations

from typing import ClassVar

from repro.routing.base import RoutingPolicy
from repro.topology.base import Path


class InNetworkAdaptivePolicy(RoutingPolicy):
    """True per-hop minimal adaptive routing (§2.1.5's ascending phase).

    Each router picks, among the neighbours that lie on *some* minimal
    path to the destination, the one whose output port frees earliest.
    The fabric grows the packet's route hop by hop; this policy only
    provides the first router.
    """

    name = "adaptive-hop"
    wants_acks = False
    #: tells the fabric to route data packets hop by hop.
    per_hop = True

    def select_path(self, src: int, dst: int, size_bytes: int, now: float) -> tuple[Path, int]:
        return (self.topology.host_router(src),), 0


class SourceAdaptivePolicy(RoutingPolicy):
    """Least-backlog choice among alternative minimal paths."""

    name = "adaptive"
    wants_acks = False

    _snapshot_fields_: ClassVar[tuple[str, ...]] = ("max_paths", "_candidates")

    def __init__(self, max_paths: int = 4) -> None:
        super().__init__()
        self.max_paths = max_paths
        self._candidates: dict[tuple[int, int], list[Path]] = {}

    def _paths(self, src: int, dst: int) -> list[Path]:
        key = (src, dst)
        paths = self._candidates.get(key)
        if paths is None:
            paths = self.topology.alternative_paths(src, dst, self.max_paths)
            self._candidates[key] = paths
        return paths

    def _path_backlog(self, path: Path, now: float) -> float:
        """Total pending service time along ``path``'s routers."""
        backlog = 0.0
        routers = self.fabric.routers
        for a, b in zip(path, path[1:]):
            port = routers[a].ports.get(("router", b))
            if port is not None:
                backlog += max(0.0, port.busy_until - now)
        return backlog

    def select_path(self, src: int, dst: int, size_bytes: int, now: float) -> tuple[Path, int]:
        paths = self._paths(src, dst)
        if len(paths) == 1:
            return paths[0], 0
        best_idx = 0
        best_cost = None
        for idx, path in enumerate(paths):
            # Backlog plus a hop-count tie-breaker favouring short paths.
            cost = (self._path_backlog(path, now), len(path))
            if best_cost is None or cost < best_cost:
                best_cost = cost
                best_idx = idx
        return paths[best_idx], best_idx
