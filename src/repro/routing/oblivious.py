"""Oblivious routing baselines (§2.1.4; POP evaluation §4.8.4).

*Random* draws uniformly among the pair's alternative minimal paths on
every injection; *cyclic* (the paper's cyclic-priority algorithm) rotates
through them round-robin.  Neither consults network state.
"""

from __future__ import annotations

from typing import ClassVar

import numpy as np

from repro.routing.base import RoutingPolicy
from repro.sim.rng import seeded_generator
from repro.topology.base import Path


class _MultipathOblivious(RoutingPolicy):
    """Shared machinery: a fixed candidate path set per pair."""

    wants_acks = False

    _snapshot_fields_: ClassVar[tuple[str, ...]] = (
        "max_paths",
        "_rng",
        "_candidates",
    )

    def __init__(
        self,
        max_paths: int = 4,
        seed: int = 0,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        self.max_paths = max_paths
        self._rng = rng if rng is not None else seeded_generator(seed)
        self._candidates: dict[tuple[int, int], list[Path]] = {}

    def _paths(self, src: int, dst: int) -> list[Path]:
        key = (src, dst)
        paths = self._candidates.get(key)
        if paths is None:
            paths = self.topology.alternative_paths(src, dst, self.max_paths)
            self._candidates[key] = paths
        return paths


class RandomPolicy(_MultipathOblivious):
    """Uniform random choice among alternative paths per injection."""

    name = "random"

    def select_path(self, src: int, dst: int, size_bytes: int, now: float) -> tuple[Path, int]:
        paths = self._paths(src, dst)
        idx = int(self._rng.integers(len(paths)))
        return paths[idx], idx


class CyclicPolicy(_MultipathOblivious):
    """Round-robin rotation among alternative paths per injection."""

    name = "cyclic"

    _snapshot_fields_: ClassVar[tuple[str, ...]] = ("_next",)

    def __init__(
        self,
        max_paths: int = 4,
        seed: int = 0,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(max_paths=max_paths, seed=seed, rng=rng)
        self._next: dict[tuple[int, int], int] = {}

    def select_path(self, src: int, dst: int, size_bytes: int, now: float) -> tuple[Path, int]:
        paths = self._paths(src, dst)
        key = (src, dst)
        idx = self._next.get(key, 0) % len(paths)
        self._next[key] = idx + 1
        return paths[idx], idx
