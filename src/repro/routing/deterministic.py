"""Deterministic minimal routing (§2.1.4 taxonomy; evaluation baseline).

Always the same minimal path per source-destination pair: dimension-order
on meshes/tori, destination-digit up/down on k-ary n-trees.
"""

from __future__ import annotations

from typing import ClassVar

from repro.routing.base import RoutingPolicy
from repro.topology.base import Path


def host_path(topology, src: int, dst: int) -> Path:
    """Deterministic host-to-host router path on any topology."""
    route = getattr(topology, "host_minimal_route", None)
    if route is not None:
        return route(src, dst)
    return topology.minimal_route(
        topology.host_router(src), topology.host_router(dst)
    )


class DeterministicPolicy(RoutingPolicy):
    """Single fixed minimal path per pair; no ACK feedback."""

    name = "deterministic"
    wants_acks = False

    _snapshot_fields_: ClassVar[tuple[str, ...]] = ("_cache",)

    def __init__(self) -> None:
        super().__init__()
        self._cache: dict[tuple[int, int], Path] = {}

    def select_path(self, src: int, dst: int, size_bytes: int, now: float) -> tuple[Path, int]:
        key = (src, dst)
        path = self._cache.get(key)
        if path is None:
            path = host_path(self.topology, src, dst)
            self._cache[key] = path
        return path, 0
