"""Notification-driven adaptive routing family (ROADMAP item 1).

Two policies that consume the fabric's router-based congestion
notifications (§3.4.1's PREDICTIVE_ACK path) instead of the DRB
family's smoothed ACK latencies:

* :class:`NotifiedAdaptivePolicy` — ARN-style (arXiv:2502.00616):
  escalate a (source zone, destination zone) pair from minimal to
  Valiant routing when a router reports congestion, decay back after a
  quiet hold;
* :class:`UGALPolicy` — the UGAL queue-occupancy baseline: minimal vs
  sampled-Valiant by hop-weighted local backlog, no notifications.

Both self-register with :mod:`repro.routing.registry`, so spec strings
like ``"notified-adaptive:hold_s=0.0005"`` work anywhere a policy name
does.
"""

from repro.routing.notified.arn import NotifiedAdaptivePolicy, NotifiedConfig
from repro.routing.notified.ugal import UGALConfig, UGALPolicy
from repro.routing.registry import config_factory, register

register(
    "notified-adaptive",
    config_factory(NotifiedAdaptivePolicy, NotifiedConfig),
    aliases=("arn", "notified"),
)
register("ugal", config_factory(UGALPolicy, UGALConfig))

__all__ = [
    "NotifiedAdaptivePolicy",
    "NotifiedConfig",
    "UGALConfig",
    "UGALPolicy",
]
