"""UGAL-like queue-occupancy routing (Singh'05; arXiv:1909.07865 §II-B).

The Universal Globally-Adaptive Load-balanced baseline the dragonfly
literature measures against: at every injection, compare the minimal
path against one randomly sampled Valiant candidate and take whichever
has the smaller hop-weighted queue backlog.  No notifications, no
learning — the decision reads the *local* port queues only, which makes
it the natural control for the notified-adaptive policy (same candidate
paths, different congestion signal).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

import numpy as np

from repro.routing.base import RoutingPolicy
from repro.sim.rng import seeded_generator
from repro.topology.base import Path


@dataclass
class UGALConfig:
    """Tunables of the UGAL baseline."""

    #: candidate paths per pair, minimal included.
    max_paths: int = 4
    #: RNG seed for the Valiant candidate draw.
    seed: int = 0


class UGALPolicy(RoutingPolicy):
    """Minimal vs sampled-Valiant choice by hop-weighted queue backlog."""

    name = "ugal"
    wants_acks = False

    _snapshot_fields_: ClassVar[tuple[str, ...]] = (
        "config",
        "_rng",
        "_candidates",
        "minimal_routed",
        "valiant_routed",
    )

    def __init__(
        self,
        config: UGALConfig | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        self.config = config or UGALConfig()
        self._rng = rng if rng is not None else seeded_generator(self.config.seed)
        self._candidates: dict[tuple[int, int], list[Path]] = {}
        self.minimal_routed = 0
        self.valiant_routed = 0

    def _paths(self, src: int, dst: int) -> list[Path]:
        key = (src, dst)
        paths = self._candidates.get(key)
        if paths is None:
            paths = self.topology.alternative_paths(src, dst, self.config.max_paths)
            self._candidates[key] = paths
        return paths

    def _path_backlog(self, path: Path, now: float) -> float:
        """Total pending service time along ``path``'s output ports."""
        backlog = 0.0
        routers = self.fabric.routers
        for a, b in zip(path, path[1:]):
            port = routers[a].ports.get(("router", b))
            if port is not None:
                backlog += max(0.0, port.busy_until - now)
        return backlog

    def select_path(self, src: int, dst: int, size_bytes: int, now: float) -> tuple[Path, int]:
        paths = self._paths(src, dst)
        if len(paths) == 1:
            self.minimal_routed += 1
            return paths[0], 0
        # UGAL rule: route minimally unless q_min * H_min > q_val * H_val
        # for a uniformly sampled Valiant candidate.
        idx = 1 + int(self._rng.integers(len(paths) - 1))
        minimal, valiant = paths[0], paths[idx]
        cost_min = self._path_backlog(minimal, now) * (len(minimal) - 1)
        cost_val = self._path_backlog(valiant, now) * (len(valiant) - 1)
        if cost_val < cost_min:
            self.valiant_routed += 1
            return valiant, idx
        self.minimal_routed += 1
        return minimal, 0

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        return {
            "policy": self.name,
            "pairs": len(self._candidates),
            "minimal_routed": self.minimal_routed,
            "valiant_routed": self.valiant_routed,
        }
