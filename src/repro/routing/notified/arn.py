"""ARN-style notified-adaptive routing (arXiv:2502.00616).

Adaptive Routing Notifications invert the DRB family's learning loop:
instead of smoothing per-MSP ACK latencies, the *congested router* tells
the sources feeding it to get out of the way, and the source reacts by
escalating the whole (source zone, destination zone) pair from minimal
to Valiant routing.  When the notifications stop, the pair decays back
to minimal after a quiet hold — the decay doubles as the watchdog that
keeps the policy live when notification packets are lost or delayed
(:mod:`repro.faults` ACK-loss models drop PREDICTIVE_ACKs too).

Zones are dragonfly groups when the topology has them (the escalation
unit of the ARN paper) and plain routers otherwise, so the policy also
runs on meshes and trees, where ``alternative_paths`` element 0 is the
minimal path and the rest stand in for Valiant detours.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

import numpy as np

from repro.checkpoint.state import Snapshottable
from repro.core.thresholds import Zone
from repro.network.packet import ContendingFlow, Packet
from repro.routing.base import RoutingPolicy
from repro.sim.rng import named_generator, seeded_generator
from repro.topology.base import Path


@dataclass
class NotifiedConfig:
    """Tunables of the notified-adaptive policy."""

    #: candidate paths per pair, minimal included (dragonfly Valiant
    #: detours, generic MSP alternatives elsewhere).
    max_paths: int = 4
    #: seconds after the last notification before a pair decays back to
    #: minimal routing.  Doubles as the loss watchdog: a pair can never
    #: stay escalated longer than this past the last *delivered*
    #: notification, no matter how many were dropped.
    hold_s: float = 200e-6
    #: RNG seed for the Valiant detour draw.
    seed: int = 0
    #: draw each (src, dst) pair's Valiant detour from a per-flow stream
    #: derived from ``(seed, "valiant:src:dst")`` instead of one shared
    #: generator.  Required for sharded runs, where a shared stream's
    #: draw order would interleave across shards (docs/sharding.md).
    flow_seeded: bool = False


class PairZoneState(Snapshottable):
    """Escalation state of one (source zone, destination zone) pair."""

    _snapshot_fields_: ClassVar[tuple[str, ...]] = (
        "escalated",
        "last_notify",
        "notifications",
    )

    __slots__ = ("escalated", "last_notify", "notifications")

    def __init__(self) -> None:
        self.escalated = False
        self.last_notify = -1.0
        self.notifications = 0


class NotifiedAdaptivePolicy(RoutingPolicy):
    """Escalate minimal -> Valiant per zone pair on router notification."""

    name = "notified-adaptive"
    #: router-based notification only fires for ACK-consuming policies
    #: (``Fabric._router_congestion`` gates on this).
    wants_acks = True

    _snapshot_fields_: ClassVar[tuple[str, ...]] = (
        "config",
        "_rng",
        "_flow_rngs",
        "pairs",
        "_candidates",
        "escalations",
        "reversions",
        "notifications",
        "minimal_routed",
        "valiant_routed",
    )

    def __init__(
        self,
        config: NotifiedConfig | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        self.config = config or NotifiedConfig()
        self._rng = rng if rng is not None else seeded_generator(self.config.seed)
        #: (src, dst) -> per-flow Valiant stream (``flow_seeded`` mode).
        self._flow_rngs: dict[tuple[int, int], np.random.Generator] = {}
        #: (src zone, dst zone) -> escalation state.
        self.pairs: dict[tuple[int, int], PairZoneState] = {}
        self._candidates: dict[tuple[int, int], list[Path]] = {}
        self.escalations = 0
        self.reversions = 0
        self.notifications = 0
        self.minimal_routed = 0
        self.valiant_routed = 0

    # ------------------------------------------------------------------
    # Zone mapping
    # ------------------------------------------------------------------
    def _zone_of_host(self, host: int) -> int:
        topo = self.topology
        group_of = getattr(topo, "group_of", None)
        router = topo.host_router(host)
        if group_of is not None:
            return group_of(router)
        return router

    def _pair_key(self, src: int, dst: int) -> tuple[int, int]:
        return (self._zone_of_host(src), self._zone_of_host(dst))

    def _pair(self, key: tuple[int, int]) -> PairZoneState:
        st = self.pairs.get(key)
        if st is None:
            st = self.pairs[key] = PairZoneState()
        return st

    def _flow_rng(self, src: int, dst: int) -> np.random.Generator:
        """The Valiant draw stream: shared, or per-flow when flow-seeded."""
        if not self.config.flow_seeded:
            return self._rng
        rng = self._flow_rngs.get((src, dst))
        if rng is None:
            rng = named_generator(self.config.seed, f"valiant:{src}:{dst}")
            self._flow_rngs[(src, dst)] = rng
        return rng

    def _paths(self, src: int, dst: int) -> list[Path]:
        key = (src, dst)
        paths = self._candidates.get(key)
        if paths is None:
            paths = self.topology.alternative_paths(src, dst, self.config.max_paths)
            self._candidates[key] = paths
        return paths

    # ------------------------------------------------------------------
    # Injection side
    # ------------------------------------------------------------------
    def select_path(self, src: int, dst: int, size_bytes: int, now: float) -> tuple[Path, int]:
        key = self._pair_key(src, dst)
        st = self._pair(key)
        if st.escalated and now - st.last_notify > self.config.hold_s:
            # Quiet hold elapsed: the congestion the routers shouted
            # about is gone (or the notifications are — either way
            # minimal routing is the right default again).
            st.escalated = False
            self.reversions += 1
            if self.tracer is not None:
                self.tracer.emit(
                    now,
                    "zone.transition",
                    ("pair", f"{key[0]}-{key[1]}"),
                    args={
                        "from": Zone.HIGH.value,
                        "to": Zone.LOW.value,
                        "cause": "quiet",
                    },
                )
        paths = self._paths(src, dst)
        if st.escalated and len(paths) > 1:
            idx = 1 + int(self._flow_rng(src, dst).integers(len(paths) - 1))
            self.valiant_routed += 1
        else:
            idx = 0
            self.minimal_routed += 1
        return paths[idx], idx

    # ------------------------------------------------------------------
    # Notification side
    # ------------------------------------------------------------------
    def _escalate(self, target_src: int, flows: list[ContendingFlow], now: float) -> None:
        """Escalate every pair of ours named in a congestion report.

        ``target_src`` is the host the notification was addressed to; the
        report's contending list tells us *which* of its destinations sit
        behind the congested port.
        """
        for flow in flows:
            if flow.src != target_src:
                continue
            key = self._pair_key(flow.src, flow.dst)
            st = self._pair(key)
            st.notifications += 1
            st.last_notify = now
            if not st.escalated:
                st.escalated = True
                self.escalations += 1
                if self.tracer is not None:
                    self.tracer.emit(
                        now,
                        "zone.transition",
                        ("pair", f"{key[0]}-{key[1]}"),
                        args={
                            "from": Zone.LOW.value,
                            "to": Zone.HIGH.value,
                            "cause": "notify",
                        },
                    )

    def on_predictive_ack(self, pack: Packet, now: float) -> None:
        self.notifications += 1
        self._escalate(pack.dst, pack.contending, now)

    def on_ack(self, ack: Packet, now: float) -> None:
        # Destination-based notification: contending flows ride the ACK
        # home (§3.2.2), so the policy also works without router support.
        if ack.contending:
            self.notifications += 1
            self._escalate(ack.dst, ack.contending, now)

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        return {
            "policy": self.name,
            "pairs": len(self.pairs),
            "escalations": self.escalations,
            "reversions": self.reversions,
            "notifications": self.notifications,
            "minimal_routed": self.minimal_routed,
            "valiant_routed": self.valiant_routed,
        }
