"""Routing policies (§2.1.4 taxonomy; Chapter 3 for the DRB family).

Baselines: deterministic minimal, oblivious random/cyclic, source-adaptive.
Contribution: DRB, PR-DRB (predictive), FR-DRB (fast response) and the
predictive FR-DRB — all source-routed multipath policies balancing traffic
over a metapath of multistep paths.
"""

from repro.routing.base import RoutingPolicy
from repro.routing.deterministic import DeterministicPolicy
from repro.routing.oblivious import RandomPolicy, CyclicPolicy
from repro.routing.adaptive import InNetworkAdaptivePolicy, SourceAdaptivePolicy
from repro.routing.drb import DRBPolicy
from repro.routing.prdrb import PRDRBPolicy
from repro.routing.frdrb import FRDRBPolicy

__all__ = [
    "RoutingPolicy",
    "DeterministicPolicy",
    "RandomPolicy",
    "CyclicPolicy",
    "SourceAdaptivePolicy",
    "InNetworkAdaptivePolicy",
    "DRBPolicy",
    "PRDRBPolicy",
    "FRDRBPolicy",
    "make_policy",
]


def make_policy(name: str, **kwargs) -> RoutingPolicy:
    """Factory used by the experiment harness.

    Recognized names: ``deterministic``, ``random``, ``cyclic``,
    ``adaptive``, ``adaptive-hop``, ``drb``, ``pr-drb``, ``fr-drb``, ``pr-fr-drb``.
    """
    name = name.lower()
    if name == "deterministic":
        return DeterministicPolicy()
    if name == "random":
        return RandomPolicy(**kwargs)
    if name == "cyclic":
        return CyclicPolicy(**kwargs)
    if name == "adaptive":
        return SourceAdaptivePolicy(**kwargs)
    if name in ("adaptive-hop", "inadaptive"):
        return InNetworkAdaptivePolicy(**kwargs)
    if name == "drb":
        return DRBPolicy(**kwargs)
    if name in ("pr-drb", "prdrb"):
        return PRDRBPolicy(**kwargs)
    if name in ("fr-drb", "frdrb"):
        return FRDRBPolicy(predictive=False, **kwargs)
    if name in ("pr-fr-drb", "predictive-fr-drb"):
        return FRDRBPolicy(predictive=True, **kwargs)
    raise ValueError(f"unknown routing policy {name!r}")
