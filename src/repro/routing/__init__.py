"""Routing policies (§2.1.4 taxonomy; Chapter 3 for the DRB family).

Baselines: deterministic minimal, oblivious random/cyclic, source-adaptive.
Contribution: DRB, PR-DRB (predictive), FR-DRB (fast response) and the
predictive FR-DRB — all source-routed multipath policies balancing traffic
over a metapath of multistep paths.  The notified family
(:mod:`repro.routing.notified`) adds ARN-style escalation and a UGAL
baseline on top of the router-based notification path.

Policies resolve through a declarative registry
(:mod:`repro.routing.registry`): :func:`make_policy` accepts a
registered name or a ``"name:key=val,..."`` spec string, and
:func:`register` lets new policies hook in without touching this module.
"""

from repro.routing.base import RoutingPolicy
from repro.routing.deterministic import DeterministicPolicy
from repro.routing.oblivious import RandomPolicy, CyclicPolicy
from repro.routing.adaptive import InNetworkAdaptivePolicy, SourceAdaptivePolicy
from repro.routing.drb import DRBConfig, DRBPolicy
from repro.routing.prdrb import PRDRBConfig, PRDRBPolicy
from repro.routing.frdrb import FRDRBConfig, FRDRBPolicy
from repro.routing.registry import (
    config_factory,
    make_policy,
    parse_policy_spec,
    register,
    registered_policies,
)
from repro.routing.notified import (
    NotifiedAdaptivePolicy,
    NotifiedConfig,
    UGALConfig,
    UGALPolicy,
)

__all__ = [
    "RoutingPolicy",
    "DeterministicPolicy",
    "RandomPolicy",
    "CyclicPolicy",
    "SourceAdaptivePolicy",
    "InNetworkAdaptivePolicy",
    "DRBPolicy",
    "PRDRBPolicy",
    "FRDRBPolicy",
    "NotifiedAdaptivePolicy",
    "UGALPolicy",
    "config_factory",
    "make_policy",
    "parse_policy_spec",
    "register",
    "registered_policies",
]

register("deterministic", DeterministicPolicy)
register("random", RandomPolicy)
register("cyclic", CyclicPolicy)
register("adaptive", SourceAdaptivePolicy)
register("adaptive-hop", InNetworkAdaptivePolicy, aliases=("inadaptive",))
register("drb", config_factory(DRBPolicy, DRBConfig))
register("pr-drb", config_factory(PRDRBPolicy, PRDRBConfig), aliases=("prdrb",))
register(
    "fr-drb",
    config_factory(FRDRBPolicy, FRDRBConfig, predictive=False),
    aliases=("frdrb",),
)
register(
    "pr-fr-drb",
    config_factory(FRDRBPolicy, FRDRBConfig, predictive=True),
    aliases=("predictive-fr-drb",),
)
