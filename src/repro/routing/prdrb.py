"""Predictive and Distributed Routing Balancing — PR-DRB (Chapter 3).

PR-DRB layers the predictive procedures (§3.2.6) on DRB:

* every flow accumulates the contending-flow reports arriving with ACKs
  (or router-injected predictive ACKs) into a congestion *signature*;
* on entering the **H** zone, the per-flow solution database is consulted
  (Fig. 3.10): a >= 80 %-similar saved pattern re-applies its whole path
  set at once — otherwise the flow falls back to DRB's gradual opening and
  starts a *learning episode*;
* when congestion is controlled (H -> M/L) the episode's signature and the
  path set that tamed it are saved/updated as the best known solution
  (Fig. 3.14).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

from repro.core.solutions import SolutionDatabase
from repro.core.thresholds import Zone
from repro.core.trend import TrendDetector
from repro.network.packet import DATA, Packet
from repro.routing.drb import DRBConfig, DRBPolicy, FlowState


@dataclass
class PRDRBConfig(DRBConfig):
    """DRB tunables plus the predictive-module knobs."""

    #: minimum signature similarity for reusing a saved solution (paper: 0.8).
    match_threshold: float = 0.8
    #: enable the §5.2 latency-trend extension: trigger the predictive
    #: procedures when the projected latency will cross Threshold_High,
    #: before it actually does.
    trend_detection: bool = False
    #: sliding-window length for the trend fit.
    trend_window: int = 8
    #: projection horizon, seconds (roughly one notification round-trip).
    trend_lead_s: float = 100e-6


class PRDRBPolicy(DRBPolicy):
    """DRB + congestion-pattern learning and solution reuse."""

    name = "pr-drb"

    _snapshot_fields_: ClassVar[tuple[str, ...]] = (
        "databases",
        "trends",
        "solutions_applied",
        "solutions_saved",
        "trend_triggers",
        "solutions_invalidated",
        "solutions_missed",
    )

    def __init__(
        self,
        config: PRDRBConfig | None = None,
        rng=None,
    ) -> None:
        super().__init__(config or PRDRBConfig(), rng=rng)
        self.databases: dict[tuple[int, int], SolutionDatabase] = {}
        #: per-flow latency-trend detectors (only when trend_detection).
        self.trends: dict[tuple[int, int], TrendDetector] = {}
        # Predictive counters (Figs 4.26 / 4.28 report these).
        self.solutions_applied = 0
        self.solutions_saved = 0
        self.trend_triggers = 0
        self.solutions_invalidated = 0
        #: database consultations that found no reusable solution.
        #: Observability-only (repro.obs hit-rate reporting) — deliberately
        #: absent from :meth:`stats`/:meth:`pattern_stats`, whose keys are
        #: frozen into the replay metric digests.
        self.solutions_missed = 0

    # ------------------------------------------------------------------
    def database(self, src: int, dst: int) -> SolutionDatabase:
        key = (src, dst)
        db = self.databases.get(key)
        if db is None:
            db = SolutionDatabase(match_threshold=self.config.match_threshold)
            self.databases[key] = db
        return db

    # ------------------------------------------------------------------
    # Predictive congestion handling (Fig. 3.10 / §3.2.6)
    # ------------------------------------------------------------------
    def _on_congestion(self, fs: FlowState, now: float) -> bool:
        signature = self.current_signature(fs, now)
        fs.learning_signature = signature if signature else None
        if signature:
            solution = self.database(fs.src, fs.dst).lookup(signature)
            if solution is not None:
                fs.metapath.apply_solution(solution.path_indices)
                self.solutions_applied += 1
                if self.tracer is not None:
                    self.tracer.emit(
                        now,
                        "prediction.hit",
                        ("flow", f"{fs.src}-{fs.dst}"),
                        args={
                            "paths": len(solution.path_indices),
                            "flows": len(signature),
                        },
                    )
                return True
            self.solutions_missed += 1
            if self.tracer is not None:
                self.tracer.emit(
                    now,
                    "prediction.miss",
                    ("flow", f"{fs.src}-{fs.dst}"),
                    args={"flows": len(signature)},
                )
        # Unknown pattern: fall back to DRB's gradual opening and learn.
        return super()._on_congestion(fs, now)

    def _on_controlled(self, fs: FlowState, now: float) -> None:
        # A solution is only worth remembering when alternative paths are
        # actually open; a bare original path re-applied on recurrence
        # would suppress the expansion the congestion needs.
        if fs.learning_signature and len(fs.metapath.active_indices) > 1:
            # Merit = how fast this configuration turned the latency curve
            # around (episode duration), not the latency at the crossing.
            duration = (
                now - fs.high_entry_time if fs.high_entry_time >= 0 else 0.0
            )
            self.database(fs.src, fs.dst).save(
                fs.learning_signature,
                fs.metapath.active_indices,
                duration,
            )
            self.solutions_saved += 1
            if self.tracer is not None:
                self.tracer.emit(
                    now,
                    "prediction.save",
                    ("flow", f"{fs.src}-{fs.dst}"),
                    args={
                        "duration_s": duration,
                        "paths": len(fs.metapath.active_indices),
                    },
                )
        fs.learning_signature = None

    # ------------------------------------------------------------------
    # Fault reaction: saved solutions must not re-open dead paths
    # ------------------------------------------------------------------
    def on_drop(self, packet: Packet, reason: str, now: float) -> None:
        super().on_drop(packet, reason, now)
        if packet.kind != DATA or not self.fabric.failed_links:
            return
        key = (packet.src, packet.dst)
        db = self.databases.get(key)
        fs = self.flows.get(key)
        if db is None or fs is None or not db.solutions:
            return
        metapath = fs.metapath
        invalidated = db.invalidate(
            lambda i: self.fabric.path_alive(metapath.path_for(i))
        )
        self.solutions_invalidated += invalidated
        if self.tracer is not None and invalidated:
            self.tracer.emit(
                now,
                "prediction.invalidate",
                ("flow", f"{packet.src}-{packet.dst}"),
                args={"count": invalidated, "reason": reason},
            )

    # ------------------------------------------------------------------
    # Notification-triggered speculation
    # ------------------------------------------------------------------
    def on_ack(self, ack: Packet, now: float) -> None:
        """Destination-based notification (§3.2.2).

        An ACK carrying a predictive header means a router flagged this
        flow as congested — that *is* the congestion notification, so the
        speculative reaction fires immediately instead of waiting for the
        smoothed metapath latency to cross Threshold_High.
        """
        had_contending = bool(ack.contending)
        super().on_ack(ack, now)
        fs = self.flow_state(ack.dst, ack.src)
        trigger = had_contending
        if self.config.trend_detection and not trigger:
            trigger = self._trend_predicts_congestion(fs, now)
        if not trigger:
            return
        if fs.zone is Zone.HIGH:
            return  # the regular FSM already handled it
        if now - fs.last_reconfig < self.config.reconfig_cooldown_s:
            return
        if self.tracer is not None:
            self.tracer.emit(
                now,
                "zone.transition",
                ("flow", f"{fs.src}-{fs.dst}"),
                args={"from": fs.zone.value, "to": Zone.HIGH.value, "cause": "ack"},
            )
        fs.zone = Zone.HIGH
        fs.high_entry_time = now
        fs.pending_high_entry = False
        if self._on_congestion(fs, now):
            fs.last_reconfig = now

    def _trend_predicts_congestion(self, fs, now: float) -> bool:
        """§5.2 extension: will the latency trend cross Threshold_High?"""
        key = (fs.src, fs.dst)
        trend = self.trends.get(key)
        if trend is None:
            trend = TrendDetector(window=self.config.trend_window)
            self.trends[key] = trend
        trend.add(now, fs.metapath.latency_s())
        if not trend.ready or trend.slope() <= 0:
            return False
        if trend.projected(self.config.trend_lead_s) > fs.thresholds.high_s:
            self.trend_triggers += 1
            return True
        return False

    # ------------------------------------------------------------------
    # Router-based early notification (§3.4.1)
    # ------------------------------------------------------------------
    def on_predictive_ack(self, pack: Packet, now: float) -> None:
        """React to a router-injected notification before any data ACK.

        The packet names the flows contending at the congested router; the
        ones this source originates get immediate congestion handling —
        the speculative part of PR-DRB.
        """
        mine = [f for f in pack.contending if f.src == pack.dst and f.dst != f.src]
        for flow in mine:
            fs = self.flow_state(flow.src, flow.dst)
            self._merge_contending(fs, pack.contending, now)
            if now - fs.last_reconfig < self.config.reconfig_cooldown_s:
                continue
            if fs.zone is not Zone.HIGH:
                fs.high_entry_time = now
                if self.tracer is not None:
                    self.tracer.emit(
                        now,
                        "zone.transition",
                        ("flow", f"{fs.src}-{fs.dst}"),
                        args={
                            "from": fs.zone.value,
                            "to": Zone.HIGH.value,
                            "cause": "predictive_ack",
                        },
                    )
            fs.zone = Zone.HIGH
            fs.pending_high_entry = False
            if self._on_congestion(fs, now):
                fs.last_reconfig = now

    # ------------------------------------------------------------------
    # Warm start — the paper's "static variation" (§5.2): routers may be
    # given offline meta-information about known congestion patterns so
    # the very first occurrence is already handled predictively.
    # ------------------------------------------------------------------
    def export_solutions(self) -> dict:
        """Serialize every flow's solution database (JSON-ready)."""
        return {
            f"{src}-{dst}": db.to_dict()
            for (src, dst), db in self.databases.items()
            if db.solutions
        }

    def import_solutions(self, data: dict) -> int:
        """Pre-load solution databases; returns the pattern count loaded."""
        loaded = 0
        for key, encoded in data.items():
            src_str, _, dst_str = key.partition("-")
            db = SolutionDatabase.from_dict(encoded)
            self.databases[(int(src_str), int(dst_str))] = db
            loaded += db.patterns_learned
        return loaded

    # ------------------------------------------------------------------
    def pattern_stats(self) -> dict:
        """Aggregate solution-database statistics across all flows."""
        learned = sum(db.patterns_learned for db in self.databases.values())
        reapplied = sum(db.patterns_reapplied for db in self.databases.values())
        reuses = sum(db.total_reuses for db in self.databases.values())
        return {
            "patterns_learned": learned,
            "patterns_reapplied": reapplied,
            "total_reuses": reuses,
            "solutions_applied": self.solutions_applied,
            "solutions_saved": self.solutions_saved,
            "trend_triggers": self.trend_triggers,
            "solutions_invalidated": self.solutions_invalidated,
        }

    def stats(self) -> dict:
        out = super().stats()
        out.update(self.pattern_stats())
        return out
