"""Fast-Response DRB (FR-DRB) and its predictive variant (§4.8.4).

FR-DRB adds a watchdog timer: when a flow has outstanding packets and no
ACK has arrived within the timeout, congestion is assumed and path opening
starts *without* waiting for the notification round-trip.  The thesis uses
FR-DRB to show PR-DRB's modularity: the predictive solution database can
sit on top of any DRB descendant, so this class exposes both the plain
(``predictive=False``) and predictive (``predictive=True``) variants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

from repro.core.thresholds import Zone
from repro.network.packet import DATA
from repro.routing.drb import DRBPolicy, FlowState
from repro.routing.prdrb import PRDRBConfig, PRDRBPolicy


@dataclass
class FRDRBConfig(PRDRBConfig):
    """PR-DRB tunables plus the watchdog timeout."""

    #: seconds without an ACK (with packets outstanding) before the
    #: watchdog declares congestion.
    watchdog_timeout_s: float = 150e-6


class FRDRBPolicy(PRDRBPolicy):
    """DRB with watchdog-triggered opening; optionally predictive."""

    #: ``name`` is per-instance here (fr-drb vs pr-fr-drb), so it must
    #: ride the snapshot unlike the class-level names of the other policies.
    _snapshot_fields_: ClassVar[tuple[str, ...]] = (
        "predictive",
        "name",
        "watchdog_fires",
        "nack_reactions",
    )

    def __init__(
        self,
        config: FRDRBConfig | None = None,
        predictive: bool = False,
        rng=None,
    ) -> None:
        super().__init__(config or FRDRBConfig(), rng=rng)
        self.predictive = predictive
        self.name = "pr-fr-drb" if predictive else "fr-drb"
        self.watchdog_fires = 0
        self.nack_reactions = 0

    # ------------------------------------------------------------------
    def _pre_send(self, fs: FlowState, now: float) -> None:
        """Watchdog check, piggybacked on injections (no ACK needed)."""
        timeout = self.config.watchdog_timeout_s
        reference = max(fs.last_ack_time, fs.last_reconfig)
        if (
            fs.outstanding > 0
            and fs.last_send_time >= 0.0
            and now - reference > timeout
            and now - fs.last_reconfig >= self.config.reconfig_cooldown_s
        ):
            self.watchdog_fires += 1
            if self.tracer is not None:
                track = ("flow", f"{fs.src}-{fs.dst}")
                self.tracer.emit(
                    now,
                    "policy.watchdog",
                    track,
                    args={"outstanding": fs.outstanding, "silent_s": now - reference},
                )
                if fs.zone is not Zone.HIGH:
                    self.tracer.emit(
                        now,
                        "zone.transition",
                        track,
                        args={
                            "from": fs.zone.value,
                            "to": Zone.HIGH.value,
                            "cause": "watchdog",
                        },
                    )
            fs.zone = Zone.HIGH
            if self._on_congestion(fs, now):
                fs.last_reconfig = now

    # ------------------------------------------------------------------
    # Fast response to NACKs: a dropped data packet is as strong a signal
    # as a missing ACK, so congestion handling fires without waiting for
    # the watchdog timeout.
    # ------------------------------------------------------------------
    def on_drop(self, packet, reason: str, now: float) -> None:
        super().on_drop(packet, reason, now)
        if packet.kind != DATA:
            return
        fs = self.flows.get((packet.src, packet.dst))
        if fs is None or now - fs.last_reconfig < self.config.reconfig_cooldown_s:
            return
        self.nack_reactions += 1
        if self.tracer is not None:
            track = ("flow", f"{fs.src}-{fs.dst}")
            self.tracer.emit(
                now, "policy.nack_reaction", track, args={"reason": reason}
            )
            if fs.zone is not Zone.HIGH:
                self.tracer.emit(
                    now,
                    "zone.transition",
                    track,
                    args={
                        "from": fs.zone.value,
                        "to": Zone.HIGH.value,
                        "cause": "nack",
                    },
                )
        if fs.zone is not Zone.HIGH:
            fs.high_entry_time = now
        fs.zone = Zone.HIGH
        fs.pending_high_entry = False
        if self._on_congestion(fs, now):
            fs.last_reconfig = now

    # ------------------------------------------------------------------
    # With predictive=False the solution database is bypassed: FR-DRB
    # reduces to DRB-with-watchdog, matching the thesis' comparison.
    # ------------------------------------------------------------------
    def _on_congestion(self, fs: FlowState, now: float) -> bool:
        if self.predictive:
            return super()._on_congestion(fs, now)
        return DRBPolicy._on_congestion(self, fs, now)

    def _on_controlled(self, fs: FlowState, now: float) -> None:
        if self.predictive:
            super()._on_controlled(fs, now)

    def on_predictive_ack(self, pack, now: float) -> None:
        if self.predictive:
            super().on_predictive_ack(pack, now)

    def stats(self) -> dict:
        out = super().stats()
        out["watchdog_fires"] = self.watchdog_fires
        out["nack_reactions"] = self.nack_reactions
        out["predictive"] = self.predictive
        return out
