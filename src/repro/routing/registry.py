"""Declarative routing-policy registry and spec-string factory.

Policies register a factory under one or more names at import time;
:func:`make_policy` resolves a *spec string* — a registered name plus
optional ``key=val`` arguments, ``"drb:seed=3,max_paths=2"`` — into a
policy instance.  Spec strings are plain text, so they travel anywhere a
policy choice must be serialized: :class:`repro.parallel.tasks.SimTask`
params, perf-harness CLI flags, experiment configs.

Argument values coerce like topology-spec arguments do: ``"4"`` -> int,
``"0.5"`` -> float, ``"true"``/``"false"`` -> bool, anything else stays
a string.  Keyword arguments passed to :func:`make_policy` directly win
over spec-string arguments, so harness overrides stay possible.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

from repro.routing.base import RoutingPolicy

__all__ = [
    "config_factory",
    "make_policy",
    "parse_policy_spec",
    "register",
    "registered_policies",
]

#: name -> factory; populated at import time (repro.routing registers the
#: built-in family, repro.routing.notified registers itself), read-only
#: afterwards.
_REGISTRY: dict[str, Callable[..., RoutingPolicy]] = {}


def register(
    name: str,
    factory: Callable[..., RoutingPolicy],
    *,
    aliases: tuple[str, ...] = (),
) -> None:
    """Register ``factory`` under ``name`` (and ``aliases``).

    Names are case-insensitive.  Re-registering a taken name raises —
    two policies silently shadowing each other would make spec strings
    ambiguous across import orders.
    """
    for key in (name, *aliases):
        key = key.strip().lower()
        if not key:
            raise ValueError("policy name must be non-empty")
        existing = _REGISTRY.get(key)
        if existing is not None and existing is not factory:
            raise ValueError(f"routing policy {key!r} is already registered")
        _REGISTRY[key] = factory


def registered_policies() -> tuple[str, ...]:
    """All registered names (aliases included), sorted."""
    return tuple(sorted(_REGISTRY))


def config_factory(
    policy_cls: Callable[..., RoutingPolicy],
    config_cls: type,
    **fixed,
) -> Callable[..., RoutingPolicy]:
    """Factory adapter for policies taking a config dataclass.

    Spec strings carry flat ``key=val`` pairs, but the DRB-family and
    notified policies take their tunables bundled in a config dataclass.
    The returned factory routes any kwarg naming a ``config_cls`` field
    into a fresh config object, passes the rest (``rng``, ...) through,
    and pins ``fixed`` kwargs (e.g. FR-DRB's ``predictive`` flag).
    """
    names = {f.name for f in dataclasses.fields(config_cls)}

    def factory(**kwargs) -> RoutingPolicy:
        config = kwargs.pop("config", None)
        overrides = {k: kwargs.pop(k) for k in list(kwargs) if k in names}
        if overrides:
            if config is not None:
                raise ValueError(
                    f"{getattr(policy_cls, '__name__', policy_cls)}: pass "
                    "either config= or individual config fields, not both"
                )
            config = config_cls(**overrides)
        return policy_cls(config=config, **fixed, **kwargs)

    return factory


def _coerce_value(text: str):
    low = text.lower()
    if low == "true":
        return True
    if low == "false":
        return False
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def parse_policy_spec(spec: str) -> tuple[str, dict]:
    """Split ``"name:key=val,..."`` into ``(name, kwargs)``."""
    name, _, arg_text = spec.partition(":")
    kwargs: dict = {}
    for part in arg_text.split(","):
        part = part.strip()
        if not part:
            continue
        key, sep, value = part.partition("=")
        if not sep or not key.strip():
            raise ValueError(
                f"bad policy spec argument {part!r} in {spec!r}; "
                "expected key=value"
            )
        kwargs[key.strip()] = _coerce_value(value.strip())
    return name.strip().lower(), kwargs


def make_policy(name: str, **kwargs) -> RoutingPolicy:
    """Build a policy from a registered name or a ``name:key=val,...`` spec.

    Recognized names: ``deterministic``, ``random``, ``cyclic``,
    ``adaptive``, ``adaptive-hop``, ``drb``, ``pr-drb``, ``fr-drb``,
    ``pr-fr-drb``, ``notified-adaptive``, ``ugal`` (plus aliases; see
    :func:`registered_policies`).
    """
    spec_name, spec_kwargs = parse_policy_spec(name)
    factory = _REGISTRY.get(spec_name)
    if factory is None:
        raise ValueError(
            f"unknown routing policy {spec_name!r}; registered policies: "
            f"{', '.join(registered_policies())}"
        )
    merged = {**spec_kwargs, **kwargs}
    return factory(**merged)
