"""Distributed Routing Balancing (DRB) — the adaptive base algorithm
(Franco et al.; §3.2.3-3.2.6 describe the mechanics PR-DRB inherits).

Each source keeps a per-destination :class:`~repro.core.metapath.Metapath`.
Destination ACKs report the measured queueing latency of each data packet;
the source smooths them per MSP (Eq. 3.3), aggregates them (Eq. 3.4) and
moves through the L/M/H zones (Fig. 3.9): entering **H** opens one more
alternative path, falling to **L** closes one.  Message injections pick an
open MSP with Eq. 3.6's inverse-latency PDF.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

import numpy as np

from repro.checkpoint.state import Snapshottable
from repro.core.contending import make_signature
from repro.core.metapath import Metapath
from repro.core.selection import select_msp
from repro.core.thresholds import Thresholds, Zone
from repro.network.packet import DATA, ContendingFlow, Packet
from repro.routing.base import RoutingPolicy
from repro.sim.rng import named_generator, seeded_generator
from repro.topology.base import Path


@dataclass
class DRBConfig:
    """Tunables of the DRB family."""

    #: maximum simultaneous alternative paths (paper: 4).
    max_paths: int = 4
    #: EMA factor for ACK latency smoothing.
    ema_alpha: float = 0.5
    #: Threshold_Low = low_factor * zero-load path latency.  Must sit above
    #: the harmonic floor of two open zero-load paths (~0.5x) or the
    #: closing transition of Fig. 3.9 becomes unreachable.
    low_factor: float = 0.75
    #: Threshold_High = high_factor * zero-load path latency.
    high_factor: float = 1.5
    #: minimum gap between metapath reconfigurations of one flow, seconds
    #: (lets freshly opened paths accumulate ACK evidence first).
    reconfig_cooldown_s: float = 50e-6
    #: window over which reported contending flows form the current
    #: congestion signature, seconds.
    signature_window_s: float = 200e-6
    #: paths close only when the flow's offered rate falls below this
    #: fraction of one link's bandwidth.  Eq. 3.4's aggregate drops below
    #: Threshold_Low precisely when an open metapath is doing its job, so
    #: latency alone cannot distinguish "burst absorbed" from "burst
    #: over"; the paper closes paths when traffic demand subsides, and
    #: this gate encodes that.
    shrink_max_utilization: float = 0.5
    #: RNG seed for the Eq. 3.6 path draw.
    seed: int = 0
    #: draw each flow's Eq. 3.6 selection from a per-flow stream derived
    #: from ``(seed, "msp:src:dst")`` instead of one shared generator.
    #: Off by default (the historical digests consume the shared stream);
    #: sharded runs require it — a shared stream's draw order would
    #: interleave across shards (docs/sharding.md).
    flow_seeded: bool = False


class FlowState(Snapshottable):
    """Per (source, destination) routing state at the source node."""

    _snapshot_fields_: ClassVar[tuple[str, ...]] = (
        "src",
        "dst",
        "metapath",
        "thresholds",
        "zone",
        "last_reconfig",
        "recent_flows",
        "learning_signature",
        "outstanding",
        "last_ack_time",
        "last_send_time",
        "pending_high_entry",
        "offered_bps",
        "high_entry_time",
        "rng",
    )

    __slots__ = (
        "src",
        "dst",
        "metapath",
        "thresholds",
        "zone",
        "last_reconfig",
        "recent_flows",
        "learning_signature",
        "outstanding",
        "last_ack_time",
        "last_send_time",
        "pending_high_entry",
        "offered_bps",
        "high_entry_time",
        "rng",
    )

    def __init__(
        self,
        src: int,
        dst: int,
        metapath: Metapath,
        thresholds: Thresholds,
        rng: np.random.Generator | None = None,
    ):
        self.src = src
        self.dst = dst
        self.metapath = metapath
        self.thresholds = thresholds
        self.zone = Zone.LOW
        self.last_reconfig = -1.0
        #: recently reported contending flows: flow -> last report time.
        self.recent_flows: dict[ContendingFlow, float] = {}
        #: signature captured when congestion handling started (None when
        #: not in a learning episode).
        self.learning_signature = None
        self.outstanding = 0
        self.last_ack_time = 0.0
        #: -1.0 until the first injection.
        self.last_send_time = -1.0
        #: a fresh H entry awaits its (predictive) congestion handling.
        self.pending_high_entry = False
        #: smoothed offered rate of this flow, bits per second.
        self.offered_bps = 0.0
        #: time the current congestion (H) episode started; -1 when none.
        self.high_entry_time = -1.0
        #: per-flow Eq. 3.6 draw stream (``DRBConfig.flow_seeded``); None
        #: means the policy's shared generator is used.
        self.rng = rng


class DRBPolicy(RoutingPolicy):
    """Adaptive multipath balancing with gradual path opening."""

    name = "drb"
    wants_acks = True

    _snapshot_fields_: ClassVar[tuple[str, ...]] = (
        "config",
        "_rng",
        "flows",
        "expansions",
        "shrinks",
        "paths_pruned",
    )

    def __init__(
        self,
        config: DRBConfig | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        self.config = config or DRBConfig()
        # An injected generator (e.g. a RandomStreams stream) wins; the
        # default stays bit-compatible with the historical per-policy seed.
        self._rng = rng if rng is not None else seeded_generator(self.config.seed)
        self.flows: dict[tuple[int, int], FlowState] = {}
        # Counters for the evaluation reports.
        self.expansions = 0
        self.shrinks = 0
        self.paths_pruned = 0

    # ------------------------------------------------------------------
    # Flow state management
    # ------------------------------------------------------------------
    def _per_hop_cost_s(self) -> float:
        cfg = self.fabric.config
        return cfg.packet_tx_time_s + cfg.routing_delay_s + cfg.link_delay_s

    def flow_state(self, src: int, dst: int) -> FlowState:
        key = (src, dst)
        fs = self.flows.get(key)
        if fs is None:
            candidates = self.topology.alternative_paths(src, dst, self.config.max_paths)
            metapath = Metapath(
                candidates,
                per_hop_cost_s=self._per_hop_cost_s(),
                alpha=self.config.ema_alpha,
            )
            thresholds = Thresholds.from_base_latency(
                metapath.original.transmission_s,
                low_factor=self.config.low_factor,
                high_factor=self.config.high_factor,
            )
            rng = (
                named_generator(self.config.seed, f"msp:{src}:{dst}")
                if self.config.flow_seeded
                else None
            )
            fs = FlowState(src, dst, metapath, thresholds, rng=rng)
            self.flows[key] = fs
        return fs

    # ------------------------------------------------------------------
    # Injection-side: Eq. 3.6 selection
    # ------------------------------------------------------------------
    def select_path(self, src: int, dst: int, size_bytes: int, now: float) -> tuple[Path, int]:
        fs = self.flow_state(src, dst)
        # The watchdog hook sees the pre-send state: "packets outstanding
        # and no ACK yet" refers to earlier sends, not this one.
        self._pre_send(fs, now)
        fs.outstanding += 1
        gap = now - fs.last_send_time
        if fs.last_send_time >= 0 and gap > 0:
            rate = size_bytes * 8 / gap
            fs.offered_bps = 0.7 * fs.offered_bps + 0.3 * rate
        fs.last_send_time = now
        idx = select_msp(fs.metapath, fs.rng if fs.rng is not None else self._rng)
        if self.fabric.failed_links:
            idx = self._route_around_faults(fs, idx)
        if self.tracer is not None:
            self.tracer.emit(
                now,
                "msp.select",
                ("flow", f"{src}-{dst}"),
                args={"idx": idx, "active": fs.metapath.active_count},
            )
        return fs.metapath.path_for(idx), idx

    def _route_around_faults(self, fs: FlowState, idx: int) -> int:
        """Steer the selection off failed links (the FT-DRB behaviour:
        the metapath's redundancy doubles as fault tolerance)."""
        fabric = self.fabric
        if fabric.path_alive(fs.metapath.path_for(idx)):
            return idx
        alive = [
            i
            for i in fs.metapath.active_indices
            if fabric.path_alive(fs.metapath.path_for(i))
        ]
        if not alive:
            # Open any surviving candidate path.
            for i in range(fs.metapath.max_paths):
                if fabric.path_alive(fs.metapath.path_for(i)):
                    fs.metapath.apply_solution((i,))
                    alive = [i]
                    break
        if alive:
            return alive[0]
        return idx  # no live candidate: the fabric will account the drop

    def _pre_send(self, fs: FlowState, now: float) -> None:
        """Subclass hook run before each injection (FR-DRB watchdog)."""

    # ------------------------------------------------------------------
    # Notification-side: metapath configuration (Fig. 3.8 / Alg. A.2)
    # ------------------------------------------------------------------
    def on_ack(self, ack: Packet, now: float) -> None:
        # The ACK's destination is the original data source.
        fs = self.flow_state(ack.dst, ack.src)
        fs.outstanding = max(0, fs.outstanding - 1)
        fs.last_ack_time = now
        fs.metapath.record_ack(ack.acked_msp_index, ack.path_latency)
        if ack.contending:
            self._merge_contending(fs, ack.contending, now)
        self._reconfigure(fs, now)

    # ------------------------------------------------------------------
    # Fault reaction (NACK/timeout path, §3.3.2 made dynamic)
    # ------------------------------------------------------------------
    def on_drop(self, packet: Packet, reason: str, now: float) -> None:
        """A dropped data packet is this model's NACK: prune every active
        MSP that crosses a currently-failed link so subsequent selections
        (including the transport's retransmissions) avoid the fault."""
        if packet.kind != DATA or not self.fabric.failed_links:
            return
        fs = self.flows.get((packet.src, packet.dst))
        if fs is None:
            return
        dead = [
            i
            for i in fs.metapath.active_indices
            if not self.fabric.path_alive(fs.metapath.path_for(i))
        ]
        if dead:
            pruned = fs.metapath.prune(dead)
            self.paths_pruned += pruned
            if self.tracer is not None and pruned:
                self.tracer.emit(
                    now,
                    "msp.prune",
                    ("flow", f"{packet.src}-{packet.dst}"),
                    args={"pruned": pruned, "reason": reason},
                )

    def on_timeout(self, src: int, dst: int, now: float) -> None:
        """The transport declared an outstanding packet lost: its ACK will
        never arrive, so rebalance the per-flow outstanding count."""
        fs = self.flows.get((src, dst))
        if fs is not None:
            fs.outstanding = max(0, fs.outstanding - 1)

    def _merge_contending(
        self, fs: FlowState, flows: list[ContendingFlow], now: float
    ) -> None:
        for flow in flows:
            fs.recent_flows[flow] = now

    def current_signature(self, fs: FlowState, now: float):
        """Contending flows reported within the signature window."""
        horizon = now - self.config.signature_window_s
        stale = [f for f, t in fs.recent_flows.items() if t < horizon]
        for f in stale:
            del fs.recent_flows[f]
        return make_signature(fs.recent_flows)

    def _reconfigure(self, fs: FlowState, now: float) -> None:
        """Metapath configuration step (§3.2.4 / Fig. 3.12).

        Reconfiguration is *level-based*, per the Eq. 3.4 rules: while
        L(MP) sits above Threshold_High another path opens (one per
        cooldown interval — "opening one path at a time and evaluating
        the effect"); below Threshold_Low paths close.  Zone *edges*
        additionally drive the predictive procedures: a fresh entry into
        H consults the solution database (PR-DRB), and leaving H saves
        the configuration that controlled the congestion.
        """
        latency = fs.metapath.latency_s()
        new_zone = fs.thresholds.zone(latency)
        old_zone = fs.zone
        fs.zone = new_zone
        tracer = self.tracer
        if tracer is not None and new_zone is not old_zone:
            tracer.emit(
                now,
                "zone.transition",
                ("flow", f"{fs.src}-{fs.dst}"),
                args={
                    "from": old_zone.value,
                    "to": new_zone.value,
                    "latency_s": latency,
                },
            )
        if old_zone is Zone.HIGH and new_zone is not Zone.HIGH:
            if tracer is not None and fs.high_entry_time >= 0:
                # The whole controlled-congestion span, as one X slice.
                tracer.emit(
                    fs.high_entry_time,
                    "congestion.episode",
                    ("flow", f"{fs.src}-{fs.dst}"),
                    ph="X",
                    dur=now - fs.high_entry_time,
                    args={"active": fs.metapath.active_count},
                )
            # Congestion controlled: record the solution (no cooldown —
            # saving touches no network state).
            self._on_controlled(fs, now)
            fs.high_entry_time = -1.0
        if new_zone is Zone.HIGH and old_zone is not Zone.HIGH:
            fs.pending_high_entry = True
            fs.high_entry_time = now
        if now - fs.last_reconfig < self.config.reconfig_cooldown_s:
            return
        if new_zone is Zone.HIGH:
            if fs.pending_high_entry:
                fs.pending_high_entry = False
                if self._on_congestion(fs, now):
                    fs.last_reconfig = now
            elif (
                not self._demand_is_low(fs)
                and fs.metapath.evaluated()
                and self._expand(fs, now)
            ):
                # Sustained saturation: widen further, but only after the
                # previous opening's effect was evaluated via ACKs, and
                # only while the flow is actually offering load (a stale
                # high EMA during the idle phase must not open paths).
                fs.last_reconfig = now
        elif new_zone is Zone.LOW:
            if self._demand_is_low(fs) and fs.metapath.shrink():
                self.shrinks += 1
                if tracer is not None:
                    tracer.emit(
                        now,
                        "msp.close",
                        ("flow", f"{fs.src}-{fs.dst}"),
                        args={"active": fs.metapath.active_count},
                    )
                fs.last_reconfig = now

    def _demand_is_low(self, fs: FlowState) -> bool:
        limit = (
            self.config.shrink_max_utilization
            * self.fabric.config.link_bandwidth_bps
        )
        return fs.offered_bps < limit

    def _expand(self, fs: FlowState, now: float) -> bool:
        if fs.metapath.expand():
            self.expansions += 1
            if self.tracer is not None:
                self.tracer.emit(
                    now,
                    "msp.open",
                    ("flow", f"{fs.src}-{fs.dst}"),
                    args={"active": fs.metapath.active_count},
                )
            return True
        return False

    # ------------------------------------------------------------------
    # Subclass hooks (PR-DRB overrides both)
    # ------------------------------------------------------------------
    def _on_congestion(self, fs: FlowState, now: float) -> bool:
        """Entering H: open one more path.  Returns True when acted."""
        return self._expand(fs, now)

    def _on_controlled(self, fs: FlowState, now: float) -> None:
        """Leaving H downward: DRB itself does nothing here."""

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        active = [fs.metapath.active_count for fs in self.flows.values()]
        return {
            "policy": self.name,
            "flows": len(self.flows),
            "expansions": self.expansions,
            "shrinks": self.shrinks,
            "paths_pruned": self.paths_pruned,
            "mean_active_paths": float(np.mean(active)) if active else 1.0,
            "max_active_paths": max(active) if active else 1,
        }
