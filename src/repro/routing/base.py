"""Routing-policy interface.

A policy is consulted by the fabric at message injection
(:meth:`RoutingPolicy.select_path`) and fed the notification stream
(:meth:`RoutingPolicy.on_ack`, :meth:`RoutingPolicy.on_predictive_ack`).
All policies here are source-routed: they hand the fabric a concrete
router path, which matches the paper's multi-header MSP mechanism — the
per-segment minimal routes are resolved when the metapath is built, so
routers only execute HDP forwarding.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, ClassVar, Optional

from repro.checkpoint.state import Snapshottable
from repro.network.packet import Packet
from repro.topology.base import Path

if TYPE_CHECKING:  # pragma: no cover
    from repro.network.fabric import Fabric


class RoutingPolicy(Snapshottable):
    """Base class; subclasses override path selection and learning hooks."""

    #: machine name used in reports.
    name: str = "abstract"
    #: whether destinations should return ACK packets to sources.
    wants_acks: bool = False

    _snapshot_fields_: ClassVar[tuple[str, ...]] = ("fabric",)
    _snapshot_exclude_: ClassVar[tuple[str, ...]] = ("tracer",)

    def __init__(self) -> None:
        self.fabric: Optional["Fabric"] = None
        #: optional :class:`repro.obs.tracer.Tracer`; policy decisions
        #: (zone transitions, MSP changes, predictions) emit through it.
        self.tracer = None

    # ------------------------------------------------------------------
    def attach(self, fabric: "Fabric") -> None:
        """Bind the policy to a fabric (topology, clock, config access)."""
        self.fabric = fabric

    @property
    def topology(self):
        if self.fabric is None:
            raise RuntimeError("policy not attached to a fabric")
        return self.fabric.topology

    # ------------------------------------------------------------------
    def select_path(self, src: int, dst: int, size_bytes: int, now: float) -> tuple[Path, int]:
        """Return ``(router path, msp_index)`` for a message injection."""
        raise NotImplementedError

    def on_ack(self, ack: Packet, now: float) -> None:
        """Source-side handling of a destination ACK (latency + flows)."""

    def on_predictive_ack(self, pack: Packet, now: float) -> None:
        """Source-side handling of a router-injected predictive ACK."""

    def on_drop(self, packet: Packet, reason: str, now: float) -> None:
        """Fabric notification that ``packet`` was dropped (``reason`` is a
        ``Fabric.dropped_by_reason`` key).  DRB-family policies use this as
        the NACK signal to prune metapaths crossing dead links."""

    def on_timeout(self, src: int, dst: int, now: float) -> None:
        """Reliable-transport notification that an outstanding packet of
        flow ``(src, dst)`` timed out or was abandoned — the matching ACK
        will never arrive, so per-flow outstanding books must rebalance."""

    def tick(self, now: float) -> None:
        """Optional periodic hook (FR-DRB watchdog timers)."""

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Policy-specific counters for reports; subclasses extend."""
        return {"policy": self.name}
