"""Command-line interface.

``python -m repro <command>``:

* ``simulate``    — run a synthetic workload on a chosen topology/policy;
* ``experiment``  — regenerate one of the paper's tables/figures;
* ``list``        — list available experiments, policies and patterns;
* ``analyze``     — Chapter-2 analyses of a saved (or synthesized) trace;
* ``replay``      — replay an application trace under one policy.
"""

from __future__ import annotations

import argparse
import sys

from repro import __version__


def _cmd_list(args) -> int:
    from repro.apps import APP_TRACES
    from repro.experiments.scenarios import ALL_SCENARIOS
    from repro.traffic.patterns import PATTERNS

    print("experiments:")
    for name, fn in ALL_SCENARIOS.items():
        doc = (fn.__doc__ or "").strip().splitlines()[0] if fn.__doc__ else ""
        print(f"  {name:24s} {doc}")
    print("\npolicies: deterministic cyclic random adaptive drb pr-drb fr-drb pr-fr-drb")
    print(f"patterns: {' '.join(sorted(PATTERNS))} uniform")
    print(f"app traces: {' '.join(sorted(APP_TRACES))}")
    return 0


def _cmd_simulate(args) -> int:
    from repro.api import build_network, run_synthetic
    from repro.traffic.bursty import BurstSchedule

    net = build_network(
        topology=args.topology,
        policy=args.policy,
        notification=args.notification,
        width=args.width,
        k=args.k,
        n=args.n,
    )
    schedule = None
    if args.bursts:
        schedule = BurstSchedule(
            on_s=args.burst_on_us * 1e-6,
            off_s=args.burst_off_us * 1e-6,
            repetitions=args.bursts,
        )
    result = run_synthetic(
        net,
        pattern=args.pattern,
        rate_mbps=args.rate_mbps,
        duration_s=(schedule.end_time() if schedule else args.duration_us * 1e-6),
        schedule=schedule,
        seed=args.seed,
    )
    for key, value in result.summary().items():
        print(f"{key}: {value}")
    return 0


def _cmd_experiment(args) -> int:
    from repro.experiments.config import FULL, QUICK
    from repro.experiments.scenarios import ALL_SCENARIOS

    fn = ALL_SCENARIOS.get(args.name)
    if fn is None:
        print(f"unknown experiment {args.name!r}; try `python -m repro list`",
              file=sys.stderr)
        return 2
    result = fn(FULL if args.scale == "full" else QUICK)
    print(result.render())
    return 0 if result.passed else 1


def _cmd_analyze(args) -> int:
    from repro.apps import APP_TRACES
    from repro.apps.commmatrix import CommMatrixStats
    from repro.apps.phases import detect_phases
    from repro.mpi.trace import call_breakdown
    from repro.mpi.traceio import load_trace

    if args.trace in APP_TRACES:
        trace = APP_TRACES[args.trace](num_ranks=args.ranks)
    else:
        trace = load_trace(args.trace)
    print(f"trace: {trace.name} ({trace.num_ranks} ranks, {trace.total_events} events)")
    print("\nMPI call breakdown (Table 2.1 analysis):")
    for call, share in sorted(call_breakdown(trace).items(), key=lambda kv: -kv[1]):
        print(f"  {call:10s} {share * 100:6.2f}%")
    report = detect_phases(trace)
    print("\nphases (Table 2.2 analysis):")
    print(f"  total={report.total_phases} relevant={report.relevant_phases} "
          f"weight={report.total_weight}")
    stats = CommMatrixStats.from_trace(trace)
    print("\ncommunication topology (Fig 2.10-2.13 analysis):")
    print(f"  mean TDC={stats.mean_tdc:.2f} max TDC={stats.max_tdc} "
          f"diagonal band={stats.diagonal_band_fraction * 100:.1f}%")
    return 0


def _cmd_replay(args) -> int:
    from repro.apps import APP_TRACES
    from repro.experiments.runner import run_app_workload
    from repro.mpi.traceio import load_trace
    from repro.topology.fattree import KaryNTree

    if args.trace in APP_TRACES:
        factory = APP_TRACES[args.trace]
        kwargs = {"num_ranks": args.ranks}
    else:
        trace = load_trace(args.trace)
        factory = lambda **_: trace  # noqa: E731
        kwargs = {}
    runs = run_app_workload(
        lambda: KaryNTree(4, 3),
        [args.policy],
        factory,
        trace_kwargs=kwargs,
        notification=args.notification,
    )
    run = runs[args.policy]
    print(f"policy: {args.policy}")
    print(f"execution time: {run.execution_time_s * 1e3:.3f} ms")
    print(f"global average latency: {run.global_latency_s * 1e6:.2f} us")
    print(f"contention peak: {run.map_peak_s * 1e6:.2f} us")
    for key, value in run.policy_stats.items():
        print(f"{key}: {value}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PR-DRB reproduction: simulate, analyze, regenerate the paper",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments / policies / patterns")

    sim = sub.add_parser("simulate", help="run a synthetic workload")
    sim.add_argument("--topology", default="fattree",
                     choices=["mesh", "torus", "fattree", "hypercube"])
    sim.add_argument("--width", type=int, default=8, help="mesh/torus width")
    sim.add_argument("--k", type=int, default=4, help="fat-tree arity")
    sim.add_argument("--n", type=int, default=3, help="fat-tree levels")
    sim.add_argument("--policy", default="pr-drb")
    sim.add_argument("--pattern", default="perfect-shuffle")
    sim.add_argument("--rate-mbps", type=float, default=1000.0)
    sim.add_argument("--duration-us", type=float, default=1000.0)
    sim.add_argument("--bursts", type=int, default=0,
                     help="number of bursty repetitions (0 = continuous)")
    sim.add_argument("--burst-on-us", type=float, default=300.0)
    sim.add_argument("--burst-off-us", type=float, default=600.0)
    sim.add_argument("--notification", default="router",
                     choices=["destination", "router"])
    sim.add_argument("--seed", type=int, default=0)

    exp = sub.add_parser("experiment", help="regenerate a paper artifact")
    exp.add_argument("name")
    exp.add_argument("--scale", choices=["quick", "full"], default="quick")

    ana = sub.add_parser("analyze", help="analyze a trace (file or app name)")
    ana.add_argument("trace")
    ana.add_argument("--ranks", type=int, default=64)

    rep = sub.add_parser("replay", help="replay a trace under one policy")
    rep.add_argument("trace")
    rep.add_argument("--policy", default="pr-drb")
    rep.add_argument("--ranks", type=int, default=64)
    rep.add_argument("--notification", default="router",
                     choices=["destination", "router"])
    return parser


_COMMANDS = {
    "list": _cmd_list,
    "simulate": _cmd_simulate,
    "experiment": _cmd_experiment,
    "analyze": _cmd_analyze,
    "replay": _cmd_replay,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
