"""Entry point: ``python -m repro.perf`` (see package docstring)."""

import sys

from repro.perf import main

if __name__ == "__main__":
    sys.exit(main())
