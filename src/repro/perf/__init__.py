"""Digest-gated performance-regression harness (``python -m repro.perf``).

The hot-path optimizations in :mod:`repro.sim.engine`,
:mod:`repro.network` and :mod:`repro.core` are only admissible if they
change *nothing* observable: the rule (docs/performance.md) is **no
optimization without a digest match**.  This harness enforces it:

1. **Digest gate** — replay the seeded :func:`repro.analysis.replay`
   scenario for every routing policy and compare the event-trace and
   metrics digests against the committed ``baseline.json``.  Any drift is
   a hard failure (exit code 1): the "optimization" changed simulation
   behavior and must be fixed or the baseline consciously re-recorded
   with ``--update-baseline``.
2. **Throughput watch** — run the pinned hot-spot workload (the same one
   ``scripts/profile_sim.py`` profiles) per policy and compare events/sec
   against the recorded pre-optimization baseline.  Rates are machine-
   and load-dependent, so a slowdown beyond the tolerance only *warns*;
   it never fails CI.

The report is written to ``BENCH_engine.json`` (override with ``--out``)
with a per-policy breakdown: digests, events/sec, and speedup over the
recorded baseline.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path
from typing import Optional, Sequence

__all__ = [
    "DEFAULT_POLICIES",
    "BASELINE_PATH",
    "RATE_REGRESSION_TOLERANCE",
    "load_baseline",
    "check_digests",
    "run_pinned_workload",
    "run_pinned_dragonfly_workload",
    "measure_events_per_s",
    "run_suite",
    "main",
]

#: Policies covered by the gate, in report order.
DEFAULT_POLICIES = ("deterministic", "drb", "pr-drb", "fr-drb")

#: Committed baseline: replay digests + pre-optimization event rates.
BASELINE_PATH = Path(__file__).with_name("baseline.json")

#: Events/sec may regress by up to this fraction before the harness warns.
RATE_REGRESSION_TOLERANCE = 0.20


def load_baseline(path: Optional[Path] = None) -> dict:
    """Load the committed (or an explicit) baseline JSON."""
    with open(path or BASELINE_PATH, "r", encoding="utf-8") as fh:
        return json.load(fh)


# ----------------------------------------------------------------------
# Digest gate
# ----------------------------------------------------------------------
def check_digests(
    policies: Sequence[str], baseline: dict
) -> dict[str, dict]:
    """Replay the baseline scenario per policy; compare both digests.

    Returns ``{policy: {"ok": bool, "got": {...}, "expected": {...}}}``.
    A policy missing from the baseline is reported with ``ok=False`` so a
    newly added policy forces a conscious baseline update.
    """
    from repro.analysis.replay import run_scenario

    scenario = baseline["scenario"]
    results: dict[str, dict] = {}
    for policy in policies:
        run = run_scenario(
            seed=scenario["seed"],
            policy=policy,
            mesh_side=scenario["mesh_side"],
            repetitions=scenario["repetitions"],
        )
        got = {
            "events": run.events,
            "metrics": run.metrics,
            "events_executed": run.events_executed,
            "packets_delivered": run.packets_delivered,
        }
        expected = baseline["digests"].get(policy)
        ok = expected is not None and all(
            got[k] == expected[k] for k in got
        )
        results[policy] = {"ok": ok, "got": got, "expected": expected}
    return results


# ----------------------------------------------------------------------
# Pinned hot-spot workload (shared with scripts/profile_sim.py)
# ----------------------------------------------------------------------
def run_pinned_workload(
    policy: str, max_events: int, tracer=None, metrics=None,
    metrics_cadence_s: Optional[float] = None,
) -> int:
    """Run the pinned hot-spot workload; return events executed.

    An 8x8 mesh with four colliding hot-spot flows under a repeated
    on/off burst schedule — the congested steady state whose profile
    drove the engine/network optimizations (docs/performance.md).  The
    parameters are mirrored in ``baseline.json``'s ``workload`` block and
    must not drift, or recorded rates stop being comparable.

    ``tracer``/``metrics`` (a :class:`repro.obs.tracer.Tracer` and
    :class:`repro.obs.metrics.MetricsRegistry`) instrument the run; both
    observe only, so the executed event stream is identical either way.
    """
    from repro.network.config import NetworkConfig
    from repro.network.fabric import Fabric
    from repro.routing import make_policy
    from repro.sim.engine import Simulator
    from repro.topology.mesh import Mesh2D
    from repro.traffic.bursty import BurstSchedule
    from repro.traffic.generators import HotSpotFlow, HotSpotWorkload

    sim = Simulator()
    fabric = Fabric(Mesh2D(8), NetworkConfig(), make_policy(policy), sim)
    if tracer is not None or metrics is not None:
        from repro.obs import instrument

        instrument(fabric, tracer, metrics, cadence_s=metrics_cadence_s)
    schedule = BurstSchedule(on_s=3e-4, off_s=3e-4, repetitions=50)
    flows = [
        HotSpotFlow(0, 37),
        HotSpotFlow(8, 45),
        HotSpotFlow(16, 53),
        HotSpotFlow(24, 61),
    ]
    HotSpotWorkload(
        fabric,
        flows,
        rate_bps=1.3e9,
        schedule=schedule,
        stop_s=schedule.end_time(),
        idle_rate_bps=250e6,
    ).start()
    sim.run(max_events=max_events)
    return sim.events_executed


def run_pinned_dragonfly_workload(
    policy: str, max_events: Optional[int] = None, seed: int = 0,
) -> dict:
    """Run the pinned dragonfly group-pair hot-spot; return run counters.

    The adversarial permutation behind ``benchmarks/bench_dragonfly.py``
    and the CI dragonfly-smoke digest gate: every host of group 0 sends
    to its mirror in group 1 on ``dragonfly:4,2,2``, so all eight flows
    contend for the pair's single global link under router-based
    notification, plus uniform background noise.  The parameters are
    pinned — the smoke job compares same-seed event digests across runs,
    so any drift here is a determinism bug, not a tunable.
    """
    from repro.analysis.replay import EventTraceDigest
    from repro.network.config import NetworkConfig
    from repro.network.fabric import Fabric
    from repro.parallel.tasks import make_topology
    from repro.routing import make_policy
    from repro.sim.engine import Simulator
    from repro.sim.rng import RandomStreams
    from repro.traffic.bursty import BurstSchedule
    from repro.traffic.generators import HotSpotFlow, HotSpotWorkload

    streams = RandomStreams(seed)
    sim = Simulator()
    trace = EventTraceDigest().install(sim)
    try:
        policy_obj = make_policy(policy, rng=streams.stream("routing"))
    except TypeError:
        policy_obj = make_policy(policy)
    fabric = Fabric(
        make_topology("dragonfly:4,2,2"),
        NetworkConfig(),
        policy_obj,
        sim,
        notification="router",
    )
    schedule = BurstSchedule(on_s=3e-4, off_s=1e-4, repetitions=3)
    HotSpotWorkload(
        fabric,
        [HotSpotFlow(h, h + 8) for h in range(8)],
        rate_bps=1.3e9,
        schedule=schedule,
        stop_s=schedule.end_time(),
        noise_hosts=range(fabric.topology.num_hosts),
        noise_rate_bps=30e6,
        rng=streams.stream("noise"),
    ).start()
    sim.run(until=schedule.end_time() + 8e-4, max_events=max_events)
    return {
        "events_executed": sim.events_executed,
        "packets_injected": fabric.data_packets_injected,
        "packets_delivered": fabric.data_packets_delivered,
        "digest": trace.hexdigest(),
        "policy_stats": policy_obj.stats(),
    }


def measure_events_per_s(
    policy: str, max_events: int = 200_000, repeats: int = 3
) -> float:
    """Best-of-``repeats`` event rate for ``policy`` on the pinned workload.

    Uses CPU time, not wall time: on a loaded box the best-of CPU-time
    rate is the least noisy throughput estimate (interference only ever
    slows a run down).  This measures the harness itself, not simulated
    behavior, so the wall-clock lint is deliberately suppressed.
    """
    best = 0.0
    for _ in range(repeats):
        start = time.process_time()  # repro: allow(no-wall-clock)
        executed = run_pinned_workload(policy, max_events)
        elapsed = time.process_time() - start  # repro: allow(no-wall-clock)
        if elapsed > 0:
            rate = executed / elapsed
            if rate > best:
                best = rate
    return best


# ----------------------------------------------------------------------
# Suite driver
# ----------------------------------------------------------------------
def run_suite(
    policies: Sequence[str] = DEFAULT_POLICIES,
    baseline: Optional[dict] = None,
    quick: bool = False,
) -> dict:
    """Digest gate + throughput watch; returns the full report dict.

    ``quick`` shrinks the throughput measurement (fewer events, one
    repeat) for CI smoke runs; the digest gate is identical in both
    modes.  The report's ``digest_ok`` key is the pass/fail verdict.
    """
    if baseline is None:
        baseline = load_baseline()
    digest_results = check_digests(policies, baseline)
    digest_ok = all(r["ok"] for r in digest_results.values())

    max_events = 60_000 if quick else int(
        baseline.get("workload", {}).get("max_events", 200_000)
    )
    repeats = 1 if quick else 3
    baseline_rates = baseline.get("baseline_events_per_s", {})

    per_policy: dict[str, dict] = {}
    warnings: list[str] = []
    for policy in policies:
        rate = measure_events_per_s(policy, max_events, repeats)
        entry: dict = {
            "events_per_s": round(rate, 1),
            "digest_ok": digest_results[policy]["ok"],
        }
        base_rate = baseline_rates.get(policy)
        if base_rate:
            entry["baseline_events_per_s"] = base_rate
            entry["speedup"] = round(rate / base_rate, 3)
            if rate < base_rate * (1.0 - RATE_REGRESSION_TOLERANCE):
                warnings.append(
                    f"{policy}: {rate:.0f} ev/s is >"
                    f"{RATE_REGRESSION_TOLERANCE:.0%} below the recorded "
                    f"baseline {base_rate:.0f} ev/s (machine-dependent; "
                    "not a failure)"
                )
        per_policy[policy] = entry

    measured = [
        p["speedup"] for p in per_policy.values() if "speedup" in p
    ]
    report = {
        "digest_ok": digest_ok,
        "quick": quick,
        "max_events": max_events,
        "policies": per_policy,
        "digests": {
            p: r["got"] for p, r in digest_results.items()
        },
        "aggregate_speedup": (
            round(sum(measured) / len(measured), 3) if measured else None
        ),
        "warnings": warnings,
        "workload": baseline.get("workload"),
        "scenario": baseline.get("scenario"),
    }
    return report


def _updated_baseline(report: dict, baseline: dict) -> dict:
    """Fold a report's digests and rates into a new baseline dict."""
    return {
        "baseline_events_per_s": {
            p: entry["events_per_s"]
            for p, entry in report["policies"].items()
        },
        "digests": report["digests"],
        "scenario": baseline["scenario"],
        "workload": baseline["workload"],
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.perf",
        description="digest-gated perf-regression harness",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: same digest gate, shorter throughput run",
    )
    parser.add_argument(
        "--policies",
        default=",".join(DEFAULT_POLICIES),
        help="comma-separated policy list (default: all four)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=f"baseline JSON (default: {BASELINE_PATH})",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path("BENCH_engine.json"),
        help="report output path (default: BENCH_engine.json)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="re-record digests and rates into the baseline file "
        "(a conscious act: review the behavior change first)",
    )
    args = parser.parse_args(argv)

    policies = [p.strip() for p in args.policies.split(",") if p.strip()]
    baseline = load_baseline(args.baseline)
    report = run_suite(policies, baseline=baseline, quick=args.quick)

    args.out.write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    for policy, entry in report["policies"].items():
        mark = "ok " if entry["digest_ok"] else "FAIL"
        speed = (
            f"{entry['speedup']:.2f}x vs baseline"
            if "speedup" in entry
            else "no baseline rate"
        )
        print(
            f"[{mark}] {policy:<14} {entry['events_per_s']:>10.0f} ev/s "
            f"({speed})"
        )
    for warning in report["warnings"]:
        print(f"warning: {warning}", file=sys.stderr)

    if args.update_baseline:
        target = args.baseline or BASELINE_PATH
        target.write_text(
            json.dumps(_updated_baseline(report, baseline), indent=2,
                       sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"baseline updated: {target}")
        return 0

    if not report["digest_ok"]:
        print(
            "digest mismatch: simulation behavior drifted from the "
            "committed baseline (see docs/performance.md)",
            file=sys.stderr,
        )
        return 1
    print(f"report: {args.out}")
    return 0
