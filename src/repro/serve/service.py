"""The service core: a job-queue worker thread publishing live telemetry.

:class:`SimulationService` owns four things:

* a :class:`~repro.serve.jobs.JobStore` (journaled job table),
* a :class:`~repro.obs.bus.MetricsBus` (fan-out to SSE subscribers),
* a :class:`~repro.obs.metrics.MetricsRegistry` of *service-level*
  metrics (jobs/cells counters, bus stats provider) — what
  ``GET /metrics`` renders through
  :func:`~repro.obs.export.export_prometheus`,
* one worker thread draining submitted jobs through
  :func:`~repro.parallel.orchestrator.run_sweep`.

Jobs execute on the inline sweep backend by default (``workers=1``):
that is the only backend that can carry the per-cell metrics hook (a
callable cannot cross the pickle boundary), and it is what makes the
telemetry plane complete — every cadence snapshot of every cell reaches
the bus.  A multi-worker service still streams progress events; it just
loses the per-cell snapshot series (documented in docs/serving.md).

Everything published is observation: the worker thread runs the same
``run_sweep`` a CLI user would, the bus never blocks it (bounded lossy
subscriber queues), and cell digests are bit-identical with or without
the service attached — ``python -m repro.serve --selftest`` proves that
end to end.
"""

from __future__ import annotations

import queue
import threading
from typing import Optional

from repro.obs.bus import MetricsBus
from repro.obs.metrics import MetricsRegistry
from repro.parallel.orchestrator import SweepConfig, run_sweep
from repro.parallel.tasks import code_version
from repro.serve.jobs import Job, JobStore, expand_grid, grid_key

__all__ = ["SimulationService"]

#: default sim-time cadence for per-cell metrics snapshots (seconds).
DEFAULT_CADENCE_S = 1e-4


class SimulationService:
    """Accept job specs, run them, and narrate everything onto the bus."""

    def __init__(
        self,
        cache_dir: Optional[str] = None,
        journal_path=None,
        workers: int = 1,
        cadence_s: Optional[float] = DEFAULT_CADENCE_S,
        pinned_code_version: Optional[str] = None,
    ) -> None:
        self.bus = MetricsBus()
        self.store = JobStore(journal_path)
        self.cache_dir = cache_dir
        self.workers = max(1, int(workers))
        self.cadence_s = cadence_s
        self.code_version = (
            pinned_code_version if pinned_code_version is not None else code_version()
        )

        self.metrics = MetricsRegistry()
        self._jobs_submitted = self.metrics.counter("serve.jobs_submitted")
        self._jobs_deduped = self.metrics.counter("serve.jobs_deduped")
        self._jobs_completed = self.metrics.counter("serve.jobs_completed")
        self._jobs_failed = self.metrics.counter("serve.jobs_failed")
        self._cells_executed = self.metrics.counter("serve.cells_executed")
        self._cells_cached = self.metrics.counter("serve.cells_cached")
        self._snapshots_published = self.metrics.counter("serve.snapshots_published")
        self.metrics.provider("bus", self.bus.stats)
        self.metrics.gauge(
            "serve.jobs_queued",
            lambda: sum(1 for j in self.store.list() if j.state == "queued"),
        )

        self._queue: queue.Queue = queue.Queue()
        self._stop = threading.Event()
        self._worker = threading.Thread(
            target=self._drain, name="repro-serve-worker", daemon=True
        )
        self._worker.start()
        # Jobs a previous process left queued (journal replay) re-enter
        # the queue in submission order.
        for job in self.store.pending():
            self._queue.put(job.id)

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, spec: dict) -> tuple[Job, bool]:
        """Expand, dedup, journal, and enqueue a job spec.

        Returns ``(job, created)``: ``created`` is False when an
        identical grid (same content-addressed cell set under the current
        code version) is already queued or running — the caller gets that
        job instead of a duplicate.  Completed jobs do *not* dedup at the
        job level: a re-POST makes a fresh job whose cells all answer
        from the result cache (zero recomputation), which is the
        freshness semantics a client polling for results expects.
        """
        tasks = expand_grid(spec)  # raises ValueError on malformed specs
        grid = grid_key(tasks, self.code_version)
        active = self.store.find_active(grid)
        if active is not None:
            self._jobs_deduped.inc()
            return active, False
        job = self.store.create(spec, grid, total=len(tasks))
        self._jobs_submitted.inc()
        self.bus.publish("job", {"state": job.state, "job": job.to_dict()}, job=job.id)
        self._queue.put(job.id)
        return job, True

    # ------------------------------------------------------------------
    # Worker
    # ------------------------------------------------------------------
    def _drain(self) -> None:
        while not self._stop.is_set():
            try:
                job_id = self._queue.get(timeout=0.1)
            except queue.Empty:
                continue
            if job_id is None:
                return
            try:
                self._run_job(job_id)
            except Exception as exc:  # noqa: BLE001 - job poisoned, service lives
                self.store.update(
                    job_id, state="failed",
                    error=f"{type(exc).__name__}: {exc}",
                )
                self._jobs_failed.inc()
                job = self.store.get(job_id)
                self.bus.publish(
                    "job", {"state": "failed", "job": job.to_dict()}, job=job_id,
                )

    def _run_job(self, job_id: str) -> None:
        job = self.store.get(job_id)
        if job is None or job.state not in ("queued",):
            return
        tasks = expand_grid(job.spec)
        self.store.update(job_id, state="running")
        self.bus.publish(
            "job", {"state": "running", "job": self.store.get(job_id).to_dict()},
            job=job_id,
        )

        def on_progress(event: dict) -> None:
            if event.get("event") in ("done", "cached", "failed"):
                self.store.update(job_id, completed=event.get("completed", 0))
            self.bus.publish("progress", event, job=job_id)

        def on_metrics(payload: dict) -> None:
            self._snapshots_published.inc()
            self.bus.publish("cell.metrics", payload, job=job_id)

        report = run_sweep(
            tasks,
            SweepConfig(
                workers=self.workers,
                cache_dir=self.cache_dir,
                code_version=self.code_version,
            ),
            progress=on_progress,
            metrics_hook=on_metrics if self.workers <= 1 else None,
            metrics_cadence_s=self.cadence_s,
        )

        self._cells_executed.inc(report.executed)
        self._cells_cached.inc(report.cache_hits)
        cells = [
            {"key": o.key, "label": o.task.display(), "status": o.status}
            for o in report.outcomes
        ]
        state = "done" if report.all_ok else "failed"
        error = None
        if not report.all_ok:
            error = "; ".join(
                f"{o.task.display()}: {o.error}" for o in report.failed[:5]
            )
        self.store.update(
            job_id, state=state, completed=len(report.outcomes),
            executed=report.executed, cache_hits=report.cache_hits,
            failed_cells=len(report.failed), wall_s=report.wall_s,
            error=error, cells=cells,
        )
        if report.all_ok:
            self._jobs_completed.inc()
        else:
            self._jobs_failed.inc()
        self.bus.publish(
            "job", {"state": state, "job": self.store.get(job_id).to_dict()},
            job=job_id,
        )

    # ------------------------------------------------------------------
    # Results / introspection
    # ------------------------------------------------------------------
    def job_results(self, job_id: str) -> Optional[dict]:
        """Per-cell results for a terminal job, read from the cache.

        Returns ``{"cells": [{key, label, status, result}, ...]}`` or
        None for unknown/non-terminal jobs or cacheless services.
        """
        job = self.store.get(job_id)
        if job is None or job.state not in ("done", "failed"):
            return None
        if self.cache_dir is None:
            return {"cells": [dict(c, result=None) for c in job.cells]}
        from repro.parallel.cache import ResultCache

        cache = ResultCache(self.cache_dir)
        return {
            "cells": [dict(c, result=cache.get(c["key"])) for c in job.cells]
        }

    def prometheus(self) -> str:
        from repro.obs.export import export_prometheus

        return export_prometheus(self.metrics)

    # ------------------------------------------------------------------
    def stop(self, timeout: float = 5.0) -> None:
        """Stop the worker after the current job (idempotent)."""
        self._stop.set()
        self._queue.put(None)
        if self._worker.is_alive():
            self._worker.join(timeout=timeout)
        self.store.close()
