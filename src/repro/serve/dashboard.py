"""The single-file browser dashboard served at ``GET /``.

Plain HTML + vanilla JS + inline SVG — no build step, no external
assets, works from ``file://``-hostile environments because everything
ships in one response.  It subscribes to the SSE firehose
(``GET /events``) and renders:

* stat tiles — jobs completed, cells executed / cached, bus drops;
* four titled single-series sparklines (live events/sec, accepted
  throughput, zone transitions, prediction hit rate) fed by
  ``cell.metrics`` snapshots;
* a job table with per-job progress bars.

Palette: categorical slots from the repo's validated chart palette
(CVD-checked in both modes), applied one hue per titled sparkline;
text always wears the text tokens, never a series color.  Dark mode is
its own validated step set selected via ``prefers-color-scheme`` (and a
``data-theme`` override), not an automatic flip.
"""

from __future__ import annotations

__all__ = ["DASHBOARD_HTML"]

DASHBOARD_HTML = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>repro.serve — live telemetry</title>
<style>
:root {
  --surface: #fcfcfb; --panel: #ffffff; --border: #e4e3df;
  --text: #0b0b0b; --text-2: #52514e;
  --s1: #2a78d6; --s2: #eb6834; --s3: #1baf7a; --s4: #eda100;
  --bad: #c43d31;
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface: #1a1a19; --panel: #222220; --border: #3a3936;
    --text: #ffffff; --text-2: #c3c2b7;
    --s1: #3987e5; --s2: #d95926; --s3: #199e70; --s4: #c98500;
    --bad: #e06156;
  }
}
[data-theme="light"] {
  --surface: #fcfcfb; --panel: #ffffff; --border: #e4e3df;
  --text: #0b0b0b; --text-2: #52514e;
  --s1: #2a78d6; --s2: #eb6834; --s3: #1baf7a; --s4: #eda100; --bad: #c43d31;
}
[data-theme="dark"] {
  --surface: #1a1a19; --panel: #222220; --border: #3a3936;
  --text: #ffffff; --text-2: #c3c2b7;
  --s1: #3987e5; --s2: #d95926; --s3: #199e70; --s4: #c98500; --bad: #e06156;
}
* { box-sizing: border-box; }
body {
  margin: 0; padding: 1.25rem; background: var(--surface); color: var(--text);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
}
h1 { font-size: 1.1rem; margin: 0 0 0.25rem; }
.sub { color: var(--text-2); margin: 0 0 1rem; font-size: 0.85rem; }
.grid { display: grid; gap: 0.75rem; grid-template-columns: repeat(auto-fit, minmax(170px, 1fr)); }
.tile, .chart, .jobs {
  background: var(--panel); border: 1px solid var(--border);
  border-radius: 8px; padding: 0.75rem 0.9rem;
}
.tile .k { color: var(--text-2); font-size: 0.75rem; text-transform: uppercase; letter-spacing: 0.04em; }
.tile .v { font-size: 1.5rem; font-weight: 600; font-variant-numeric: tabular-nums; }
.charts { display: grid; gap: 0.75rem; grid-template-columns: repeat(auto-fit, minmax(260px, 1fr)); margin-top: 0.75rem; }
.chart h2 { font-size: 0.8rem; margin: 0 0 0.15rem; color: var(--text-2); font-weight: 600; }
.chart .now { font-size: 1.1rem; font-weight: 600; font-variant-numeric: tabular-nums; }
.chart svg { display: block; width: 100%; height: 56px; margin-top: 0.3rem; }
.jobs { margin-top: 0.75rem; }
table { width: 100%; border-collapse: collapse; font-size: 0.85rem; }
th { text-align: left; color: var(--text-2); font-weight: 600; border-bottom: 1px solid var(--border); padding: 0.3rem 0.5rem; }
td { padding: 0.3rem 0.5rem; border-bottom: 1px solid var(--border); font-variant-numeric: tabular-nums; }
.bar { background: var(--border); border-radius: 3px; height: 8px; min-width: 90px; overflow: hidden; }
.bar > div { background: var(--s1); height: 100%; border-radius: 3px; }
.state-done { color: var(--s3); } .state-failed { color: var(--bad); }
.state-running { color: var(--s1); } .state-queued { color: var(--text-2); }
#conn { font-size: 0.8rem; color: var(--text-2); }
#conn.down { color: var(--bad); }
</style>
</head>
<body>
<h1>repro.serve — live telemetry</h1>
<p class="sub">PR-DRB simulation-as-a-service · SSE firehose <code>/events</code> ·
metrics <code>/metrics</code> · <span id="conn">connecting…</span></p>

<div class="grid">
  <div class="tile"><div class="k">Jobs done</div><div class="v" id="t-jobs">0</div></div>
  <div class="tile"><div class="k">Cells executed</div><div class="v" id="t-exec">0</div></div>
  <div class="tile"><div class="k">Cells from cache</div><div class="v" id="t-cache">0</div></div>
  <div class="tile"><div class="k">Bus events seen</div><div class="v" id="t-events">0</div></div>
  <div class="tile"><div class="k">Events dropped (me)</div><div class="v" id="t-drops">0</div></div>
</div>

<div class="charts">
  <div class="chart"><h2>Live events / sec</h2>
    <div class="now" id="n-eps">–</div><svg id="c-eps"></svg></div>
  <div class="chart"><h2>Accepted throughput (packets delivered)</h2>
    <div class="now" id="n-acc">–</div><svg id="c-acc"></svg></div>
  <div class="chart"><h2>Zone transitions (expand + shrink)</h2>
    <div class="now" id="n-zone">–</div><svg id="c-zone"></svg></div>
  <div class="chart"><h2>Prediction hit rate</h2>
    <div class="now" id="n-hit">–</div><svg id="c-hit"></svg></div>
</div>

<div class="jobs">
  <table>
    <thead><tr><th>Job</th><th>State</th><th>Progress</th><th>Cells</th>
      <th>Executed</th><th>Cached</th><th>Wall s</th></tr></thead>
    <tbody id="job-rows"><tr><td colspan="7" style="color:var(--text-2)">no jobs yet — POST a grid to /jobs</td></tr></tbody>
  </table>
</div>

<script>
"use strict";
const MAXPTS = 120;
const series = { eps: [], acc: [], zone: [], hit: [] };
const colors = { eps: "--s1", acc: "--s2", zone: "--s3", hit: "--s4" };
const jobs = new Map();
let eventCount = 0, gapDrops = 0, lastSeq = null, jobsDone = 0;
let cellsExec = 0, cellsCached = 0, windowEvents = 0;

function css(name) { return getComputedStyle(document.body).getPropertyValue(name).trim(); }

function push(key, value) {
  const s = series[key];
  s.push(value);
  if (s.length > MAXPTS) s.shift();
}

function spark(id, key, fmt) {
  const svg = document.getElementById("c-" + id);
  const s = series[key];
  const w = svg.clientWidth || 260, h = 56, pad = 5;
  svg.setAttribute("viewBox", `0 0 ${w} ${h}`);
  if (!s.length) { svg.innerHTML = ""; return; }
  const lo = Math.min(...s), hi = Math.max(...s), span = (hi - lo) || 1;
  const x = i => pad + i * (w - 2 * pad) / Math.max(s.length - 1, 1);
  const y = v => h - pad - (v - lo) * (h - 2 * pad) / span;
  const pts = s.map((v, i) => `${x(i).toFixed(1)},${y(v).toFixed(1)}`).join(" ");
  const c = css(colors[key]);
  const last = s[s.length - 1];
  svg.innerHTML =
    `<polyline points="${pts}" fill="none" stroke="${c}" stroke-width="2" ` +
    `stroke-linejoin="round" stroke-linecap="round"/>` +
    `<circle cx="${x(s.length - 1).toFixed(1)}" cy="${y(last).toFixed(1)}" r="4" ` +
    `fill="${c}" stroke="${css("--panel")}" stroke-width="2"/>`;
  document.getElementById("n-" + id).textContent = fmt(last);
  svg.onmousemove = (ev) => {
    const i = Math.max(0, Math.min(s.length - 1,
      Math.round((ev.offsetX - pad) / ((w - 2 * pad) / Math.max(s.length - 1, 1)))));
    svg.setAttribute("title", fmt(s[i]));
    document.getElementById("n-" + id).textContent = fmt(s[i]);
  };
  svg.onmouseleave = () => { document.getElementById("n-" + id).textContent = fmt(last); };
}

function fmtNum(v) { return v >= 100 ? v.toFixed(0) : v.toFixed(2); }
function fmtPct(v) { return (100 * v).toFixed(1) + "%"; }

function renderJobs() {
  const body = document.getElementById("job-rows");
  if (!jobs.size) return;
  const rows = [...jobs.values()].reverse().map(j => {
    const pct = j.total ? Math.round(100 * j.completed / j.total) : 0;
    return `<tr><td>${j.id}</td>` +
      `<td class="state-${j.state}">${j.state}</td>` +
      `<td><div class="bar"><div style="width:${pct}%"></div></div></td>` +
      `<td>${j.completed}/${j.total}</td><td>${j.executed}</td>` +
      `<td>${j.cache_hits}</td><td>${(j.wall_s || 0).toFixed(2)}</td></tr>`;
  });
  body.innerHTML = rows.join("");
}

function renderTiles() {
  document.getElementById("t-jobs").textContent = jobsDone;
  document.getElementById("t-exec").textContent = cellsExec;
  document.getElementById("t-cache").textContent = cellsCached;
  document.getElementById("t-events").textContent = eventCount;
  document.getElementById("t-drops").textContent = gapDrops;
}

function handle(ev) {
  let msg;
  try { msg = JSON.parse(ev.data); } catch (e) { return; }
  eventCount += 1; windowEvents += 1;
  if (lastSeq !== null && msg.seq > lastSeq + 1) gapDrops += msg.seq - lastSeq - 1;
  lastSeq = msg.seq;
  const d = msg.data || {};
  if (msg.type === "job" && d.job) {
    jobs.set(d.job.id, d.job);
    if (d.state === "done" || d.state === "failed") {
      if (d.state === "done") jobsDone += 1;
      cellsExec += d.job.executed || 0;
      cellsCached += d.job.cache_hits || 0;
    }
    renderJobs();
  } else if (msg.type === "progress" && msg.job && jobs.has(msg.job)) {
    const j = jobs.get(msg.job);
    if (d.completed !== undefined) j.completed = d.completed;
    renderJobs();
  } else if (msg.type === "cell.metrics" && d.snapshot) {
    const snap = d.snapshot, g = snap.gauges || {}, p = snap.policy || {};
    if (g["fabric.data_packets_delivered"] !== undefined)
      push("acc", g["fabric.data_packets_delivered"]);
    if (p.expansions !== undefined)
      push("zone", (p.expansions || 0) + (p.shrinks || 0));
    if (snap.solution_db && snap.solution_db.hit_rate !== undefined)
      push("hit", snap.solution_db.hit_rate);
    spark("acc", "acc", fmtNum);
    spark("zone", "zone", fmtNum);
    spark("hit", "hit", fmtPct);
  }
  renderTiles();
}

const es = new EventSource("/events");
const conn = document.getElementById("conn");
for (const t of ["job", "progress", "cell.metrics", "state"])
  es.addEventListener(t, handle);
es.onopen = () => { conn.textContent = "live"; conn.classList.remove("down"); };
es.onerror = () => { conn.textContent = "reconnecting…"; conn.classList.add("down"); };

setInterval(() => {
  push("eps", windowEvents); windowEvents = 0;
  spark("eps", "eps", fmtNum);
  renderTiles();
}, 1000);

fetch("/jobs").then(r => r.json()).then(list => {
  for (const j of list.jobs || []) {
    jobs.set(j.id, j);
    if (j.state === "done") {
      jobsDone += 1; cellsExec += j.executed || 0; cellsCached += j.cache_hits || 0;
    }
  }
  renderJobs(); renderTiles();
}).catch(() => {});
</script>
</body>
</html>
"""
