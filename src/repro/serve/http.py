"""HTTP/SSE surface over a :class:`~repro.serve.service.SimulationService`.

Stdlib only: ``http.server.ThreadingHTTPServer`` with one handler thread
per connection, which is exactly the shape SSE needs — each subscriber
parks its thread on its own bounded bus queue while the single service
worker thread runs simulations undisturbed.

Routes
------
====================================  =================================
``GET  /``                            the single-file dashboard
``GET  /healthz``                     liveness probe
``POST /jobs``                        submit a job spec (JSON body)
``GET  /jobs``                        list jobs
``GET  /jobs/<id>``                   one job record
``GET  /jobs/<id>/results``           terminal job's per-cell results
``GET  /jobs/<id>/events``            SSE stream scoped to one job
``GET  /events``                      SSE firehose (every bus event)
``GET  /metrics``                     Prometheus text exposition
====================================  =================================

SSE framing: each bus event becomes ``event: <type>`` / ``id: <seq>`` /
``data: <json>`` blocks; ``: ping`` comments keep idle connections alive.
Streams accept ``?limit=N`` (close after N bus events) and ``?idle=S``
(close after S seconds without an event) so tests and curl sessions
terminate deterministically.  A stream always opens with a synthetic
``state`` event carrying the current job record (or, on the firehose,
the service stats), so late subscribers see terminal jobs immediately.

Wall-clock readings here are confined to connection plumbing (idle
timeouts, heartbeat pacing) — they never feed a simulation, hence the
explicit ``# repro: allow(no-wall-clock)`` suppressions.
"""

from __future__ import annotations

import json
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional
from urllib.parse import parse_qs, urlparse

from repro.serve.dashboard import DASHBOARD_HTML
from repro.serve.service import SimulationService

__all__ = ["ServeHTTPServer", "make_server"]

#: consumer-side poll granularity; also bounds heartbeat latency.
_POLL_S = 0.25
#: seconds between ``: ping`` comments on an otherwise idle stream.
_HEARTBEAT_S = 5.0


class ServeHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that owns a reference to the service."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, service: SimulationService) -> None:
        super().__init__(address, _Handler)
        self.service = service


def make_server(
    service: SimulationService, host: str = "127.0.0.1", port: int = 8321
) -> ServeHTTPServer:
    """Bind (but do not start) the HTTP server; port 0 picks a free port."""
    return ServeHTTPServer((host, port), service)


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    # quiet: one log line per request is noise under SSE + polling tests
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass

    @property
    def service(self) -> SimulationService:
        return self.server.service  # type: ignore[attr-defined]

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _send_json(self, payload: dict, status: int = 200) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, text: str, content_type: str, status: int = 200) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._send_json({"error": message}, status=status)

    def _read_body(self) -> Optional[dict]:
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            return None
        if length <= 0 or length > 1 << 20:
            return None
        try:
            return json.loads(self.rfile.read(length).decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            return None

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        query = parse_qs(url.query)
        try:
            if not parts:
                self._send_text(DASHBOARD_HTML, "text/html; charset=utf-8")
            elif parts == ["healthz"]:
                self._send_json({"ok": True})
            elif parts == ["metrics"]:
                self._send_text(
                    self.service.prometheus(),
                    "text/plain; version=0.0.4; charset=utf-8",
                )
            elif parts == ["events"]:
                self._stream(job_id=None, query=query)
            elif parts == ["jobs"]:
                self._send_json(
                    {"jobs": [job.to_dict() for job in self.service.store.list()]}
                )
            elif len(parts) == 2 and parts[0] == "jobs":
                job = self.service.store.get(parts[1])
                if job is None:
                    self._error(404, f"no such job {parts[1]!r}")
                else:
                    self._send_json(job.to_dict())
            elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "events":
                if self.service.store.get(parts[1]) is None:
                    self._error(404, f"no such job {parts[1]!r}")
                else:
                    self._stream(job_id=parts[1], query=query)
            elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "results":
                results = self.service.job_results(parts[1])
                if results is None:
                    self._error(404, f"no terminal job {parts[1]!r}")
                else:
                    self._send_json(results)
            else:
                self._error(404, f"unknown path {url.path!r}")
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-response; nothing to clean up

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        try:
            if parts == ["jobs"]:
                spec = self._read_body()
                if spec is None:
                    self._error(400, "body must be a JSON object job spec")
                    return
                try:
                    job, created = self.service.submit(spec)
                except ValueError as exc:
                    self._error(400, str(exc))
                    return
                self._send_json(
                    {"job": job.to_dict(), "created": created},
                    status=201 if created else 200,
                )
            else:
                self._error(404, f"unknown path {url.path!r}")
        except (BrokenPipeError, ConnectionResetError):
            pass

    # ------------------------------------------------------------------
    # SSE
    # ------------------------------------------------------------------
    def _stream(self, job_id: Optional[str], query: dict) -> None:
        """Fan bus events to this connection until limit/idle/disconnect.

        The subscription's queue is bounded: if this thread stalls (slow
        client, dead TCP peer not yet detected), ``publish`` drops events
        for this subscriber only and counts them — the simulation worker
        never waits on us.
        """

        def _int_param(name: str, default: Optional[int]) -> Optional[int]:
            raw = query.get(name, [None])[0]
            return default if raw is None else max(1, int(raw))

        def _float_param(name: str, default: Optional[float]) -> Optional[float]:
            raw = query.get(name, [None])[0]
            return default if raw is None else max(0.1, float(raw))

        try:
            limit = _int_param("limit", None)
            idle_s = _float_param("idle", None)
        except ValueError:
            self._error(400, "limit/idle must be numeric")
            return

        service = self.service
        sub = service.bus.subscribe(job=job_id)
        try:
            self.send_response(200)
            self.send_header("Content-Type", "text/event-stream")
            self.send_header("Cache-Control", "no-store")
            self.send_header("Connection", "close")
            self.end_headers()

            # Opening state frame: late subscribers see where things stand.
            if job_id is not None:
                job = service.store.get(job_id)
                state = {"job": None if job is None else job.to_dict()}
            else:
                state = {
                    "stats": service.bus.stats(),
                    "jobs": [j.to_dict() for j in service.store.list()],
                }
            self._write_frame("state", 0, state)

            sent = 0
            last_activity = time.monotonic()  # repro: allow(no-wall-clock)
            last_beat = last_activity
            while limit is None or sent < limit:
                event = sub.get(timeout=_POLL_S)
                now = time.monotonic()  # repro: allow(no-wall-clock)
                if event is None:
                    if idle_s is not None and now - last_activity > idle_s:
                        break
                    if now - last_beat > _HEARTBEAT_S:
                        self.wfile.write(b": ping\n\n")
                        self.wfile.flush()
                        last_beat = now
                    continue
                self._write_frame(event["type"], event["seq"], event)
                sent += 1
                last_activity = last_beat = now
        except (BrokenPipeError, ConnectionResetError, OSError):
            pass  # disconnect is the normal way an SSE stream ends
        finally:
            service.bus.unsubscribe(sub)

    def _write_frame(self, event_type: str, seq: int, payload: dict) -> None:
        data = json.dumps(payload, sort_keys=True)
        frame = f"event: {event_type}\nid: {seq}\ndata: {data}\n\n"
        self.wfile.write(frame.encode("utf-8"))
        self.wfile.flush()
