"""repro.serve — simulation-as-a-service with a live telemetry plane.

A stdlib-only HTTP service (``http.server.ThreadingHTTPServer``; no new
dependencies) that accepts :class:`~repro.parallel.tasks.SimTask` grids
as JSON jobs, executes them through the :mod:`repro.parallel` sweep
orchestrator against the content-addressed result cache, and streams
progress plus per-cell metrics snapshots to any number of subscribers
over Server-Sent Events.

Pieces
------
* :mod:`repro.serve.jobs` — declarative grid expansion, job records, and
  the crash-safe JSONL job journal;
* :mod:`repro.serve.service` — :class:`SimulationService`: the worker
  thread that drains the job queue through ``run_sweep`` and publishes
  telemetry into a :class:`~repro.obs.bus.MetricsBus`;
* :mod:`repro.serve.http` — the HTTP/SSE surface (``POST /jobs``,
  ``GET /jobs/<id>/events``, ``GET /events``, ``GET /metrics``,
  ``GET /`` dashboard);
* ``python -m repro.serve`` — CLI (``--port``, ``--cache-dir``,
  ``--journal``, ``--selftest``).

House invariant (docs/serving.md): serving is *observer-only*.  A cell
executed with the telemetry plane attached produces bit-identical
event/metric digests to the same cell run bare, and a slow or
disconnected SSE subscriber only ever increments a drop counter — it
never stalls the simulation (same contract as the Tracer ring).
"""

from repro.serve.jobs import Job, JobStore, expand_grid, grid_key
from repro.serve.service import SimulationService
from repro.serve.http import make_server

__all__ = [
    "Job",
    "JobStore",
    "SimulationService",
    "expand_grid",
    "grid_key",
    "make_server",
]
