"""CLI: ``python -m repro.serve`` — run the service, or prove it harmless.

``python -m repro.serve --port 8321 --cache-dir .repro_cache``
    Serve until interrupted: job API + SSE telemetry + dashboard.

``python -m repro.serve --selftest``
    End-to-end smoke on an ephemeral port (exit 0 iff all hold):

    1. POST a pinned ``mesh:4`` two-cell replay grid; watch its SSE
       stream and require progress events, per-cell metrics snapshots,
       and a terminal ``done`` state.
    2. Re-POST the identical grid and require **zero** recomputed cells
       — every cell answers from the content-addressed result cache.
    3. Fetch the per-cell results and require the event/metric digests
       to be bit-identical to a direct in-process
       :func:`repro.analysis.replay.run_scenario` — serving is
       observer-only.
    4. Scrape ``GET /metrics`` and validate every line against the
       Prometheus text exposition grammar.
    5. Attach a deliberately tiny (maxsize=1), never-read bus
       subscription, run another job, and require that the job still
       completes while only the subscriber's drop counter grows — a
       slow consumer must never stall the simulation.

The selftest is the CI ``serve-smoke`` gate and doubles as living
documentation of the service contract (docs/serving.md).
"""

from __future__ import annotations

import argparse
import json
import re
import sys
import threading
import time
import urllib.request
from typing import Optional, Sequence

from repro.serve.http import make_server
from repro.serve.service import SimulationService

#: the pinned smoke grid: small, fast, and deterministic.
SMOKE_SPEC = {
    "kind": "replay",
    "policies": ["pr-drb", "deterministic"],
    "seeds": [0],
    "mesh_side": 4,
    "repetitions": 2,
}

_PROM_LINE = re.compile(
    r"^(# (TYPE|HELP) [a-zA-Z_:][a-zA-Z0-9_:]* .+"
    r"|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? "
    r"([-+]?[0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?|[-+]?(inf|nan)))$"
)


def _get_json(base: str, path: str) -> dict:
    with urllib.request.urlopen(base + path, timeout=10) as response:
        return json.loads(response.read().decode("utf-8"))


def _post_json(base: str, path: str, payload: dict) -> dict:
    body = json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        base + path, data=body, headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return json.loads(response.read().decode("utf-8"))


def _read_sse(base: str, path: str, max_s: float = 30.0) -> list[dict]:
    """Collect ``(event, payload)`` frames until the server closes us."""
    frames: list[dict] = []
    deadline = time.monotonic() + max_s  # repro: allow(no-wall-clock)
    with urllib.request.urlopen(base + path, timeout=max_s) as response:
        event_type, data = None, None
        for raw in response:
            if time.monotonic() > deadline:  # repro: allow(no-wall-clock)
                break
            line = raw.decode("utf-8").rstrip("\n")
            if line.startswith(":"):
                continue
            if line.startswith("event: "):
                event_type = line[len("event: "):]
            elif line.startswith("data: "):
                data = line[len("data: "):]
            elif line == "" and event_type is not None and data is not None:
                frames.append({"event": event_type, "payload": json.loads(data)})
                event_type, data = None, None
    return frames


def _wait_terminal(base: str, job_id: str, max_s: float = 30.0) -> dict:
    deadline = time.monotonic() + max_s  # repro: allow(no-wall-clock)
    while time.monotonic() < deadline:  # repro: allow(no-wall-clock)
        job = _get_json(base, f"/jobs/{job_id}")
        if job["state"] in ("done", "failed"):
            return job
        time.sleep(0.1)
    raise AssertionError(f"job {job_id} did not reach a terminal state in {max_s}s")


def run_selftest(cache_dir: str, journal_path: str) -> int:
    from repro.analysis.replay import run_scenario

    service = SimulationService(cache_dir=cache_dir, journal_path=journal_path)
    server = make_server(service, host="127.0.0.1", port=0)
    base = f"http://127.0.0.1:{server.server_address[1]}"
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    failures = []

    def check(name: str, ok: bool, detail: str = "") -> None:
        status = "ok" if ok else "FAIL"
        print(f"[serve-smoke] {status:4s} {name}" + (f" — {detail}" if detail else ""))
        if not ok:
            failures.append(name)

    try:
        health = _get_json(base, "/healthz")
        check("healthz", health.get("ok") is True)

        # 1. Submit the pinned grid and watch its SSE stream live.
        submitted = _post_json(base, "/jobs", SMOKE_SPEC)
        job_id = submitted["job"]["id"]
        check("submit", submitted["created"] is True, job_id)
        frames = _read_sse(base, f"/jobs/{job_id}/events?idle=3")
        kinds = [f["event"] for f in frames]
        check("sse.state-frame", bool(kinds) and kinds[0] == "state")
        check("sse.progress", "progress" in kinds, f"{kinds.count('progress')} frames")
        check(
            "sse.cell-metrics", "cell.metrics" in kinds,
            f"{kinds.count('cell.metrics')} snapshots",
        )
        terminal = [
            f for f in frames
            if f["event"] == "job" and f["payload"]["data"]["state"] in ("done", "failed")
        ]
        job = _wait_terminal(base, job_id)
        check("job.done", job["state"] == "done", job.get("error") or "")
        check(
            "sse.terminal", bool(terminal) or job["state"] == "done",
            "terminal job event observed" if terminal else "via poll",
        )
        check("job.executed", job["executed"] == 2, f"executed={job['executed']}")

        # 2. Identical re-POST: zero recomputation, all cells from cache.
        resubmitted = _post_json(base, "/jobs", SMOKE_SPEC)
        rejob = _wait_terminal(base, resubmitted["job"]["id"])
        check(
            "dedup.zero-recompute",
            rejob["state"] == "done" and rejob["executed"] == 0
            and rejob["cache_hits"] == 2,
            f"executed={rejob['executed']} cache_hits={rejob['cache_hits']}",
        )

        # 3. Serving is observer-only: digests match a direct serial run.
        results = _get_json(base, f"/jobs/{job_id}/results")
        by_label = {c["label"]: c["result"] for c in results["cells"]}
        digests_ok = True
        for policy in SMOKE_SPEC["policies"]:
            direct = run_scenario(
                seed=0, policy=policy,
                mesh_side=SMOKE_SPEC["mesh_side"],
                repetitions=SMOKE_SPEC["repetitions"],
            ).to_dict()
            served = by_label[f"replay:{policy}/seed0"]
            if (
                served["events"] != direct["events"]
                or served["metrics"] != direct["metrics"]
            ):
                digests_ok = False
        check("digests.bit-identical", digests_ok)

        # 4. Prometheus exposition grammar.
        with urllib.request.urlopen(base + "/metrics", timeout=10) as response:
            text = response.read().decode("utf-8")
        bad = [
            line for line in text.splitlines()
            if line.strip() and not _PROM_LINE.match(line)
        ]
        check(
            "metrics.prometheus-syntax", not bad and "serve_jobs_submitted" in text,
            bad[0] if bad else f"{len(text.splitlines())} lines",
        )

        # 5. A stalled subscriber only drops; the simulation never waits.
        stalled = service.bus.subscribe(maxsize=1)
        slow_spec = dict(SMOKE_SPEC, seeds=[1])
        slow = _post_json(base, "/jobs", slow_spec)
        slow_job = _wait_terminal(base, slow["job"]["id"])
        check(
            "slow-subscriber.drops-only",
            slow_job["state"] == "done" and stalled.dropped > 0,
            f"dropped={stalled.dropped}",
        )
        service.bus.unsubscribe(stalled)
    finally:
        server.shutdown()
        server.server_close()
        service.stop()

    if failures:
        print(f"[serve-smoke] FAILED: {', '.join(failures)}", file=sys.stderr)
        return 1
    print("[serve-smoke] all checks passed")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Simulation-as-a-service: job API, SSE telemetry, "
        "dashboard (docs/serving.md).",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8321)
    parser.add_argument("--cache-dir", default=".repro_cache",
                        help="content-addressed result cache (dedup across jobs)")
    parser.add_argument("--journal", default=None,
                        help="job journal JSONL (default: <cache-dir>/jobs.jsonl)")
    parser.add_argument("--workers", type=int, default=1,
                        help="sweep workers per job; >1 loses per-cell "
                        "metrics snapshots (hooks cannot cross processes)")
    parser.add_argument("--cadence", type=float, default=1e-4,
                        help="sim-time seconds between per-cell metrics snapshots")
    parser.add_argument("--selftest", action="store_true",
                        help="run the end-to-end smoke on an ephemeral port")
    args = parser.parse_args(argv)

    if args.selftest:
        import tempfile

        with tempfile.TemporaryDirectory(prefix="repro-serve-smoke-") as tmp:
            return run_selftest(f"{tmp}/cache", f"{tmp}/jobs.jsonl")

    import os

    os.makedirs(args.cache_dir, exist_ok=True)
    journal = args.journal or os.path.join(args.cache_dir, "jobs.jsonl")
    service = SimulationService(
        cache_dir=args.cache_dir, journal_path=journal,
        workers=args.workers, cadence_s=args.cadence,
    )
    server = make_server(service, host=args.host, port=args.port)
    actual_port = server.server_address[1]
    print(
        f"repro.serve on http://{args.host}:{actual_port} "
        f"(cache={args.cache_dir}, journal={journal}, workers={args.workers})",
        file=sys.stderr,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.server_close()
        service.stop()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
