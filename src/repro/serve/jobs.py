"""Job records, declarative grid expansion, and the JSONL job journal.

A *job* is one ``POST /jobs`` submission: a declarative spec that expands
into a list of :class:`~repro.parallel.tasks.SimTask` cells (the same
spec vocabulary the ``python -m repro.parallel`` CLI builds from flags).
Two spec shapes are accepted:

Explicit task list::

    {"tasks": [{"kind": "replay", "params": {...}, "label": "..."}, ...]}

Policy x seed grid (mirrors the parallel CLI)::

    {"kind": "replay",                  # replay | fault | hotspot | pattern
     "policies": ["pr-drb", "deterministic"],
     "seeds": [0, 1],                   # or an int N -> seeds 0..N-1
     "mesh_side": 4, "repetitions": 3,  # replay/fault knobs
     "ack_loss": 0.1,                   # fault knob
     "params": {...}}                   # extra per-cell params (hotspot/
                                        # pattern need topology etc. here)

Job identity is content-addressed like everything else in the stack:
:func:`grid_key` hashes the sorted cell keys (which already fold in the
code version), so two submissions that expand to the same cells — however
the specs were spelled — share an identity and the service can answer a
repeat while the first copy is still in flight.

The :class:`JobStore` journal is an append-only JSONL file: one line per
state change, replayed on construction.  Jobs recorded ``running`` when
the process died reload as ``queued`` — the cells they did finish are in
the result cache, so the re-run costs one cache lookup per finished cell.
"""

from __future__ import annotations

import hashlib
import json
import threading
from dataclasses import dataclass, field
from typing import Optional

from repro.parallel.tasks import SimTask, canonical_json, task_key

__all__ = ["Job", "JobStore", "expand_grid", "grid_key", "JOB_STATES"]

#: legal job lifecycle states, in order.
JOB_STATES = ("queued", "running", "done", "failed")

_DEFAULT_POLICIES = ("deterministic", "drb", "pr-drb", "fr-drb")

#: task kinds a job spec may reference (``selftest`` is the orchestrator
#: test double and stays CLI/test-only).
SERVABLE_KINDS = ("replay", "fault", "hotspot", "pattern")


def _parse_seeds(raw) -> list[int]:
    """``4`` -> ``[0, 1, 2, 3]``; a list passes through as ints."""
    if isinstance(raw, bool):
        raise ValueError("seeds must be an int or a list of ints")
    if isinstance(raw, int):
        if raw < 1:
            raise ValueError("seed count must be >= 1")
        return list(range(raw))
    if isinstance(raw, (list, tuple)):
        return [int(seed) for seed in raw]
    raise ValueError("seeds must be an int or a list of ints")


def expand_grid(spec: dict) -> list[SimTask]:
    """Expand a job spec into its :class:`SimTask` cells.

    Raises ``ValueError`` for anything malformed — the HTTP layer turns
    that into a 400 so bad specs never reach the queue.
    """
    if not isinstance(spec, dict):
        raise ValueError("job spec must be a JSON object")

    if "tasks" in spec:
        raw_tasks = spec["tasks"]
        if not isinstance(raw_tasks, list) or not raw_tasks:
            raise ValueError("'tasks' must be a non-empty list")
        tasks = []
        for index, raw in enumerate(raw_tasks):
            if not isinstance(raw, dict) or "kind" not in raw:
                raise ValueError(f"tasks[{index}] must be an object with 'kind'")
            kind = str(raw["kind"])
            if kind not in SERVABLE_KINDS:
                raise ValueError(
                    f"tasks[{index}].kind {kind!r} not servable; "
                    f"allowed: {list(SERVABLE_KINDS)}"
                )
            tasks.append(
                SimTask(
                    kind=kind,
                    params=dict(raw.get("params", {})),
                    label=str(raw.get("label", "")),
                )
            )
        return tasks

    kind = str(spec.get("kind", "replay"))
    if kind not in SERVABLE_KINDS:
        raise ValueError(f"kind {kind!r} not servable; allowed: {list(SERVABLE_KINDS)}")
    policies = [str(p) for p in spec.get("policies", _DEFAULT_POLICIES)]
    if not policies:
        raise ValueError("'policies' must be non-empty")
    seeds = _parse_seeds(spec.get("seeds", 1))
    extra = dict(spec.get("params", {}))

    tasks = []
    for policy in policies:
        for seed in seeds:
            if kind == "replay":
                params = {
                    **extra,
                    "policy": policy,
                    "seed": seed,
                    "mesh_side": int(spec.get("mesh_side", 4)),
                    "repetitions": int(spec.get("repetitions", 3)),
                }
            elif kind == "fault":
                params = {
                    "policy": policy,
                    "spec": {
                        **extra,
                        "seed": seed,
                        "mesh_side": int(spec.get("mesh_side", 4)),
                        "repetitions": int(spec.get("repetitions", 3)),
                        "ack_loss": float(spec.get("ack_loss", 0.1)),
                    },
                }
            else:  # hotspot / pattern need their workload knobs in params
                if "topology" not in extra:
                    raise ValueError(
                        f"{kind} grids need params.topology (e.g. 'mesh:8')"
                    )
                params = {**extra, "policy": policy, "seed": seed}
            tasks.append(
                SimTask(kind=kind, params=params, label=f"{kind}:{policy}/seed{seed}")
            )
    return tasks


def grid_key(tasks: list[SimTask], version: str) -> str:
    """Content-addressed identity of a cell set (order-insensitive)."""
    keys = sorted(task_key(task, version) for task in tasks)
    sha = hashlib.sha256()
    for key in keys:
        sha.update(key.encode("ascii"))
        sha.update(b"\0")
    return sha.hexdigest()[:16]


@dataclass
class Job:
    """One submission's lifecycle record."""

    id: str
    spec: dict
    grid_key: str
    state: str = "queued"
    total: int = 0
    completed: int = 0
    executed: int = 0
    cache_hits: int = 0
    failed_cells: int = 0
    wall_s: float = 0.0
    error: Optional[str] = None
    #: terminal per-cell summaries: [{key, label, status}, ...]
    cells: list = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "id": self.id,
            "spec": self.spec,
            "grid_key": self.grid_key,
            "state": self.state,
            "total": self.total,
            "completed": self.completed,
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "failed_cells": self.failed_cells,
            "wall_s": self.wall_s,
            "error": self.error,
            "cells": list(self.cells),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Job":
        return cls(
            id=str(data["id"]),
            spec=dict(data["spec"]),
            grid_key=str(data["grid_key"]),
            state=str(data.get("state", "queued")),
            total=int(data.get("total", 0)),
            completed=int(data.get("completed", 0)),
            executed=int(data.get("executed", 0)),
            cache_hits=int(data.get("cache_hits", 0)),
            failed_cells=int(data.get("failed_cells", 0)),
            wall_s=float(data.get("wall_s", 0.0)),
            error=data.get("error"),
            cells=list(data.get("cells", [])),
        )


class JobStore:
    """Thread-safe job table with an append-only JSONL journal.

    Every mutation appends one journal line (``{"op": "job", ...}`` full
    snapshots — jobs are small, so snapshot-per-change beats a delta
    format for replay simplicity).  On construction the journal is
    replayed: the last snapshot per id wins, and any job left ``running``
    by a dead process reverts to ``queued`` so the service re-runs it —
    the result cache makes the re-run answer finished cells for free.
    """

    def __init__(self, journal_path=None) -> None:
        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}
        self._order: list[str] = []
        self._seq = 0
        self._journal_path = journal_path
        self._journal_fh = None
        if journal_path is not None:
            self._replay_journal()
            self._journal_fh = open(journal_path, "a", encoding="utf-8")

    # ------------------------------------------------------------------
    def _replay_journal(self) -> None:
        try:
            fh = open(self._journal_path, "r", encoding="utf-8")
        except FileNotFoundError:
            return
        with fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    obj = json.loads(line)
                except ValueError:
                    continue  # torn tail line from a crash mid-write
                if obj.get("op") != "job":
                    continue
                job = Job.from_dict(obj["job"])
                if job.id not in self._jobs:
                    self._order.append(job.id)
                self._jobs[job.id] = job
        for job in self._jobs.values():
            if job.state == "running":
                # The process died mid-job; requeue (cells already done
                # are in the result cache).
                job.state = "queued"
                job.completed = 0
        self._seq = len(self._order)

    def _journal(self, job: Job) -> None:
        if self._journal_fh is None:
            return
        line = json.dumps(
            {"op": "job", "job": job.to_dict()},
            sort_keys=True, separators=(",", ":"),
        )
        self._journal_fh.write(line + "\n")
        self._journal_fh.flush()

    # ------------------------------------------------------------------
    def create(self, spec: dict, grid: str, total: int) -> Job:
        with self._lock:
            self._seq += 1
            job = Job(
                id=f"job-{self._seq:06d}-{grid[:8]}",
                spec=spec, grid_key=grid, total=total,
            )
            self._jobs[job.id] = job
            self._order.append(job.id)
            self._journal(job)
            return job

    def update(self, job_id: str, **fields) -> Job:
        with self._lock:
            job = self._jobs[job_id]
            for name, value in fields.items():
                if not hasattr(job, name):
                    raise AttributeError(f"Job has no field {name!r}")
                setattr(job, name, value)
            self._journal(job)
            return job

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def list(self) -> list[Job]:
        with self._lock:
            return [self._jobs[job_id] for job_id in self._order]

    def find_active(self, grid: str) -> Optional[Job]:
        """A queued/running job with this grid identity, if any."""
        with self._lock:
            for job_id in self._order:
                job = self._jobs[job_id]
                if job.grid_key == grid and job.state in ("queued", "running"):
                    return job
        return None

    def pending(self) -> list[Job]:
        with self._lock:
            return [
                self._jobs[job_id] for job_id in self._order
                if self._jobs[job_id].state == "queued"
            ]

    def close(self) -> None:
        if self._journal_fh is not None and not self._journal_fh.closed:
            self._journal_fh.close()


def spec_digest(spec: dict) -> str:
    """Hash of the raw spec text (diagnostics only; identity is grid_key)."""
    return hashlib.sha256(canonical_json(spec).encode("utf-8")).hexdigest()[:16]
