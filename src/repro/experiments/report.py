"""Paper-vs-measured reporting.

Every scenario returns an :class:`ExperimentResult`: the experiment id
(table/figure number in the thesis), the paper's claim, measured rows and
shape checks.  ``format_table`` renders aligned plain text for the bench
output and EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def format_table(rows: list[dict]) -> str:
    """Render dict rows as an aligned text table."""
    if not rows:
        return "(no rows)"
    columns = list(rows[0].keys())
    for row in rows[1:]:
        for key in row:
            if key not in columns:
                columns.append(key)
    table = [[str(r.get(c, "")) for c in columns] for r in rows]
    widths = [
        max(len(c), *(len(line[i]) for line in table)) for i, c in enumerate(columns)
    ]
    out = ["  ".join(c.ljust(w) for c, w in zip(columns, widths))]
    out.append("  ".join("-" * w for w in widths))
    for line in table:
        out.append("  ".join(v.ljust(w) for v, w in zip(line, widths)))
    return "\n".join(out)


@dataclass
class ExperimentResult:
    """One regenerated table/figure."""

    experiment_id: str
    title: str
    paper_claim: str
    rows: list[dict] = field(default_factory=list)
    #: (check name, passed) shape assertions.
    checks: list[tuple[str, bool]] = field(default_factory=list)
    notes: str = ""

    @property
    def passed(self) -> bool:
        return all(ok for _, ok in self.checks)

    def check(self, name: str, ok: bool) -> None:
        self.checks.append((name, bool(ok)))

    def render(self) -> str:
        lines = [
            f"== {self.experiment_id}: {self.title} ==",
            f"paper: {self.paper_claim}",
            format_table(self.rows),
        ]
        for name, ok in self.checks:
            lines.append(f"[{'ok' if ok else 'FAIL'}] {name}")
        if self.notes:
            lines.append(f"note: {self.notes}")
        return "\n".join(lines)

    def print(self) -> None:  # pragma: no cover - console convenience
        print(self.render())
