"""Policy-comparison runner (§4.3 evaluation method).

Runs the *same* workload (same seeds, same injection times) under each
routing policy and collects the quantities Chapter 4 plots: global average
latency (Eq. 4.2), windowed latency series, per-router contention latency,
latency-map surfaces, execution time for trace replays, and the predictive
policies' pattern statistics.  Multiple seeds are averaged as in §4.3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.experiments.stats import ConfidenceInterval, confidence_interval
from repro.metrics.recorder import StatsRecorder
from repro.network.config import NetworkConfig
from repro.network.fabric import DESTINATION_BASED, Fabric
from repro.mpi.runtime import TraceRuntime
from repro.routing import make_policy
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.topology.base import Topology
from repro.traffic.bursty import BurstSchedule
from repro.traffic.generators import HotSpotFlow, HotSpotWorkload, SyntheticTrafficSource
from repro.traffic.patterns import make_pattern


@dataclass
class PolicyRun:
    """Everything measured for one policy under one workload."""

    policy_name: str
    global_latency_s: float
    mean_latency_s: float
    p99_latency_s: float
    execution_time_s: float
    contention_map: dict[int, float]
    latency_series: tuple[np.ndarray, np.ndarray]
    router_series: dict[int, tuple[np.ndarray, np.ndarray]]
    policy_stats: dict
    accepted_ratio: float
    seeds: int = 1
    #: 95 % CI of the global latency over seeds (§4.3); zero-width for
    #: single-seed runs.
    global_latency_ci: Optional[ConfidenceInterval] = None

    @property
    def map_peak_s(self) -> float:
        return max(self.contention_map.values(), default=0.0)

    @property
    def map_mean_s(self) -> float:
        values = list(self.contention_map.values())
        return float(np.mean(values)) if values else 0.0

    def row(self) -> dict:
        return {
            "policy": self.policy_name,
            "global_latency_us": round(self.global_latency_s * 1e6, 3),
            "map_peak_us": round(self.map_peak_s * 1e6, 3),
            "exec_time_ms": round(self.execution_time_s * 1e3, 4),
            "accepted": round(self.accepted_ratio, 3),
        }


def improvement(baseline: float, value: float) -> float:
    """Relative reduction of ``value`` vs ``baseline`` (0.2 = 20 % better)."""
    if baseline <= 0:
        return 0.0
    return (baseline - value) / baseline


def _average_runs(runs: list[PolicyRun]) -> PolicyRun:
    """Average per-seed runs (§4.3: repeated simulations, averaged)."""
    first = runs[0]
    if len(runs) == 1:
        return first
    maps: dict[int, list[float]] = {}
    for r in runs:
        for k, v in r.contention_map.items():
            maps.setdefault(k, []).append(v)
    ci = confidence_interval([r.global_latency_s for r in runs])
    return PolicyRun(
        policy_name=first.policy_name,
        global_latency_s=float(np.mean([r.global_latency_s for r in runs])),
        mean_latency_s=float(np.mean([r.mean_latency_s for r in runs])),
        p99_latency_s=float(np.mean([r.p99_latency_s for r in runs])),
        execution_time_s=float(np.mean([r.execution_time_s for r in runs])),
        contention_map={k: float(np.mean(v)) for k, v in maps.items()},
        latency_series=first.latency_series,
        router_series=first.router_series,
        policy_stats=first.policy_stats,
        accepted_ratio=float(np.mean([r.accepted_ratio for r in runs])),
        seeds=len(runs),
        global_latency_ci=ci,
    )


def _collect(
    fabric: Fabric,
    recorder: StatsRecorder,
    policy_name: str,
    execution_time_s: float,
) -> PolicyRun:
    router_series = {
        rid: series.finalize() for rid, series in recorder.router_series.items()
    }
    return PolicyRun(
        policy_name=policy_name,
        global_latency_s=recorder.global_average_latency_s,
        mean_latency_s=recorder.mean_latency_s,
        p99_latency_s=recorder.latency_percentile(99),
        execution_time_s=execution_time_s,
        contention_map=fabric.contention_map(),
        latency_series=recorder.latency_series.finalize(),
        router_series=router_series,
        policy_stats=fabric.policy.stats(),
        accepted_ratio=fabric.accepted_ratio(),
    )


def _build(
    topology_factory: Callable[[], Topology],
    policy_name: str,
    config: Optional[NetworkConfig],
    notification: str,
    window_s: float,
    track_routers: bool,
    policy_kwargs: dict,
) -> tuple[Fabric, StatsRecorder, Simulator]:
    sim = Simulator()
    recorder = StatsRecorder(window_s=window_s, track_router_series=track_routers)
    fabric = Fabric(
        topology_factory(),
        config or NetworkConfig(),
        make_policy(policy_name, **policy_kwargs),
        sim,
        recorder=recorder,
        notification=notification,
    )
    return fabric, recorder, sim


def run_pattern_workload(
    topology_factory: Callable[[], Topology],
    policies: Sequence[str],
    pattern: str,
    rate_mbps: float,
    hosts: Optional[Sequence[int]] = None,
    schedule: Optional[BurstSchedule] = None,
    duration_s: float = 1e-3,
    drain_s: float = 1e-3,
    seeds: Sequence[int] = (0,),
    config: Optional[NetworkConfig] = None,
    notification: str = DESTINATION_BASED,
    window_s: float = 50e-6,
    track_routers: bool = False,
    idle_rate_mbps: float = 0.0,
    policy_kwargs: Optional[dict] = None,
) -> dict[str, PolicyRun]:
    """Permutation-traffic comparison (§4.6.3, Table 4.3 runs)."""
    results: dict[str, PolicyRun] = {}
    for name in policies:
        runs = []
        for seed in seeds:
            fabric, recorder, sim = _build(
                topology_factory, name, config, notification,
                window_s, track_routers, policy_kwargs or {},
            )
            streams = RandomStreams(seed)
            host_list = list(hosts) if hosts is not None else list(
                range(1 << (fabric.topology.num_hosts.bit_length() - 1))
            )
            pat_nodes = 1 << (len(host_list).bit_length() - 1)
            pat = make_pattern(pattern, pat_nodes, rng=streams.stream("pattern"))
            sched = schedule or BurstSchedule(on_s=duration_s, off_s=0.0)
            stop = sched.end_time() or duration_s
            source = SyntheticTrafficSource(
                fabric, pat, hosts=host_list[:pat_nodes], rate_bps=rate_mbps * 1e6,
                schedule=sched, stop_s=stop, rng=streams.stream("traffic"),
                idle_rate_bps=idle_rate_mbps * 1e6,
            )
            source.start()
            sim.run(until=stop + drain_s)
            runs.append(_collect(fabric, recorder, name, stop))
        results[name] = _average_runs(runs)
    return results


def run_hotspot_workload(
    topology_factory: Callable[[], Topology],
    policies: Sequence[str],
    flows: Sequence[tuple[int, int]],
    rate_mbps: float,
    schedule: BurstSchedule,
    noise_rate_mbps: float = 0.0,
    idle_rate_mbps: float = 0.0,
    drain_s: float = 1e-3,
    seeds: Sequence[int] = (0,),
    config: Optional[NetworkConfig] = None,
    notification: str = DESTINATION_BASED,
    window_s: float = 50e-6,
    track_routers: bool = False,
    policy_kwargs: Optional[dict] = None,
) -> dict[str, PolicyRun]:
    """Hot-spot specific-pattern comparison (§4.5, §4.6.2)."""
    results: dict[str, PolicyRun] = {}
    stop = schedule.end_time()
    if stop is None:
        raise ValueError("hot-spot schedule must be bounded (set repetitions)")
    for name in policies:
        runs = []
        for seed in seeds:
            fabric, recorder, sim = _build(
                topology_factory, name, config, notification,
                window_s, track_routers, policy_kwargs or {},
            )
            streams = RandomStreams(seed)
            workload = HotSpotWorkload(
                fabric,
                [HotSpotFlow(s, d) for s, d in flows],
                rate_bps=rate_mbps * 1e6,
                schedule=schedule,
                stop_s=stop,
                noise_hosts=range(fabric.topology.num_hosts),
                noise_rate_bps=noise_rate_mbps * 1e6,
                rng=streams.stream("noise"),
                idle_rate_bps=idle_rate_mbps * 1e6,
            )
            workload.start()
            sim.run(until=stop + drain_s)
            runs.append(_collect(fabric, recorder, name, stop))
        results[name] = _average_runs(runs)
    return results


def run_app_workload(
    topology_factory: Callable[[], Topology],
    policies: Sequence[str],
    trace_factory: Callable[..., "object"],
    trace_kwargs: Optional[dict] = None,
    seeds: Sequence[int] = (0,),
    config: Optional[NetworkConfig] = None,
    notification: str = DESTINATION_BASED,
    window_s: float = 100e-6,
    track_routers: bool = False,
    timeout_s: float = 30.0,
    policy_kwargs: Optional[dict] = None,
) -> dict[str, PolicyRun]:
    """Application-trace comparison (§4.8): latency + execution time."""
    results: dict[str, PolicyRun] = {}
    trace_kwargs = dict(trace_kwargs or {})
    for name in policies:
        runs = []
        for seed in seeds:
            fabric, recorder, sim = _build(
                topology_factory, name, config, notification,
                window_s, track_routers, policy_kwargs or {},
            )
            kwargs = dict(trace_kwargs)
            if "seed" in trace_factory.__code__.co_varnames:
                kwargs.setdefault("seed", seed)
            trace = trace_factory(**kwargs)
            runtime = TraceRuntime(fabric, trace)
            exec_time = runtime.run(timeout_s=timeout_s)
            runs.append(_collect(fabric, recorder, name, exec_time))
        results[name] = _average_runs(runs)
    return results
